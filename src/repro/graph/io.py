"""Persistence for graph databases.

Two formats are supported:

* **JSON** — a single document with explicit vertex, label and edge
  arrays; lossless (keeps edge order, hence ``TgtIdx`` and enumeration
  order, and costs).
* **edge list** — a friendly line-based text format::

      # comment
      Alix -> Cassie : h
      Alix -> Dan    : h, s
      Eve  -> Bob    : h, s @ 3      # optional cost after '@'

  Vertices appear in first-use order; lossless for everything the
  algorithm cares about.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Dict, Union

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.database import Graph

_PathLike = Union[str, Path]

_EDGE_RE = re.compile(
    r"^\s*(?P<src>[^\s-][^:>]*?)\s*->\s*(?P<tgt>[^:]+?)\s*:\s*(?P<labels>[^@]+?)"
    r"\s*(?:@\s*(?P<cost>\d+))?\s*$"
)


def graph_to_dict(graph: Graph) -> Dict[str, object]:
    """Serialize a graph to a JSON-compatible dictionary."""
    return {
        "format": "repro-graph",
        "version": 1,
        "vertices": [str(graph.vertex_name(v)) for v in graph.vertices()],
        "labels": list(graph.alphabet),
        "edges": [
            {
                "src": graph.src(e),
                "tgt": graph.tgt(e),
                "labels": list(graph.labels(e)),
                **({"cost": graph.cost(e)} if graph.has_costs else {}),
            }
            for e in graph.edges()
        ],
    }


def graph_from_dict(data: Dict[str, object]) -> Graph:
    """Inverse of :func:`graph_to_dict`."""
    if data.get("format") != "repro-graph":
        raise GraphError("not a repro-graph document")
    vertices = list(data["vertices"])  # type: ignore[arg-type]
    labels = list(data["labels"])  # type: ignore[arg-type]
    edges = list(data["edges"])  # type: ignore[arg-type]
    any_cost = any("cost" in e for e in edges)
    return Graph(
        vertex_names=vertices,
        label_names=labels,
        src=[e["src"] for e in edges],
        tgt=[e["tgt"] for e in edges],
        labels=[tuple(e["labels"]) for e in edges],
        costs=[e.get("cost", 1) for e in edges] if any_cost else None,
    )


def save_json(graph: Graph, path: _PathLike) -> None:
    """Write a graph to ``path`` as JSON."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(graph_to_dict(graph), fh, indent=1)


def load_json(path: _PathLike) -> Graph:
    """Read a graph previously written by :func:`save_json`."""
    with open(path, "r", encoding="utf-8") as fh:
        return graph_from_dict(json.load(fh))


def save_edge_list(graph: Graph, path: _PathLike) -> None:
    """Write a graph in the human-editable edge-list format."""
    lines = ["# repro edge list"]
    for e in graph.edges():
        line = (
            f"{graph.vertex_name(graph.src(e))} -> "
            f"{graph.vertex_name(graph.tgt(e))} : "
            + ", ".join(graph.label_names_of(e))
        )
        if graph.has_costs:
            line += f" @ {graph.cost(e)}"
        lines.append(line)
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_edge_list(path: _PathLike) -> Graph:
    """Read a graph in the edge-list format (see module docstring)."""
    builder = GraphBuilder()
    for lineno, raw in enumerate(
        Path(path).read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        match = _EDGE_RE.match(line)
        if match is None:
            raise GraphError(f"cannot parse edge on line {lineno}: {raw!r}")
        labels = [part.strip() for part in match["labels"].split(",") if part.strip()]
        cost = int(match["cost"]) if match["cost"] else None
        builder.add_edge(
            match["src"].strip(), match["tgt"].strip(), labels, cost=cost
        )
    return builder.build()


def property_graph_to_dict(pg) -> Dict[str, object]:
    """Serialize a :class:`~repro.graph.property_graph.PropertyGraph`.

    Vertex names must be JSON-compatible (strings in practice) and
    property values JSON-serializable; the structure round-trips
    through :func:`property_graph_from_dict`.
    """
    return {
        "format": "repro-property-graph",
        "version": 1,
        "vertices": [
            {"name": name, "properties": dict(pg.vertex_properties(name))}
            for name in pg.vertices()
        ],
        "edges": [
            {"src": src, "tgt": tgt, "properties": dict(props)}
            for _eid, src, tgt, props in pg.edges()
        ],
    }


def property_graph_from_dict(data: Dict[str, object]):
    """Rebuild a property graph serialized by :func:`property_graph_to_dict`."""
    from repro.graph.property_graph import PropertyGraph

    if data.get("format") != "repro-property-graph":
        raise GraphError(
            "not a repro property-graph document "
            f"(format = {data.get('format')!r})"
        )
    pg = PropertyGraph()
    for vertex in data.get("vertices", ()):
        pg.add_vertex(vertex["name"], **vertex.get("properties", {}))
    for edge in data.get("edges", ()):
        pg.add_edge(edge["src"], edge["tgt"], **edge.get("properties", {}))
    return pg


def save_property_graph_json(pg, path: _PathLike) -> None:
    """Write a property graph as JSON."""
    Path(path).write_text(
        json.dumps(property_graph_to_dict(pg), indent=2), encoding="utf-8"
    )


def load_property_graph_json(path: _PathLike):
    """Read a property graph written by :func:`save_property_graph_json`."""
    return property_graph_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )
