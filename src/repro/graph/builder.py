"""Ergonomic construction of :class:`~repro.graph.database.Graph`.

The builder accepts vertex names (any hashable — strings in practice)
and label names (strings), interns them to dense integer ids, and
produces an immutable :class:`Graph`.

Edge insertion order matters: ``In(v)`` lists edges in insertion order,
which fixes ``TgtIdx`` and therefore the *enumeration order* of the
algorithm (children of a node in the backward-search tree are visited
in increasing ``TgtIdx``).  Tests that reproduce the paper's Figure 3
rely on this.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from repro.exceptions import CostError, GraphError
from repro.graph.database import Graph


class GraphBuilder:
    """Incrementally assemble a multi-labeled multi-edge graph.

    >>> b = GraphBuilder()
    >>> _ = b.add_edge("Alix", "Cassie", ["h"])
    >>> _ = b.add_edge("Alix", "Dan", ["h", "s"])
    >>> g = b.build()
    >>> g.vertex_count, g.edge_count
    (3, 2)
    """

    def __init__(self) -> None:
        self._vertex_names: List[Hashable] = []
        self._vertex_ids: Dict[Hashable, int] = {}
        self._label_names: List[str] = []
        self._label_ids: Dict[str, int] = {}
        self._src: List[int] = []
        self._tgt: List[int] = []
        self._labels: List[Tuple[int, ...]] = []
        self._costs: List[int] = []
        self._any_cost = False

    # -- vertices -------------------------------------------------------

    def add_vertex(self, name: Hashable) -> int:
        """Register a vertex (idempotent) and return its id."""
        vid = self._vertex_ids.get(name)
        if vid is None:
            vid = len(self._vertex_names)
            self._vertex_ids[name] = vid
            self._vertex_names.append(name)
        return vid

    def add_vertices(self, names: Iterable[Hashable]) -> List[int]:
        """Register several vertices; returns their ids in order."""
        return [self.add_vertex(name) for name in names]

    # -- labels -----------------------------------------------------------

    def _label_id(self, name: str) -> int:
        if not isinstance(name, str) or not name:
            raise GraphError(f"labels must be non-empty strings, got {name!r}")
        lid = self._label_ids.get(name)
        if lid is None:
            lid = len(self._label_names)
            self._label_ids[name] = lid
            self._label_names.append(name)
        return lid

    # -- edges ---------------------------------------------------------------

    def add_edge(
        self,
        src: Hashable,
        tgt: Hashable,
        labels: Iterable[str],
        cost: Optional[int] = None,
    ) -> int:
        """Add one edge and return its id.

        ``labels`` must contain at least one label name; duplicates are
        removed.  ``cost``, when given, must be a positive integer — the
        Distinct Cheapest Walks extension requires exact arithmetic and
        strictly positive costs (Section 5.3).
        """
        label_ids = tuple(sorted({self._label_id(name) for name in labels}))
        if not label_ids:
            raise GraphError("an edge must carry at least one label")
        if cost is not None:
            if isinstance(cost, bool) or not isinstance(cost, int):
                raise CostError(f"edge cost must be an int, got {cost!r}")
            if cost <= 0:
                raise CostError(f"edge cost must be positive, got {cost}")
            self._any_cost = True
        eid = len(self._src)
        self._src.append(self.add_vertex(src))
        self._tgt.append(self.add_vertex(tgt))
        self._labels.append(label_ids)
        self._costs.append(cost if cost is not None else 1)
        return eid

    def add_edges(
        self, edges: Iterable[Tuple[Hashable, Hashable, Iterable[str]]]
    ) -> List[int]:
        """Add ``(src, tgt, labels)`` triples; returns the new edge ids."""
        return [self.add_edge(s, t, ls) for s, t, ls in edges]

    # -- finalization -------------------------------------------------------------

    @property
    def vertex_count(self) -> int:
        """Number of vertices registered so far."""
        return len(self._vertex_names)

    @property
    def edge_count(self) -> int:
        """Number of edges registered so far."""
        return len(self._src)

    def build(self) -> Graph:
        """Freeze the builder into an immutable :class:`Graph`.

        The builder remains usable afterwards (e.g. to build a larger
        superset graph), since :class:`Graph` copies everything.
        """
        return Graph(
            vertex_names=self._vertex_names,
            label_names=self._label_names,
            src=self._src,
            tgt=self._tgt,
            labels=self._labels,
            costs=self._costs if self._any_cost else None,
        )
