"""The graph database (paper, Definition 3 and Section 2.2).

A database is a tuple ``(Σ, V, E, Src, Tgt, Lbl)``: a finite directed
graph where multiple edges may connect the same pair of vertices and
every edge carries a non-empty *set* of labels.

:class:`Graph` is immutable; build instances with
:class:`~repro.graph.builder.GraphBuilder`.  Internally everything is
integer-indexed for speed; names are kept for presentation.  The class
honours the paper's O(1) accessor contract:

==================  =======================================
Paper               Here
==================  =======================================
``In(v)``           :meth:`Graph.in_edges`
``InDeg(v)``        :meth:`Graph.in_degree`
``Out(v)``          :meth:`Graph.out_edges`
``OutDeg(v)``       :meth:`Graph.out_degree`
``Src(e)``          :meth:`Graph.src`
``Tgt(e)``          :meth:`Graph.tgt`
``Lbl(e)``          :meth:`Graph.labels` (ids) / :meth:`Graph.label_names_of`
``TgtIdx(e)``       :meth:`Graph.tgt_idx`
``|D|``             :meth:`Graph.size`
==================  =======================================

Label-indexed CSR adjacency
---------------------------

On top of the paper's ``In``/``Out`` arrays the class maintains a
*label-indexed* compressed-sparse-row view of the incidence relation
``{(e, a) : a ∈ Lbl(e)}``, bucketed by ``(label, endpoint)``:

* ``Out_a(v)`` — edges leaving ``v`` that carry label ``a`` —
  :meth:`Graph.out_by_label`;
* ``In_a(v)`` — edges entering ``v`` that carry label ``a`` —
  :meth:`Graph.in_by_label`.

The index is two flat ``array('q')`` buffers per direction (an
``indptr`` of |Σ|·|V| + 1 bucket offsets and an edge-id payload of
``Σ_e |Lbl(e)|`` entries, bucket ``a·|V| + v``), built lazily in
O(|D|) by counting sort on first use and cached for the lifetime of
the (immutable) graph.  The product-BFS of ``Annotate`` consumes the
raw buffers via :attr:`Graph.out_csr` / :attr:`Graph.in_csr`: instead
of scanning all of ``Out(v)`` and every label of every edge, it only
touches the labels on which the automaton state can fire — the
per-pair cost drops from O(OutDeg(v) × |Lbl|) to
O(Σ_{a ∈ labels(q)} |Out_a(v)|).
"""

from __future__ import annotations

import threading
from array import array
from typing import (
    TYPE_CHECKING,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.serve.shm import GraphSegment

#: A label-indexed CSR view: (bucket offsets, edge-id payload).  Bucket
#: ``a * |V| + v`` spans ``payload[indptr[b] : indptr[b + 1]]``, edge
#: ids in ascending order.
CsrIndex = Tuple[array, array]

from repro.exceptions import (
    UnknownEdgeError,
    UnknownLabelError,
    UnknownVertexError,
)


class Graph:
    """Immutable multi-labeled multi-edge directed graph.

    Do not call the constructor directly — use
    :class:`~repro.graph.builder.GraphBuilder`, which enforces the
    structural invariants, or the deserializers in
    :mod:`repro.graph.io`.
    """

    __slots__ = (
        "_vertex_names",
        "_vertex_ids",
        "_label_names",
        "_label_ids",
        "_src",
        "_tgt",
        "_labels",
        "_costs",
        "_out",
        "_in",
        "_tgt_idx",
        "_out_csr",
        "_in_csr",
        "_out_label_tuples",
        "_in_label_tuples",
        "_cost_cache",
        "_lazy_lock",
    )

    def __init__(
        self,
        vertex_names: Sequence[Hashable],
        label_names: Sequence[str],
        src: Sequence[int],
        tgt: Sequence[int],
        labels: Sequence[Tuple[int, ...]],
        costs: Optional[Sequence[int]] = None,
    ) -> None:
        self._vertex_names: Tuple[Hashable, ...] = tuple(vertex_names)
        self._vertex_ids: Dict[Hashable, int] = {
            name: i for i, name in enumerate(self._vertex_names)
        }
        self._label_names: Tuple[str, ...] = tuple(label_names)
        self._label_ids: Dict[str, int] = {
            name: i for i, name in enumerate(self._label_names)
        }
        # The flat edge-indexed columns are packed ``array('q')``
        # buffers, not tuples: they index and iterate exactly like the
        # tuples they replaced, but live in one contiguous allocation
        # that ``Graph.to_shared`` can blit into a shared-memory
        # segment without re-packing.
        self._src: array = array("q", src)
        self._tgt: array = array("q", tgt)
        self._labels: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(ls) for ls in labels
        )
        self._costs: Optional[array] = (
            array("q", costs) if costs is not None else None
        )

        n = len(self._vertex_names)
        out_lists: List[List[int]] = [[] for _ in range(n)]
        in_lists: List[List[int]] = [[] for _ in range(n)]
        for e, (u, v) in enumerate(zip(self._src, self._tgt)):
            if not (0 <= u < n and 0 <= v < n):
                from repro.exceptions import GraphError

                raise GraphError(
                    f"edge {e} has endpoint outside the vertex range: "
                    f"({u}, {v}) with |V| = {n}"
                )
            out_lists[u].append(e)
            in_lists[v].append(e)
        self._out: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(es) for es in out_lists
        )
        self._in: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(es) for es in in_lists
        )
        # TgtIdx(e): position of e inside In(Tgt(e)) — Remark 4 says this
        # may be precomputed in O(|V| + |E|), which is what we do here.
        tgt_idx = [0] * len(self._src)
        for in_list in self._in:
            for i, e in enumerate(in_list):
                tgt_idx[e] = i
        self._tgt_idx: array = array("q", tgt_idx)

        # Label-indexed CSR views and per-vertex label summaries are
        # built lazily (O(|D|) counting sort) on first use.
        self._out_csr: Optional[CsrIndex] = None
        self._in_csr: Optional[CsrIndex] = None
        self._out_label_tuples: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._in_label_tuples: Optional[Tuple[Tuple[int, ...], ...]] = None
        self._cost_cache: Optional[array] = None
        # Build-once guard: the lazy indexes are shared read-only by
        # every query against this (immutable) graph, including the
        # concurrent batch executor of :mod:`repro.service` — the first
        # builder must win exactly once, not per racing thread.
        self._lazy_lock = threading.Lock()

    # -- global counts ----------------------------------------------------

    @property
    def vertex_count(self) -> int:
        """|V|."""
        return len(self._vertex_names)

    @property
    def edge_count(self) -> int:
        """|E|."""
        return len(self._src)

    @property
    def label_count(self) -> int:
        """|Σ| — number of distinct labels used by the database."""
        return len(self._label_names)

    def size(self) -> int:
        """The paper's ``|D| = |V| + |E| + Σ_e |Lbl(e)|``."""
        return (
            self.vertex_count
            + self.edge_count
            + sum(len(ls) for ls in self._labels)
        )

    @property
    def total_label_occurrences(self) -> int:
        """``Σ_e |Lbl(e)|`` — the label-multiplicity part of |D|."""
        return sum(len(ls) for ls in self._labels)

    # -- vertices -----------------------------------------------------------

    def vertices(self) -> range:
        """All vertex ids."""
        return range(self.vertex_count)

    def vertex_id(self, name: Hashable) -> int:
        """Translate a vertex name to its internal id."""
        try:
            return self._vertex_ids[name]
        except KeyError:
            raise UnknownVertexError(name) from None

    def vertex_name(self, v: int) -> Hashable:
        """Translate an internal vertex id to its name."""
        if not 0 <= v < self.vertex_count:
            raise UnknownVertexError(v)
        return self._vertex_names[v]

    def has_vertex(self, name: Hashable) -> bool:
        """True when a vertex called ``name`` exists."""
        return name in self._vertex_ids

    def resolve_vertex(self, vertex: Hashable) -> int:
        """Accept either a vertex name or a valid internal id.

        Integer inputs are treated as ids only when no vertex is *named*
        by that integer, so graphs with integer vertex names behave
        intuitively.
        """
        if vertex in self._vertex_ids:
            return self._vertex_ids[vertex]
        if isinstance(vertex, int) and 0 <= vertex < self.vertex_count:
            return vertex
        raise UnknownVertexError(vertex)

    # -- labels ---------------------------------------------------------------

    def label_id(self, name: str) -> int:
        """Translate a label name to its internal id."""
        try:
            return self._label_ids[name]
        except KeyError:
            raise UnknownLabelError(name) from None

    def label_name(self, a: int) -> str:
        """Translate an internal label id to its name."""
        if not 0 <= a < self.label_count:
            raise UnknownLabelError(a)
        return self._label_names[a]

    def has_label(self, name: str) -> bool:
        """True when some edge of the graph can carry ``name``."""
        return name in self._label_ids

    @property
    def alphabet(self) -> Tuple[str, ...]:
        """All label names, indexed by label id."""
        return self._label_names

    # -- edges -----------------------------------------------------------------

    def edges(self) -> range:
        """All edge ids."""
        return range(self.edge_count)

    def _check_edge(self, e: int) -> None:
        if not 0 <= e < self.edge_count:
            raise UnknownEdgeError(e)

    def src(self, e: int) -> int:
        """``Src(e)`` — source vertex id."""
        self._check_edge(e)
        return self._src[e]

    def tgt(self, e: int) -> int:
        """``Tgt(e)`` — target vertex id."""
        self._check_edge(e)
        return self._tgt[e]

    def labels(self, e: int) -> Tuple[int, ...]:
        """``Lbl(e)`` as a tuple of label ids (sorted, duplicate-free)."""
        self._check_edge(e)
        return self._labels[e]

    def label_names_of(self, e: int) -> Tuple[str, ...]:
        """``Lbl(e)`` as a tuple of label names."""
        return tuple(self._label_names[a] for a in self.labels(e))

    def tgt_idx(self, e: int) -> int:
        """``TgtIdx(e)`` — position of ``e`` inside ``In(Tgt(e))``."""
        self._check_edge(e)
        return self._tgt_idx[e]

    def cost(self, e: int) -> int:
        """Cost of edge ``e`` (1 when the graph carries no costs)."""
        self._check_edge(e)
        return 1 if self._costs is None else self._costs[e]

    @property
    def has_costs(self) -> bool:
        """True when explicit edge costs were provided at build time."""
        return self._costs is not None

    # -- adjacency ------------------------------------------------------------

    def out_edges(self, v: int) -> Tuple[int, ...]:
        """``Out(v)`` — ids of edges leaving ``v``, in edge-id order."""
        if not 0 <= v < self.vertex_count:
            raise UnknownVertexError(v)
        return self._out[v]

    def in_edges(self, v: int) -> Tuple[int, ...]:
        """``In(v)`` — ids of edges entering ``v``; position = TgtIdx."""
        if not 0 <= v < self.vertex_count:
            raise UnknownVertexError(v)
        return self._in[v]

    def out_degree(self, v: int) -> int:
        """``OutDeg(v)``."""
        return len(self.out_edges(v))

    def in_degree(self, v: int) -> int:
        """``InDeg(v)``."""
        return len(self.in_edges(v))

    def max_in_degree(self) -> int:
        """The ``d`` of Section 4.2 (0 for the empty graph)."""
        return max((len(es) for es in self._in), default=0)

    # -- label-indexed CSR adjacency -------------------------------------------

    def warm_indexes(self) -> "Graph":
        """Force-build every lazy index now (thread-safe, idempotent).

        The CSR views and label summaries are normally built on first
        use; a serving layer calls this once at graph-registration time
        so that no request pays the O(|D|) build inside its latency
        budget.  Returns ``self`` for chaining.
        """
        self.out_csr
        self.in_csr
        self.out_labels_array
        self.in_labels_array
        return self

    def _build_csr(self, endpoint: Tuple[int, ...]) -> CsrIndex:
        """Counting-sort the (edge, label) incidences by (label, endpoint).

        O(|Σ|·|V| + Σ_e |Lbl(e)|) ⊆ O(|D|) for a fixed alphabet; edge
        ids within each bucket stay in ascending order because edges
        are scattered in edge-id order.
        """
        n = self.vertex_count
        n_buckets = self.label_count * n
        counts = [0] * (n_buckets + 1)
        for e, v in enumerate(endpoint):
            for a in self._labels[e]:
                counts[a * n + v + 1] += 1
        for b in range(1, n_buckets + 1):
            counts[b] += counts[b - 1]
        indptr = array("q", counts)
        payload = array("q", bytes(8 * counts[n_buckets]))
        cursor = counts[:-1]
        for e, v in enumerate(endpoint):
            for a in self._labels[e]:
                b = a * n + v
                payload[cursor[b]] = e
                cursor[b] += 1
        return indptr, payload

    def _label_tuples(self, csr: CsrIndex) -> Tuple[Tuple[int, ...], ...]:
        """Per-vertex tuples of distinct labels with a non-empty bucket."""
        n = self.vertex_count
        indptr, _ = csr
        present: List[List[int]] = [[] for _ in range(n)]
        for a in range(self.label_count):
            base = a * n
            for v in range(n):
                if indptr[base + v] < indptr[base + v + 1]:
                    present[v].append(a)
        return tuple(tuple(ls) for ls in present)

    @property
    def out_csr(self) -> CsrIndex:
        """Raw label-indexed out-CSR ``(indptr, edge ids)`` (hot path).

        Bucket ``a * |V| + v`` holds ``Out_a(v)`` in edge-id order.
        """
        if self._out_csr is None:
            with self._lazy_lock:
                if self._out_csr is None:
                    self._out_csr = self._build_csr(self._src)
        return self._out_csr

    @property
    def in_csr(self) -> CsrIndex:
        """Raw label-indexed in-CSR ``(indptr, edge ids)`` (hot path).

        Bucket ``a * |V| + v`` holds ``In_a(v)`` in edge-id order.
        """
        if self._in_csr is None:
            with self._lazy_lock:
                if self._in_csr is None:
                    self._in_csr = self._build_csr(self._tgt)
        return self._in_csr

    def out_by_label(self, v: int, a: int) -> Tuple[int, ...]:
        """``Out_a(v)`` — edges leaving ``v`` carrying label ``a``.

        Edge ids in ascending order; the empty tuple when ``v`` has no
        out-edge with that label.  O(1) bucket lookup after the lazy
        O(|D|) index build.
        """
        if not 0 <= v < self.vertex_count:
            raise UnknownVertexError(v)
        if not 0 <= a < self.label_count:
            raise UnknownLabelError(a)
        indptr, payload = self.out_csr
        b = a * self.vertex_count + v
        return tuple(payload[indptr[b]:indptr[b + 1]])

    def in_by_label(self, v: int, a: int) -> Tuple[int, ...]:
        """``In_a(v)`` — edges entering ``v`` carrying label ``a``."""
        if not 0 <= v < self.vertex_count:
            raise UnknownVertexError(v)
        if not 0 <= a < self.label_count:
            raise UnknownLabelError(a)
        indptr, payload = self.in_csr
        b = a * self.vertex_count + v
        return tuple(payload[indptr[b]:indptr[b + 1]])

    def out_labels(self, v: int) -> Tuple[int, ...]:
        """Distinct label ids appearing on ``Out(v)``, ascending."""
        if not 0 <= v < self.vertex_count:
            raise UnknownVertexError(v)
        return self.out_labels_array[v]

    def in_labels(self, v: int) -> Tuple[int, ...]:
        """Distinct label ids appearing on ``In(v)``, ascending."""
        if not 0 <= v < self.vertex_count:
            raise UnknownVertexError(v)
        return self.in_labels_array[v]

    @property
    def out_labels_array(self) -> Tuple[Tuple[int, ...], ...]:
        """Vertex-id-indexed distinct out-label tuples (hot path)."""
        if self._out_label_tuples is None:
            csr = self.out_csr  # Outside the lock: out_csr locks itself.
            with self._lazy_lock:
                if self._out_label_tuples is None:
                    self._out_label_tuples = self._label_tuples(csr)
        return self._out_label_tuples

    @property
    def in_labels_array(self) -> Tuple[Tuple[int, ...], ...]:
        """Vertex-id-indexed distinct in-label tuples (hot path)."""
        if self._in_label_tuples is None:
            csr = self.in_csr  # Outside the lock: in_csr locks itself.
            with self._lazy_lock:
                if self._in_label_tuples is None:
                    self._in_label_tuples = self._label_tuples(csr)
        return self._in_label_tuples

    # -- raw arrays for hot loops ------------------------------------------------

    # The enumeration core reads these flat buffers directly instead of
    # going through bound methods; this is the single concession to
    # speed and is part of the intra-package interface only.  The
    # edge-indexed columns (`src`/`tgt`/`tgt_idx`/`cost`) are packed
    # ``array('q')`` buffers (zero-copy ``memoryview`` casts on a
    # shared-memory attached graph); consumers index and iterate them
    # like the tuples they replaced but must not compare them *to*
    # tuples with ``==``.

    @property
    def src_array(self) -> Sequence[int]:
        """Edge-id-indexed source vertices, flat ``'q'`` buffer."""
        return self._src

    @property
    def tgt_array(self) -> Sequence[int]:
        """Edge-id-indexed target vertices, flat ``'q'`` buffer."""
        return self._tgt

    @property
    def label_array(self) -> Tuple[Tuple[int, ...], ...]:
        """Edge-id-indexed label-id tuples (internal fast path)."""
        return self._labels

    @property
    def out_array(self) -> Tuple[Tuple[int, ...], ...]:
        """Vertex-id-indexed Out lists (internal fast path)."""
        return self._out

    @property
    def in_array(self) -> Tuple[Tuple[int, ...], ...]:
        """Vertex-id-indexed In lists (internal fast path)."""
        return self._in

    @property
    def tgt_idx_array(self) -> Sequence[int]:
        """Edge-id-indexed TgtIdx values, flat ``'q'`` buffer."""
        return self._tgt_idx

    @property
    def cost_array(self) -> Sequence[int]:
        """Edge-id-indexed costs; unit costs when none were provided.

        Memoized: the unit-cost buffer is materialized once, not on
        every access (the Dijkstra setup reads this per query).
        """
        if self._costs is not None:
            return self._costs
        if self._cost_cache is None:
            with self._lazy_lock:
                if self._cost_cache is None:
                    self._cost_cache = array("q", [1]) * self.edge_count
        return self._cost_cache

    # -- shared memory -----------------------------------------------------------

    def to_shared(self, name: Optional[str] = None) -> "GraphSegment":
        """Publish this graph into a named shared-memory segment.

        Packs every flat buffer (edge columns plus both label-indexed
        CSR views) and the interning tables into one
        :class:`multiprocessing.shared_memory.SharedMemory` block with
        a CRC'd header, so worker processes can map it zero-copy via
        :meth:`from_shared`.  Returns the owning
        :class:`repro.serve.shm.GraphSegment` handle — the caller is
        responsible for ``close(unlink=True)`` (the serve tier also
        unlinks on SIGTERM/atexit).
        """
        from repro.serve.shm import GraphSegment

        return GraphSegment.create(self, name=name)

    @classmethod
    def from_shared(cls, name: str) -> "Graph":
        """Attach a segment published by :meth:`to_shared`.

        Returns a :class:`repro.serve.shm.SharedGraph` — a ``Graph``
        whose flat edge columns and CSR buffers are zero-copy
        ``memoryview`` casts over the shared block.  Call its
        ``detach()`` when done (closing does *not* unlink; the owner
        does that).
        """
        from repro.serve.shm import attach

        return attach(name)

    # -- convenience ----------------------------------------------------------------

    def edge_str(self, e: int) -> str:
        """Human-readable rendering of one edge."""
        lbls = ",".join(self.label_names_of(e))
        return (
            f"e{e}:{self.vertex_name(self.src(e))}"
            f"-[{lbls}]->{self.vertex_name(self.tgt(e))}"
        )

    def parallel_edges(self, u: int, v: int) -> List[int]:
        """All edge ids from ``u`` to ``v`` (multi-edges are allowed)."""
        return [e for e in self._out[u] if self._tgt[e] == v]

    def stats(self) -> Dict[str, int]:
        """Summary counters, handy for logging and benchmarks."""
        return {
            "vertices": self.vertex_count,
            "edges": self.edge_count,
            "labels": self.label_count,
            "label_occurrences": self.total_label_occurrences,
            "size": self.size(),
            "max_in_degree": self.max_in_degree(),
        }

    def __iter__(self) -> Iterator[int]:
        return iter(self.vertices())

    def __repr__(self) -> str:
        return (
            f"Graph(|V|={self.vertex_count}, |E|={self.edge_count}, "
            f"|Σ|={self.label_count})"
        )
