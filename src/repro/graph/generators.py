"""Synthetic graph databases for tests, examples and benchmarks.

Every generator takes an explicit ``seed`` so that tests and benchmarks
are reproducible, and returns an immutable
:class:`~repro.graph.database.Graph`.

The *worst-case* families used by the duplicate-explosion experiments
live in :mod:`repro.workloads.worstcase`; the generators here are
general-purpose topologies.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.database import Graph


def chain(
    length: int,
    labels: Sequence[str] = ("a",),
    parallel: int = 1,
) -> Graph:
    """A directed chain ``v0 -> v1 -> ... -> v_length``.

    ``parallel`` controls how many parallel edges connect consecutive
    vertices; every edge carries all of ``labels``.  With ``parallel=p``
    there are exactly ``p ** length`` distinct shortest walks from
    ``v0`` to ``v_length`` under any query matching the labels.
    """
    if length < 0:
        raise GraphError("chain length must be >= 0")
    if parallel < 1:
        raise GraphError("parallel must be >= 1")
    builder = GraphBuilder()
    builder.add_vertex("v0")
    for i in range(length):
        for _ in range(parallel):
            builder.add_edge(f"v{i}", f"v{i + 1}", labels)
    return builder.build()


def cycle(length: int, labels: Sequence[str] = ("a",)) -> Graph:
    """A directed cycle ``v0 -> v1 -> ... -> v0`` of ``length`` edges."""
    if length < 1:
        raise GraphError("cycle length must be >= 1")
    builder = GraphBuilder()
    for i in range(length):
        builder.add_edge(f"v{i}", f"v{(i + 1) % length}", labels)
    return builder.build()


def grid(
    rows: int,
    cols: int,
    right_label: str = "r",
    down_label: str = "d",
) -> Graph:
    """A rows×cols grid with edges going right (``r``) and down (``d``).

    From corner ``(0,0)`` to corner ``(rows-1, cols-1)`` there are
    ``C(rows+cols-2, rows-1)`` shortest walks, which makes grids a
    natural stress test for enumeration throughput.
    """
    if rows < 1 or cols < 1:
        raise GraphError("grid dimensions must be >= 1")
    builder = GraphBuilder()
    for r in range(rows):
        for c in range(cols):
            builder.add_vertex(f"n{r}_{c}")
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                builder.add_edge(f"n{r}_{c}", f"n{r}_{c + 1}", [right_label])
            if r + 1 < rows:
                builder.add_edge(f"n{r}_{c}", f"n{r + 1}_{c}", [down_label])
    return builder.build()


def random_multilabel(
    n_vertices: int,
    n_edges: int,
    alphabet: Sequence[str] = ("a", "b", "c"),
    max_labels_per_edge: int = 2,
    seed: int = 0,
    ensure_path: Optional[tuple] = None,
) -> Graph:
    """Uniform random multigraph with random non-empty label sets.

    ``ensure_path=(src_name, tgt_name, length)`` optionally plants a
    directed path between two named vertices so that queries have at
    least one answer (useful for benchmarks where an empty result set
    would make delays meaningless).
    """
    if n_vertices < 1:
        raise GraphError("need at least one vertex")
    if max_labels_per_edge < 1 or max_labels_per_edge > len(alphabet):
        raise GraphError("bad max_labels_per_edge")
    rng = random.Random(seed)
    builder = GraphBuilder()
    names = [f"v{i}" for i in range(n_vertices)]
    builder.add_vertices(names)

    def random_labels() -> List[str]:
        k = rng.randint(1, max_labels_per_edge)
        return rng.sample(list(alphabet), k)

    for _ in range(n_edges):
        u = rng.randrange(n_vertices)
        v = rng.randrange(n_vertices)
        builder.add_edge(names[u], names[v], random_labels())

    if ensure_path is not None:
        src_name, tgt_name, length = ensure_path
        builder.add_vertex(src_name)
        builder.add_vertex(tgt_name)
        previous = src_name
        for i in range(length - 1):
            waypoint = f"__wp{i}"
            builder.add_edge(previous, waypoint, random_labels())
            previous = waypoint
        builder.add_edge(previous, tgt_name, random_labels())
    return builder.build()


def layered(
    n_layers: int,
    width: int,
    alphabet: Sequence[str] = ("a", "b"),
    density: float = 0.5,
    max_labels_per_edge: int = 2,
    seed: int = 0,
) -> Graph:
    """A layered DAG: ``n_layers`` layers of ``width`` vertices.

    Each vertex of layer ``i`` connects to each vertex of layer ``i+1``
    independently with probability ``density``; a spine path is always
    added so that ``source`` reaches ``sink``.  Vertices ``source`` and
    ``sink`` frame the layers.  Layered DAGs let benchmarks control the
    shortest-walk length λ (= ``n_layers + 1``) independently of |D|.
    """
    if n_layers < 1 or width < 1:
        raise GraphError("bad layered dimensions")
    rng = random.Random(seed)
    builder = GraphBuilder()
    builder.add_vertex("source")
    layer_names = [
        [f"l{i}_{j}" for j in range(width)] for i in range(n_layers)
    ]

    def random_labels() -> List[str]:
        k = rng.randint(1, max_labels_per_edge)
        return rng.sample(list(alphabet), k)

    for name in layer_names[0]:
        builder.add_edge("source", name, random_labels())
    for i in range(n_layers - 1):
        for u in layer_names[i]:
            for v in layer_names[i + 1]:
                if rng.random() < density:
                    builder.add_edge(u, v, random_labels())
    for name in layer_names[-1]:
        builder.add_edge(name, "sink", random_labels())
    # Spine: guarantees source ~~> sink through every layer.
    previous = "source"
    for i in range(n_layers):
        spine = layer_names[i][0]
        if i > 0:
            builder.add_edge(previous, spine, random_labels())
        previous = spine
    builder.add_edge(previous, "sink", random_labels())
    return builder.build()


def star(
    n_leaves: int,
    label_in: str = "in",
    label_out: str = "out",
) -> Graph:
    """A hub with ``n_leaves`` out-edges and ``n_leaves`` in-edges.

    Useful for testing high in-degree handling (the delay of the paper's
    algorithm must *not* depend on the in-degree; see Section 3.2).
    """
    if n_leaves < 1:
        raise GraphError("need at least one leaf")
    builder = GraphBuilder()
    builder.add_vertex("hub")
    for i in range(n_leaves):
        builder.add_edge(f"src{i}", "hub", [label_in])
        builder.add_edge("hub", f"dst{i}", [label_out])
    return builder.build()
