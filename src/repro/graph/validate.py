"""Structural validation of graph databases.

:class:`~repro.graph.database.Graph` establishes its invariants at
construction time; :func:`validate_graph` re-checks them all and is
used by the test suite (including property-based tests) and by the
deserializers as a defense against hand-crafted inputs.
"""

from __future__ import annotations

from typing import List

from repro.exceptions import GraphError
from repro.graph.database import Graph


def validate_graph(graph: Graph) -> None:
    """Raise :class:`~repro.exceptions.GraphError` on any broken invariant.

    Checks performed:

    1. every edge endpoint is a valid vertex id;
    2. every edge carries at least one valid, duplicate-free label set;
    3. ``Out`` lists partition the edges by source, ``In`` by target;
    4. ``TgtIdx(e)`` is exactly the position of ``e`` in ``In(Tgt(e))``;
    5. costs, when present, are positive integers;
    6. vertex and label names are unique.
    """
    problems: List[str] = []
    n, m = graph.vertex_count, graph.edge_count

    for e in graph.edges():
        if not 0 <= graph.src(e) < n:
            problems.append(f"edge {e}: bad source {graph.src(e)}")
        if not 0 <= graph.tgt(e) < n:
            problems.append(f"edge {e}: bad target {graph.tgt(e)}")
        labels = graph.labels(e)
        if not labels:
            problems.append(f"edge {e}: empty label set")
        if len(set(labels)) != len(labels):
            problems.append(f"edge {e}: duplicate labels {labels}")
        if any(not 0 <= a < graph.label_count for a in labels):
            problems.append(f"edge {e}: label id out of range {labels}")
        if graph.has_costs and graph.cost(e) <= 0:
            problems.append(f"edge {e}: non-positive cost {graph.cost(e)}")

    seen_out = sorted(e for v in graph.vertices() for e in graph.out_edges(v))
    seen_in = sorted(e for v in graph.vertices() for e in graph.in_edges(v))
    if seen_out != list(range(m)):
        problems.append("Out lists do not partition the edge set")
    if seen_in != list(range(m)):
        problems.append("In lists do not partition the edge set")

    for v in graph.vertices():
        for i, e in enumerate(graph.in_edges(v)):
            if graph.tgt(e) != v:
                problems.append(f"In({v}) contains foreign edge {e}")
            if graph.tgt_idx(e) != i:
                problems.append(
                    f"TgtIdx({e}) = {graph.tgt_idx(e)} but position is {i}"
                )

    names = [graph.vertex_name(v) for v in graph.vertices()]
    if len(set(names)) != len(names):
        problems.append("duplicate vertex names")
    if len(set(graph.alphabet)) != len(graph.alphabet):
        problems.append("duplicate label names")

    if problems:
        raise GraphError("; ".join(problems))
