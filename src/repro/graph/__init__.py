"""Graph-database substrate: multi-labeled multi-edge directed graphs.

This subpackage implements the paper's data model (Definition 3) with
the exact memory representation assumed by the complexity analysis
(Section 2.2): every vertex exposes its ``In``/``Out`` edge arrays and
degrees in O(1), and every edge exposes its source, target, label set
and ``TgtIdx`` — its position inside ``In(Tgt(e))`` — in O(1).

Public entry points:

* :class:`~repro.graph.database.Graph` — the immutable database;
* :class:`~repro.graph.builder.GraphBuilder` — ergonomic construction
  by vertex/label *names*;
* :mod:`repro.graph.generators` — synthetic databases for tests,
  examples and benchmarks;
* :mod:`repro.graph.io` — JSON and edge-list persistence;
* :mod:`repro.graph.property_graph` — property graphs (edges with data
  values) and their projection to multi-labeled databases via named
  boolean predicates, the abstraction the paper's Section 1 describes.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.database import Graph
from repro.graph.io import (
    graph_from_dict,
    graph_to_dict,
    load_edge_list,
    load_json,
    load_property_graph_json,
    property_graph_from_dict,
    property_graph_to_dict,
    save_edge_list,
    save_json,
    save_property_graph_json,
)
from repro.graph.property_graph import (
    LabelRule,
    Projection,
    PropertyGraph,
    project,
    type_is,
)
from repro.graph.validate import validate_graph

__all__ = [
    "Graph",
    "GraphBuilder",
    "LabelRule",
    "Projection",
    "PropertyGraph",
    "graph_from_dict",
    "graph_to_dict",
    "load_edge_list",
    "load_json",
    "load_property_graph_json",
    "project",
    "property_graph_from_dict",
    "property_graph_to_dict",
    "save_edge_list",
    "save_json",
    "save_property_graph_json",
    "type_is",
    "validate_graph",
]
