"""Property graphs and their projection to multi-labeled databases.

The paper models data as multi-labeled graphs and notes (Section 1)
that multiple labels arise "either natively (as in GQL), or as a
theoretical abstraction of boolean tests on data values".  Example 9
makes that concrete: transfers have amounts, dates, operating banks —
and the labels ``h`` ("high value") and ``s`` ("suspicious") are
predicates over those values.

This module implements the abstraction end-to-end:

* :class:`PropertyGraph` — a property-graph data model (vertices and
  edges carry arbitrary key→value properties, edges have an optional
  relationship type and cost), matching what GQL/Cypher/PGQL engines
  store;
* :class:`LabelRule` — a named boolean predicate over edge properties;
* :func:`project` — evaluates every rule on every edge and produces
  the multi-labeled :class:`~repro.graph.database.Graph` the paper's
  algorithm runs on, together with an edge-id mapping back to the
  original data (:class:`Projection`).

>>> pg = PropertyGraph()
>>> _ = pg.add_edge("Alix", "Dan", amount=25_000, flagged=True)
>>> rules = [
...     LabelRule("h", lambda e: e["amount"] >= 10_000),
...     LabelRule("s", lambda e: e.get("flagged", False)),
... ]
>>> projection = project(pg, rules)
>>> projection.graph.label_names_of(0)
('h', 's')
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.database import Graph

#: A predicate over an edge's property mapping.
EdgePredicate = Callable[[Mapping[str, Any]], bool]


class LabelRule:
    """A named boolean test on edge properties.

    ``predicate`` receives the edge's property mapping (the
    relationship type, when set, is visible under the reserved key
    ``"type"``) and returns whether the edge carries ``label``.

    >>> high = LabelRule("h", lambda e: e["amount"] >= 10_000,
    ...                  description="high-value transfer")
    >>> high.matches({"amount": 50_000})
    True
    """

    __slots__ = ("label", "predicate", "description")

    def __init__(
        self,
        label: str,
        predicate: EdgePredicate,
        description: str = "",
    ) -> None:
        if not isinstance(label, str) or not label:
            raise GraphError(
                f"rule labels must be non-empty strings, got {label!r}"
            )
        self.label = label
        self.predicate = predicate
        self.description = description

    def matches(self, properties: Mapping[str, Any]) -> bool:
        """Evaluate the predicate (exceptions propagate to the caller)."""
        return bool(self.predicate(properties))

    def __repr__(self) -> str:
        hint = f" ({self.description})" if self.description else ""
        return f"LabelRule({self.label!r}{hint})"


def type_is(rel_type: str) -> EdgePredicate:
    """Predicate: the edge's relationship type equals ``rel_type``."""
    return lambda e: e.get("type") == rel_type


class PropertyGraph:
    """A mutable directed property graph (multi-edges allowed).

    Vertices are identified by hashable names; both vertices and edges
    carry arbitrary properties.  Edge insertion order is preserved by
    :func:`project`, so the enumeration order of walks over a
    projection is deterministic.
    """

    def __init__(self) -> None:
        self._vertex_props: Dict[Hashable, Dict[str, Any]] = {}
        self._edges: List[Tuple[Hashable, Hashable, Dict[str, Any]]] = []

    # -- construction ------------------------------------------------------

    def add_vertex(self, name: Hashable, **properties: Any) -> Hashable:
        """Register a vertex; repeated calls merge properties."""
        self._vertex_props.setdefault(name, {}).update(properties)
        return name

    def add_edge(
        self,
        src: Hashable,
        tgt: Hashable,
        rel_type: Optional[str] = None,
        cost: Optional[int] = None,
        **properties: Any,
    ) -> int:
        """Add an edge with properties; returns its edge id.

        ``rel_type`` is stored under the reserved property key
        ``"type"``; ``cost`` under ``"cost"`` (it is also forwarded to
        the projected graph for the Distinct Cheapest Walks
        extension).
        """
        self.add_vertex(src)
        self.add_vertex(tgt)
        props = dict(properties)
        if rel_type is not None:
            props["type"] = rel_type
        if cost is not None:
            props["cost"] = cost
        self._edges.append((src, tgt, props))
        return len(self._edges) - 1

    # -- inspection -----------------------------------------------------------

    @property
    def vertex_count(self) -> int:
        """Number of vertices."""
        return len(self._vertex_props)

    @property
    def edge_count(self) -> int:
        """Number of edges."""
        return len(self._edges)

    def vertices(self) -> Iterator[Hashable]:
        """Vertex names, in registration order."""
        return iter(self._vertex_props)

    def vertex_properties(self, name: Hashable) -> Mapping[str, Any]:
        """The property mapping of a vertex."""
        if name not in self._vertex_props:
            raise GraphError(f"unknown vertex: {name!r}")
        return dict(self._vertex_props[name])

    def edge(self, eid: int) -> Tuple[Hashable, Hashable, Mapping[str, Any]]:
        """``(src, tgt, properties)`` of edge ``eid``."""
        if not 0 <= eid < len(self._edges):
            raise GraphError(f"unknown edge id: {eid}")
        src, tgt, props = self._edges[eid]
        return src, tgt, dict(props)

    def edges(
        self,
    ) -> Iterator[Tuple[int, Hashable, Hashable, Mapping[str, Any]]]:
        """Iterate ``(edge id, src, tgt, properties)``."""
        for eid, (src, tgt, props) in enumerate(self._edges):
            yield eid, src, tgt, dict(props)

    def __repr__(self) -> str:
        return (
            f"PropertyGraph(|V|={self.vertex_count}, "
            f"|E|={self.edge_count})"
        )


class Projection:
    """A multi-labeled :class:`Graph` plus the mapping to its origin.

    ``graph`` is what the enumeration algorithm consumes;
    ``original_edge_ids[e]`` is the :class:`PropertyGraph` edge id
    behind the projected edge ``e``, so answers can be joined back to
    the underlying records (amounts, dates, ...).
    """

    __slots__ = ("graph", "source", "rules", "original_edge_ids", "dropped")

    def __init__(
        self,
        graph: Graph,
        source: PropertyGraph,
        rules: Sequence[LabelRule],
        original_edge_ids: Tuple[int, ...],
        dropped: Tuple[int, ...],
    ) -> None:
        self.graph = graph
        self.source = source
        self.rules = tuple(rules)
        self.original_edge_ids = original_edge_ids
        self.dropped = dropped

    def original_edges(self, walk) -> List[Tuple[Hashable, Hashable, Mapping[str, Any]]]:
        """The property-graph records behind a walk's edges.

        Accepts a :class:`~repro.core.walks.Walk` over :attr:`graph`
        (or any iterable of projected edge ids).
        """
        edges = getattr(walk, "edges", walk)
        return [self.source.edge(self.original_edge_ids[e]) for e in edges]

    def __repr__(self) -> str:
        return (
            f"Projection(|E|={self.graph.edge_count}, "
            f"dropped={len(self.dropped)}, "
            f"rules={[r.label for r in self.rules]})"
        )


def project(
    pg: PropertyGraph,
    rules: Sequence[LabelRule],
    on_unlabeled: str = "drop",
    include_costs: bool = True,
) -> Projection:
    """Evaluate ``rules`` on every edge and build the labeled graph.

    Each edge receives the labels of all rules whose predicate holds.
    Edges satisfying no rule cannot participate in any match; by
    default they are dropped from the projection (``on_unlabeled=
    "drop"``), which keeps the database — and hence preprocessing —
    small.  ``on_unlabeled="error"`` raises instead, for schemas where
    every edge is expected to be classified.

    With ``include_costs=True``, an integer edge property ``"cost"``
    is forwarded to the projected graph, enabling Distinct Cheapest
    Walks over projections.

    Complexity: O(|E| × |rules|) predicate evaluations; the projection
    is a fresh immutable graph, so re-projecting after rule changes is
    side-effect-free.
    """
    if on_unlabeled not in ("drop", "error"):
        raise GraphError(
            f"on_unlabeled must be 'drop' or 'error', got {on_unlabeled!r}"
        )
    seen_labels = set()
    for rule in rules:
        if rule.label in seen_labels:
            raise GraphError(f"duplicate rule label {rule.label!r}")
        seen_labels.add(rule.label)

    builder = GraphBuilder()
    for name in pg.vertices():
        builder.add_vertex(name)

    kept: List[int] = []
    dropped: List[int] = []
    for eid, src, tgt, props in pg.edges():
        labels = [rule.label for rule in rules if rule.matches(props)]
        if not labels:
            if on_unlabeled == "error":
                raise GraphError(
                    f"edge {eid} ({src!r} -> {tgt!r}) satisfies no rule"
                )
            dropped.append(eid)
            continue
        cost = props.get("cost") if include_costs else None
        builder.add_edge(src, tgt, labels, cost=cost)
        kept.append(eid)

    return Projection(
        graph=builder.build(),
        source=pg,
        rules=rules,
        original_edge_ids=tuple(kept),
        dropped=tuple(dropped),
    )
