"""Command-line interface: run RPQ shortest-walk queries on graph files.

Usage (also available as ``python -m repro``)::

    python -m repro query   GRAPH "h* s (h | s)*" Alix Bob
    python -m repro query   GRAPH "s{1,3}" acct0 --all-targets
    python -m repro query   GRAPH "train* bus*" Paris Genoa --cheapest
    python -m repro pattern GRAPH "ALL SHORTEST (Alix)-[:h|:s]->+(Bob)"
    python -m repro count   GRAPH "h* s (h | s)*" Alix Bob
    python -m repro plan    GRAPH "(a | b)* c"
    python -m repro stats   GRAPH
    python -m repro stats   --port 7687
    python -m repro batch   GRAPH requests.jsonl --workers 4 --stats
    python -m repro mutate  GRAPH ops.jsonl --save updated.json
    python -m repro mutate  GRAPH ops.jsonl --wal-dir wal/
    python -m repro recover wal/ --save recovered.json
    python -m repro follow  wal/ --once --query "h+" --source Alix --target Bob
    python -m repro serve   GRAPH --port 7687 --workers 4 --metrics 9090

``GRAPH`` is a path to either a JSON database (``save_json``) or the
line-based edge-list format::

    Alix -> Dan : h, s
    Dan  -> Eve : h @ 3      # optional cost after '@'

``batch`` runs a JSONL file of requests (one JSON object per line, see
:mod:`repro.service.requests`) through a cached
:class:`~repro.service.QueryService` and prints one JSON response per
line; per-request problems become ``"status": "error"`` response lines
rather than aborting the batch.  A batch line with a ``"mutate"`` key
is a write barrier applied to the (live) graph between the
surrounding queries.

``mutate`` applies a JSONL file of mutation ops (one op object per
line, see :mod:`repro.live.delta`) to the graph as a single batch
over a :class:`~repro.live.LiveGraph` overlay, prints the batch
receipt as JSON, and with ``--save`` writes the compacted result back
to a graph JSON file.

Durability (:mod:`repro.wal`): ``--wal-dir`` on ``batch``/``mutate``
logs every applied batch to a write-ahead log *before* applying it —
and when the directory already holds durable state, that state wins
over the ``GRAPH`` file (the restart flow: pass the same bootstrap
graph every time).  ``recover`` rebuilds the state of a WAL directory
(latest valid snapshot + tail replay) and reports the log geometry;
``follow`` tails a WAL directory as a read-only replica and can
answer queries from it.

Serving (:mod:`repro.serve`): ``serve`` publishes the packed graph
into a shared-memory segment and answers the same JSONL protocol over
TCP from a pool of worker processes (``--stdio`` serves a single
connection over stdin/stdout instead).  The bound address is printed
as ``listening on HOST:PORT`` once the workers are ready; stop with
SIGTERM/Ctrl-C for a graceful drain.

Exit codes: 0 = answers found / info printed, 1 = no matching walk
(for ``batch``: at least one request errored), 2 = input error (bad
file, vertex, query syntax, or malformed JSONL).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.api import Database
from repro.core.compile import compile_query
from repro.core.engine import DistinctShortestWalks
from repro.exceptions import ReproError
from repro.graph.database import Graph
from repro.graph.io import load_edge_list, load_json
from repro.query import analyze, parse_pattern, rpq


def _load_graph(path: str) -> Graph:
    file_path = Path(path)
    if not file_path.exists():
        raise ReproError(f"graph file not found: {path}")
    if file_path.suffix.lower() == ".json":
        return load_json(file_path)
    return load_edge_list(file_path)


def _base_query(args: argparse.Namespace, db: Database):
    """The façade query shared by every ``query`` subcommand path."""
    query = (
        db.query(args.expression)
        .construction(args.construction)
        .mode(args.mode)
        .semantics(getattr(args, "semantics", "walks"))
    )
    if args.cheapest:
        query = query.cheapest()
    return query


def _cmd_query(args: argparse.Namespace) -> int:
    db = Database(_load_graph(args.graph))
    base = _base_query(args, db)

    if args.json:
        return _query_json(args, db, base)

    if args.all_targets:
        # One preprocessing for every target: targets() and the pair
        # queries below all share the cached saturated annotation.
        reached = base.from_(args.source).to_all().targets()
        if not reached:
            print("no matching walk to any target")
            return 1
        for name, lam in reached:
            print(f"=== {name} (λ = {lam}) ===")
            rows = base.from_(args.source).to(name).run()
            for row in _limited(rows, args.limit):
                print(f"  {row.describe()}")
        return 0

    if args.target is None:
        print("error: TARGET is required unless --all-targets is given",
              file=sys.stderr)
        return 2

    pair = base.from_(args.source).to(args.target)
    if args.cheapest:
        result = pair.run()
        if result.lam is None:
            print("no matching walk")
            return 1
        print(f"cheapest matching cost: {result.lam}")
        for row in _limited(result, args.limit):
            print(f"  {row.describe()}")
        return 0

    result = pair.with_multiplicity(args.multiplicity).run()
    if result.lam is None:
        print("no matching walk")
        return 1
    print(f"λ = {result.lam}")
    if args.multiplicity:
        for row in _limited(result, args.limit):
            print(f"  [{row.multiplicity} runs] {row.describe()}")
    else:
        for row in _limited(result, args.limit):
            print(f"  {row.describe()}")
    if args.count:
        print(f"total answers: {pair.count()}")
    return 0


def _query_json(args: argparse.Namespace, db: Database, base) -> int:
    """Machine-readable variant of the query command."""
    import json

    def take(query):
        if args.limit is not None:
            query = query.limit(args.limit)
        return [row.walk.to_dict() for row in query.run()]

    if args.all_targets:
        fan = base.from_(args.source).to_all()
        payload = {
            "query": args.expression,
            "source": args.source,
            "targets": {
                str(name): {
                    "lam": lam,
                    "walks": take(base.from_(args.source).to(name)),
                }
                for name, lam in fan.targets()
            },
        }
        print(json.dumps(payload, indent=2))
        return 0 if payload["targets"] else 1

    if args.target is None:
        print("error: TARGET is required unless --all-targets is given",
              file=sys.stderr)
        return 2

    pair = base.from_(args.source).to(args.target)
    if args.limit is not None:
        pair = pair.limit(args.limit)
    result = pair.run()
    payload = {
        "query": args.expression,
        "source": args.source,
        "target": args.target,
        "lam": result.lam,
        "walks": [row.walk.to_dict() for row in result],
    }
    print(json.dumps(payload, indent=2))
    return 0 if result.lam is not None else 1


def _cmd_pattern(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    pattern = parse_pattern(args.pattern)
    print(f"compiled RPQ: {pattern.regex}")
    engine = pattern.engine(graph)
    if engine.is_empty:
        print("no matching walk")
        return 1
    print(f"λ = {engine.lam}")
    for walk in _limited(pattern.run(graph), args.limit):
        print(f"  {walk.describe()}")
    return 0


def _cmd_count(args: argparse.Namespace) -> int:
    """Answer counts and duplicate-blowup measures, without enumeration."""
    from repro.automata.ops import remove_epsilon
    from repro.core.count import (
        count_shortest_product_paths,
        count_total_multiplicity,
    )

    graph = _load_graph(args.graph)
    query = rpq(args.expression, method=args.construction)
    engine = DistinctShortestWalks(
        graph, query.automaton, args.source, args.target
    )
    if engine.is_empty:
        print("no matching walk")
        return 1
    answers = engine.count(method="dp")
    print(f"λ = {engine.lam}")
    print(f"distinct shortest walks: {answers}")

    automaton = query.automaton
    if automaton.has_epsilon:
        automaton = remove_epsilon(automaton)
    cq = compile_query(graph, automaton)
    source = graph.resolve_vertex(args.source)
    target = graph.resolve_vertex(args.target)
    _, paths = count_shortest_product_paths(cq, source, target)
    _, mult = count_total_multiplicity(cq, source, target)
    print(f"shortest product paths:  {paths}"
          f"  ({paths / answers:.2f} copies/answer for a naive engine)")
    print(f"total accepting runs:    {mult}")
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    """Run a JSONL batch of requests through a cached QueryService."""
    import json

    from repro.service import QueryService, read_requests_jsonl

    graph = _load_graph(args.graph)
    requests_path = Path(args.requests)
    if not requests_path.exists():
        raise ReproError(f"requests file not found: {args.requests}")
    with requests_path.open("r", encoding="utf-8") as fh:
        requests = list(read_requests_jsonl(fh))

    service = QueryService(
        plan_cache_size=args.plan_cache,
        annotation_cache_size=args.annotation_cache,
        default_mode=args.mode,
        max_workers=args.workers,
        wal_dir=args.wal_dir,
    )
    try:
        service.register_graph("default", graph)
        responses = service.execute_batch(requests)
    finally:
        service.close()
    for response in responses:
        print(response.to_json())
    if args.stats:
        print(json.dumps(service.stats(), indent=2), file=sys.stderr)
    return 1 if any(r.status == "error" for r in responses) else 0


def _cmd_mutate(args: argparse.Namespace) -> int:
    """Apply a JSONL file of mutation ops as one live-graph batch."""
    import json

    from repro.graph.io import save_json
    from repro.live import LiveGraph, op_from_dict
    from repro.service.requests import iter_jsonl

    graph = _load_graph(args.graph)
    ops_path = Path(args.ops)
    if not ops_path.exists():
        raise ReproError(f"ops file not found: {args.ops}")
    ops = []
    with ops_path.open("r", encoding="utf-8") as fh:
        for lineno, payload in iter_jsonl(fh):
            try:
                ops.append(op_from_dict(payload))
            except ReproError as exc:
                raise ReproError(f"line {lineno}: {exc}") from None
    if not ops:
        raise ReproError(f"no mutation ops found in {args.ops}")

    if args.wal_dir:
        # Durable path: recover-or-bootstrap the WAL directory, apply
        # the batch through the logging hook, leave the log fsync'd.
        db = Database.open(args.wal_dir, graph=graph, sync="always")
        try:
            result = db.mutate(ops)
            live = db.live()
            payload = {
                **result.batch.summary(),
                **live.stats(),
                "wal_dir": args.wal_dir,
                "wal_lsn": db.wal_writer().last_lsn,
            }
            if args.save:
                save_json(live.to_graph(), args.save)
                payload["saved"] = args.save
        finally:
            db.close()
        print(json.dumps(payload, indent=2))
        return 0

    live = LiveGraph(graph)
    batch = live.apply(ops)
    payload = {**batch.summary(), **live.stats()}
    if args.save:
        save_json(live.compact(), args.save)
        payload["saved"] = args.save
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    """Recover a WAL directory and report (or save) the result."""
    import json

    from repro.graph.io import save_json
    from repro.wal import recover

    state = recover(args.wal_dir)
    live = state.graph
    payload = {
        "wal_dir": args.wal_dir,
        "last_lsn": state.last_lsn,
        "snapshot_lsn": state.snapshot_lsn,
        "replayed_batches": state.replayed_batches,
        "replayed_compactions": state.replayed_compactions,
        "valid_offset": state.valid_offset,
        "torn_tail": state.torn_tail,
        **live.stats(),
    }
    if args.save:
        save_json(live.to_graph(), args.save)
        payload["saved"] = args.save
    print(json.dumps(payload, indent=2))
    return 0


def _cmd_follow(args: argparse.Namespace) -> int:
    """Tail a WAL directory as a read replica; optionally query it."""
    import json

    from repro.wal import FollowerDatabase

    if (args.query is None) != (args.source is None) or (
        (args.query is None) != (args.target is None)
    ):
        raise ReproError(
            "--query, --source and --target must be given together"
        )
    follower = FollowerDatabase(
        args.wal_dir, poll_interval=args.interval
    )
    if args.once:
        applied = follower.catch_up()
    else:
        applied = follower.run(
            duration=args.duration, max_records=args.max_records
        )
    payload = {
        "wal_dir": args.wal_dir,
        "applied": applied,
        "last_lsn": follower.last_lsn,
        **follower.graph.stats(),
    }
    if args.query is not None:
        query = follower.query(args.query).from_(args.source).to(args.target)
        if args.limit is not None:
            query = query.limit(args.limit)
        result = query.run()
        payload["lam"] = result.lam
        payload["walks"] = [row.walk.to_dict() for row in result]
    print(json.dumps(payload, indent=2))
    if args.query is not None and payload["lam"] is None:
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Boot the multi-process serving tier on a graph file."""
    import asyncio
    import json

    from repro.serve import serve

    graph = _load_graph(args.graph)

    def on_ready(server, port) -> None:
        if port is not None:
            # The scripts/tests boot protocol: one parseable line on
            # stdout announcing the endpoint, flushed immediately.
            print(f"listening on {args.host}:{port}", flush=True)
            print(
                f"workers={server.workers} routing={server.routing} "
                f"segment={server.segment_name}",
                file=sys.stderr,
                flush=True,
            )
            if server.metrics_port is not None:
                print(
                    f"metrics on {args.host}:{server.metrics_port}",
                    file=sys.stderr,
                    flush=True,
                )

    def on_final_stats(stats) -> None:
        # The drain-path snapshot: short-lived (smoke) runs still get
        # their counters, on stderr so stdout stays pure protocol.
        merged = stats.get("merged", {})
        summary = {
            "final_stats": {
                "server": stats.get("server", {}),
                "partial": stats.get("partial", False),
                "service": merged.get("service", {}),
            }
        }
        print(json.dumps(summary, sort_keys=True), file=sys.stderr, flush=True)

    try:
        asyncio.run(
            serve(
                graph,
                host=args.host,
                port=args.port,
                stdio=args.stdio,
                metrics_port=args.metrics,
                on_ready=on_ready,
                on_final_stats=on_final_stats,
                workers=args.workers,
                max_inflight=args.max_inflight,
                routing=args.routing,
                plan_cache_size=args.plan_cache,
                annotation_cache_size=args.annotation_cache,
                default_mode=args.mode,
                slow_ms=args.slow_ms,
            )
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive ^C
        pass
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    graph = _load_graph(args.graph)
    query = rpq(args.expression, method=args.construction)
    print(analyze(graph, query.automaton).explain())
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    if args.port is not None:
        # Remote mode: ask a running `repro serve` pool for its
        # cross-worker aggregation over the JSONL protocol.
        import json

        from repro.serve import ServeClient

        with ServeClient(args.host, args.port) as client:
            response = client.stats()
        print(json.dumps(response, indent=2, sort_keys=True))
        return 0 if response.get("status") == "ok" else 1
    if args.graph is None:
        print(
            "error: either GRAPH or --port is required",
            file=sys.stderr,
        )
        return 2
    graph = _load_graph(args.graph)
    for key, value in graph.stats().items():
        print(f"{key}: {value}")
    print(f"alphabet: {', '.join(graph.alphabet)}")
    return 0


def _limited(iterable, limit: Optional[int]):
    if limit is None:
        yield from iterable
        return
    for i, item in enumerate(iterable):
        if i >= limit:
            print(f"  ... (stopped after {limit})")
            break
        yield item


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distinct shortest walk enumeration for RPQs "
        "(PODS 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    query = sub.add_parser("query", help="enumerate matching walks")
    query.add_argument("graph", help="graph file (.json or edge list)")
    query.add_argument("expression", help="RPQ regular expression")
    query.add_argument("source", help="source vertex name")
    query.add_argument("target", nargs="?", help="target vertex name")
    query.add_argument(
        "--mode",
        choices=["iterative", "recursive", "memoryless", "auto"],
        default="auto",
        help="enumeration engine (default: auto)",
    )
    query.add_argument(
        "--construction",
        choices=["thompson", "glushkov"],
        default="thompson",
        help="regex→NFA construction (default: thompson)",
    )
    query.add_argument(
        "--semantics",
        choices=["walks", "trails", "simple", "any"],
        default="walks",
        help="walk semantics: distinct shortest walks (default), "
        "trails (no repeated edge), simple paths (no repeated "
        "vertex), or any (one witness walk)",
    )
    query.add_argument(
        "--limit", type=int, default=None, help="print at most N walks"
    )
    query.add_argument(
        "--cheapest",
        action="store_true",
        help="minimize total edge cost instead of length",
    )
    query.add_argument(
        "--all-targets",
        action="store_true",
        help="enumerate to every reachable target (one preprocessing)",
    )
    query.add_argument(
        "--multiplicity",
        action="store_true",
        help="print the number of accepting runs per walk",
    )
    query.add_argument(
        "--count", action="store_true", help="print the total answer count"
    )
    query.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of text",
    )
    query.set_defaults(func=_cmd_query)

    pattern = sub.add_parser(
        "pattern", help="run a GQL-style path pattern"
    )
    pattern.add_argument("graph", help="graph file (.json or edge list)")
    pattern.add_argument(
        "pattern",
        help="path pattern, e.g. \"ALL SHORTEST (a)-[:h|:s]->+(b)\"",
    )
    pattern.add_argument(
        "--limit", type=int, default=None, help="print at most N walks"
    )
    pattern.set_defaults(func=_cmd_pattern)

    count = sub.add_parser(
        "count", help="count answers and duplicate blowup (no enumeration)"
    )
    count.add_argument("graph")
    count.add_argument("expression")
    count.add_argument("source")
    count.add_argument("target")
    count.add_argument(
        "--construction",
        choices=["thompson", "glushkov"],
        default="thompson",
    )
    count.set_defaults(func=_cmd_count)

    batch = sub.add_parser(
        "batch",
        help="run a JSONL file of requests through the caching service",
    )
    batch.add_argument("graph", help="graph file (.json or edge list)")
    batch.add_argument(
        "requests", help="JSONL file, one request object per line"
    )
    batch.add_argument(
        "--workers",
        type=int,
        default=4,
        help="thread-pool size for the batch executor (default: 4)",
    )
    batch.add_argument(
        "--mode",
        choices=["iterative", "recursive", "memoryless"],
        default="memoryless",
        help="service default mode for requests that do not set one",
    )
    batch.add_argument(
        "--plan-cache",
        type=int,
        default=256,
        help="plan cache capacity; 0 disables plan caching",
    )
    batch.add_argument(
        "--annotation-cache",
        type=int,
        default=128,
        help="annotation cache capacity; 0 = cold per-request execution",
    )
    batch.add_argument(
        "--stats",
        action="store_true",
        help="print service statistics (cache hit rates, timings) to stderr",
    )
    batch.add_argument(
        "--wal-dir",
        default=None,
        metavar="DIR",
        help="log mutations to a write-ahead log under DIR/default/ "
        "before applying (existing durable state wins over GRAPH)",
    )
    batch.set_defaults(func=_cmd_batch)

    mutate = sub.add_parser(
        "mutate",
        help="apply a JSONL file of mutation ops as one live batch",
    )
    mutate.add_argument("graph", help="graph file (.json or edge list)")
    mutate.add_argument(
        "ops",
        help='JSONL file of ops, e.g. {"op": "add_edge", "src": "A", '
        '"tgt": "B", "labels": ["h"]}',
    )
    mutate.add_argument(
        "--save",
        default=None,
        metavar="OUT.json",
        help="compact the overlay and write the resulting graph JSON",
    )
    mutate.add_argument(
        "--wal-dir",
        default=None,
        metavar="DIR",
        help="apply durably: recover-or-bootstrap DIR, log the batch "
        "to the WAL (fsync) before applying (existing durable state "
        "wins over GRAPH)",
    )
    mutate.set_defaults(func=_cmd_mutate)

    recover_p = sub.add_parser(
        "recover",
        help="rebuild the state of a WAL directory (snapshot + replay)",
    )
    recover_p.add_argument(
        "wal_dir", help="WAL directory (wal.log + snapshots)"
    )
    recover_p.add_argument(
        "--save",
        default=None,
        metavar="OUT.json",
        help="write the recovered graph as JSON",
    )
    recover_p.set_defaults(func=_cmd_recover)

    follow = sub.add_parser(
        "follow",
        help="tail a WAL directory as a read-only replica",
    )
    follow.add_argument(
        "wal_dir", help="WAL directory to tail"
    )
    follow.add_argument(
        "--once",
        action="store_true",
        help="catch up to the current head and exit (no polling)",
    )
    follow.add_argument(
        "--duration",
        type=float,
        default=None,
        metavar="SECONDS",
        help="tail for this long, then report (default: forever)",
    )
    follow.add_argument(
        "--max-records",
        type=int,
        default=None,
        metavar="N",
        help="stop after applying N records",
    )
    follow.add_argument(
        "--interval",
        type=float,
        default=0.05,
        metavar="SECONDS",
        help="initial poll interval; doubles while idle (default: 0.05)",
    )
    follow.add_argument(
        "--query",
        default=None,
        help="after catching up, run this RPQ on the replica",
    )
    follow.add_argument("--source", default=None, help="query source vertex")
    follow.add_argument("--target", default=None, help="query target vertex")
    follow.add_argument(
        "--limit", type=int, default=None, help="emit at most N walks"
    )
    follow.set_defaults(func=_cmd_follow)

    serve_p = sub.add_parser(
        "serve",
        help="serve the graph over TCP from a pool of worker processes",
    )
    serve_p.add_argument("graph", help="graph file (.json or edge list)")
    serve_p.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: local)"
    )
    serve_p.add_argument(
        "--port",
        type=int,
        default=0,
        help="TCP port (default: 0 = pick a free port, printed on stdout)",
    )
    serve_p.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker processes mapping the shared graph (default: 2)",
    )
    serve_p.add_argument(
        "--max-inflight",
        type=int,
        default=8,
        help="bounded in-flight requests per worker (default: 8)",
    )
    serve_p.add_argument(
        "--routing",
        choices=["round_robin", "affinity"],
        default="round_robin",
        help="dispatch policy: round_robin, or affinity — pin each "
        "(query, source) pair to one worker so the pool's aggregate "
        "annotation-cache capacity scales with the worker count",
    )
    serve_p.add_argument(
        "--mode",
        choices=["iterative", "recursive", "memoryless"],
        default="memoryless",
        help="worker default mode for requests that do not set one",
    )
    serve_p.add_argument(
        "--plan-cache",
        type=int,
        default=256,
        help="per-worker plan cache capacity",
    )
    serve_p.add_argument(
        "--annotation-cache",
        type=int,
        default=128,
        help="per-worker annotation cache capacity",
    )
    serve_p.add_argument(
        "--stdio",
        action="store_true",
        help="serve one JSONL connection over stdin/stdout instead of TCP",
    )
    serve_p.add_argument(
        "--metrics",
        type=int,
        default=None,
        metavar="PORT",
        help="also expose Prometheus-style text metrics on this port "
        "(0 = pick a free port, printed on stderr)",
    )
    serve_p.add_argument(
        "--slow-ms",
        type=float,
        default=0.0,
        metavar="MS",
        help="worker slow-query log threshold in milliseconds "
        "(default: 0 = record every request's span tree)",
    )
    serve_p.set_defaults(func=_cmd_serve)

    plan = sub.add_parser("plan", help="explain the chosen algorithm")
    plan.add_argument("graph")
    plan.add_argument("expression")
    plan.add_argument(
        "--construction",
        choices=["thompson", "glushkov"],
        default="thompson",
    )
    plan.set_defaults(func=_cmd_plan)

    stats = sub.add_parser(
        "stats",
        help="print database statistics, or query a running server's "
        "observability aggregation with --port",
    )
    stats.add_argument(
        "graph", nargs="?", default=None, help="graph file (local mode)"
    )
    stats.add_argument(
        "--host", default="127.0.0.1", help="serve-pool host (remote mode)"
    )
    stats.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve-pool port: fetch the cross-worker stats aggregation "
        "from a running `repro serve` instead of reading a graph file",
    )
    stats.set_defaults(func=_cmd_stats)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
