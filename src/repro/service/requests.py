"""Request/response model of the batched query service.

A :class:`QueryRequest` is one RPQ evaluation: *enumerate the distinct
shortest walks matching ``query`` from ``source`` to ``target``*, plus
serving knobs (pagination, engine mode, time budget).  Requests
round-trip through JSON dictionaries — the on-disk batch format is
JSONL, one request object per line::

    {"query": "h* s (h | s)*", "source": "Alix", "target": "Bob"}
    {"query": "h+", "source": "Alix", "target": "Dan", "limit": 10}

A :class:`QueryResponse` carries the outcome:

* ``status`` — ``"ok"`` (answers enumerated), ``"empty"`` (no matching
  walk), ``"timeout"`` (budget exhausted; ``walks`` holds the partial
  page and ``next_cursor`` resumes it), or ``"error"`` (bad input —
  ``error`` holds the message, nothing was executed);
* ``lam`` — λ, the answer length (``None`` for empty/error);
* ``walks`` — the page of answers, in the paper's enumeration order,
  each rendered with :meth:`repro.core.walks.Walk.to_dict`;
* ``next_cursor`` — opaque resume token (the last walk's edge ids) to
  pass as ``cursor`` in a follow-up request for the next page, or
  ``None`` when the enumeration is exhausted;
* ``cached`` — which preprocessing layers were served from cache;
* ``timings`` — wall-clock seconds per phase for this request.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Hashable, Iterable, Iterator, List, Optional, Tuple

from repro.exceptions import ReproError

_MODES = ("auto", "iterative", "recursive", "memoryless")
_CONSTRUCTIONS = ("thompson", "glushkov")


class RequestError(ReproError):
    """A request is malformed (unknown field, bad type, bad value)."""


@dataclass
class QueryRequest:
    """One RPQ evaluation request against a registered graph."""

    query: str
    source: Hashable
    target: Hashable
    #: Registered graph name; ``None`` selects the service's sole graph.
    graph: Optional[str] = None
    #: Engine mode override; ``"auto"`` lets the service pick.
    mode: str = "auto"
    #: Regex → NFA construction for the plan.
    construction: str = "thompson"
    #: Page size; ``None`` = all answers.
    limit: Optional[int] = None
    #: Answers to skip before the page starts (O(offset) walk work;
    #: applied *after* ``cursor`` seeking).  If a timeout interrupts
    #: the skip phase, the response's ``skipped`` counter says how far
    #: it got — resume with the returned cursor and the remaining
    #: ``offset - skipped``.
    offset: int = 0
    #: Resume token from a previous response's ``next_cursor`` — the
    #: page starts right after that walk (O(λ) seek in memoryless mode).
    cursor: Optional[Tuple[int, ...]] = None
    #: Per-request wall-clock budget in milliseconds; ``None`` = none.
    timeout_ms: Optional[float] = None
    #: Client-chosen id, echoed verbatim in the response.
    id: Optional[Any] = None

    def validate(self) -> "QueryRequest":
        if not isinstance(self.query, str) or not self.query.strip():
            raise RequestError("'query' must be a non-empty string")
        if self.source is None or self.target is None:
            raise RequestError("'source' and 'target' are required")
        if self.mode not in _MODES:
            raise RequestError(
                f"unknown mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.construction not in _CONSTRUCTIONS:
            raise RequestError(
                f"unknown construction {self.construction!r}; "
                f"expected one of {_CONSTRUCTIONS}"
            )
        if self.limit is not None and (
            not isinstance(self.limit, int) or self.limit < 1
        ):
            raise RequestError("'limit' must be a positive integer")
        if not isinstance(self.offset, int) or self.offset < 0:
            raise RequestError("'offset' must be a non-negative integer")
        if self.cursor is not None:
            if not isinstance(self.cursor, (list, tuple)) or not all(
                isinstance(e, int) and e >= 0 for e in self.cursor
            ):
                raise RequestError(
                    "'cursor' must be a list of non-negative edge ids"
                )
            self.cursor = tuple(self.cursor)
        if self.timeout_ms is not None and (
            not isinstance(self.timeout_ms, (int, float))
            or self.timeout_ms < 0
        ):
            raise RequestError("'timeout_ms' must be a non-negative number")
        return self

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QueryRequest":
        if not isinstance(payload, dict):
            raise RequestError(
                f"request must be a JSON object, got {type(payload).__name__}"
            )
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(payload) - known
        if unknown:
            raise RequestError(
                f"unknown request field(s): {', '.join(sorted(unknown))}"
            )
        missing = {"query", "source", "target"} - set(payload)
        if missing:
            raise RequestError(
                f"missing request field(s): {', '.join(sorted(missing))}"
            )
        return cls(**payload).validate()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "query": self.query,
            "source": self.source,
            "target": self.target,
        }
        if self.graph is not None:
            out["graph"] = self.graph
        if self.mode != "auto":
            out["mode"] = self.mode
        if self.construction != "thompson":
            out["construction"] = self.construction
        if self.limit is not None:
            out["limit"] = self.limit
        if self.offset:
            out["offset"] = self.offset
        if self.cursor is not None:
            out["cursor"] = list(self.cursor)
        if self.timeout_ms is not None:
            out["timeout_ms"] = self.timeout_ms
        if self.id is not None:
            out["id"] = self.id
        return out


@dataclass
class QueryResponse:
    """Outcome of one :class:`QueryRequest`."""

    status: str  # "ok" | "empty" | "timeout" | "error"
    lam: Optional[int] = None
    walks: List[Dict[str, Any]] = field(default_factory=list)
    next_cursor: Optional[List[int]] = None
    #: Answers consumed by the request's ``offset`` (≤ offset; smaller
    #: only when a timeout interrupted the skip phase).
    skipped: int = 0
    error: Optional[str] = None
    cached: Dict[str, bool] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    id: Optional[Any] = None

    @property
    def ok(self) -> bool:
        """True unless the request itself was rejected."""
        return self.status != "error"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "status": self.status,
            "lam": self.lam,
            "walks": self.walks,
            "next_cursor": self.next_cursor,
        }
        if self.skipped:
            out["skipped"] = self.skipped
        if self.error is not None:
            out["error"] = self.error
        if self.cached:
            out["cached"] = self.cached
        if self.timings:
            out["timings"] = {
                k: round(v, 6) for k, v in self.timings.items()
            }
        if self.id is not None:
            out["id"] = self.id
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=False)


def read_requests_jsonl(lines: Iterable[str]) -> Iterator[QueryRequest]:
    """Parse a JSONL stream into requests.

    Blank lines and ``#`` comment lines are skipped.  A syntactically
    broken line raises :class:`RequestError` naming the line number —
    a malformed batch file is a caller bug, not a per-request failure.
    """
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise RequestError(
                f"line {lineno}: invalid JSON ({exc.msg})"
            ) from None
        try:
            yield QueryRequest.from_dict(payload)
        except RequestError as exc:
            raise RequestError(f"line {lineno}: {exc}") from None
