"""Request/response model of the batched query service.

A :class:`QueryRequest` is one RPQ evaluation: *enumerate the distinct
shortest walks matching ``query`` from ``source`` to ``target``*, plus
serving knobs (pagination, engine mode, time budget).  A
:class:`MutationRequest` is one write batch against a live graph
(:mod:`repro.live`): a list of mutation ops applied atomically with
fine-grained cache invalidation.  Requests round-trip through JSON
dictionaries — the on-disk batch format is JSONL, one request object
per line; a line is a mutation iff it carries a ``"mutate"`` key::

    {"query": "h* s (h | s)*", "source": "Alix", "target": "Bob"}
    {"mutate": [{"op": "add_edge", "src": "Alix", "tgt": "Eve",
                 "labels": ["h"]}]}
    {"query": "h+", "source": "Alix", "target": "Eve", "limit": 10}

Within a batch, a mutation acts as a **barrier**: the service executes
every query before it (concurrently), then the mutation, then the
rest — so the third line above sees the edge the second line added.

A :class:`QueryResponse` carries the outcome:

* ``status`` — ``"ok"`` (answers enumerated), ``"empty"`` (no matching
  walk), ``"timeout"`` (budget exhausted; ``walks`` holds the partial
  page and ``next_cursor`` resumes it), or ``"error"`` (bad input —
  ``error`` holds the message, nothing was executed);
* ``lam`` — λ, the answer length (``None`` for empty/error);
* ``walks`` — the page of answers, in the paper's enumeration order,
  each rendered with :meth:`repro.core.walks.Walk.to_dict`;
* ``next_cursor`` — opaque resume token (the last walk's edge ids) to
  pass as ``cursor`` in a follow-up request for the next page, or
  ``None`` when the enumeration is exhausted;
* ``cached`` — which preprocessing layers were served from cache;
* ``timings`` — wall-clock seconds per phase for this request.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.exceptions import ReproError

_MODES = ("auto", "iterative", "recursive", "memoryless")
_CONSTRUCTIONS = ("thompson", "glushkov")
_SEMANTICS = ("walks", "trails", "simple", "any")


class RequestError(ReproError):
    """A request is malformed (unknown field, bad type, bad value)."""


@dataclass
class QueryRequest:
    """One RPQ evaluation request against a registered graph."""

    query: str
    source: Hashable
    target: Hashable
    #: Registered graph name; ``None`` selects the service's sole graph.
    graph: Optional[str] = None
    #: Engine mode override; ``"auto"`` lets the service pick.
    mode: str = "auto"
    #: Regex → NFA construction for the plan.
    construction: str = "thompson"
    #: Walk semantics: ``"walks"`` (distinct shortest walks, the
    #: default), ``"trails"`` / ``"simple"`` (no repeated edge /
    #: vertex), or ``"any"`` (one witness walk per pair).
    semantics: str = "walks"
    #: Page size; ``None`` = all answers.
    limit: Optional[int] = None
    #: Answers to skip before the page starts (O(offset) walk work;
    #: applied *after* ``cursor`` seeking).  If a timeout interrupts
    #: the skip phase, the response's ``skipped`` counter says how far
    #: it got — resume with the returned cursor and the remaining
    #: ``offset - skipped``.
    offset: int = 0
    #: Resume token from a previous response's ``next_cursor`` — the
    #: page starts right after that walk (O(λ) seek in memoryless mode).
    cursor: Optional[Tuple[int, ...]] = None
    #: Per-request wall-clock budget in milliseconds; ``None`` = none.
    timeout_ms: Optional[float] = None
    #: Client-chosen id, echoed verbatim in the response.
    id: Optional[Any] = None

    def validate(self) -> "QueryRequest":
        if not isinstance(self.query, str) or not self.query.strip():
            raise RequestError("'query' must be a non-empty string")
        if self.source is None or self.target is None:
            raise RequestError("'source' and 'target' are required")
        if self.mode not in _MODES:
            raise RequestError(
                f"unknown mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.construction not in _CONSTRUCTIONS:
            raise RequestError(
                f"unknown construction {self.construction!r}; "
                f"expected one of {_CONSTRUCTIONS}"
            )
        if self.semantics not in _SEMANTICS:
            raise RequestError(
                f"unknown semantics {self.semantics!r}; "
                f"expected one of {_SEMANTICS}"
            )
        if self.limit is not None and (
            not isinstance(self.limit, int) or self.limit < 1
        ):
            raise RequestError("'limit' must be a positive integer")
        if not isinstance(self.offset, int) or self.offset < 0:
            raise RequestError("'offset' must be a non-negative integer")
        if self.cursor is not None:
            if not isinstance(self.cursor, (list, tuple)) or not all(
                isinstance(e, int) and e >= 0 for e in self.cursor
            ):
                raise RequestError(
                    "'cursor' must be a list of non-negative edge ids"
                )
            self.cursor = tuple(self.cursor)
        if self.timeout_ms is not None and (
            not isinstance(self.timeout_ms, (int, float))
            or self.timeout_ms < 0
        ):
            raise RequestError("'timeout_ms' must be a non-negative number")
        return self

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "QueryRequest":
        if not isinstance(payload, dict):
            raise RequestError(
                f"request must be a JSON object, got {type(payload).__name__}"
            )
        known = {f for f in cls.__dataclass_fields__}  # noqa: C416
        unknown = set(payload) - known
        if unknown:
            raise RequestError(
                f"unknown request field(s): {', '.join(sorted(unknown))}"
            )
        missing = {"query", "source", "target"} - set(payload)
        if missing:
            raise RequestError(
                f"missing request field(s): {', '.join(sorted(missing))}"
            )
        return cls(**payload).validate()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "query": self.query,
            "source": self.source,
            "target": self.target,
        }
        if self.graph is not None:
            out["graph"] = self.graph
        if self.mode != "auto":
            out["mode"] = self.mode
        if self.construction != "thompson":
            out["construction"] = self.construction
        if self.semantics != "walks":
            out["semantics"] = self.semantics
        if self.limit is not None:
            out["limit"] = self.limit
        if self.offset:
            out["offset"] = self.offset
        if self.cursor is not None:
            out["cursor"] = list(self.cursor)
        if self.timeout_ms is not None:
            out["timeout_ms"] = self.timeout_ms
        if self.id is not None:
            out["id"] = self.id
        return out


@dataclass
class MutationRequest:
    """One write batch against a registered live graph.

    ``ops`` is the list of wire-form mutation ops (see
    :mod:`repro.live.delta`); they are parsed and type-checked by
    :meth:`validate`, and applied atomically by
    :meth:`repro.service.QueryService.execute`.
    """

    ops: List[Dict[str, Any]]
    #: Registered graph name; ``None`` selects the service's sole graph.
    graph: Optional[str] = None
    #: Compaction policy: ``"auto"`` (threshold), ``"always"``, ``"never"``.
    compact: str = "auto"
    #: Client-chosen id, echoed verbatim in the response.
    id: Optional[Any] = None

    _COMPACT = ("auto", "always", "never")

    def validate(self) -> "MutationRequest":
        from repro.live.delta import ops_from_dicts

        if not isinstance(self.ops, (list, tuple)) or not self.ops:
            raise RequestError(
                "'mutate' must be a non-empty list of op objects"
            )
        if self.compact not in self._COMPACT:
            raise RequestError(
                f"unknown compact policy {self.compact!r}; expected "
                f"one of {self._COMPACT}"
            )
        # Malformed op payloads raise the typed InvalidDeltaError,
        # which propagates as itself: QueryService maps it to a
        # structured ``code="invalid_delta"`` error response, and
        # read_requests_jsonl re-wraps it with the line number.
        self.parsed_ops = ops_from_dicts(self.ops)
        return self

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MutationRequest":
        known = {"mutate", "graph", "compact", "id"}
        unknown = set(payload) - known
        if unknown:
            raise RequestError(
                "unknown mutation request field(s): "
                f"{', '.join(sorted(unknown))}"
            )
        return cls(
            ops=payload["mutate"],
            graph=payload.get("graph"),
            compact=payload.get("compact", "auto"),
            id=payload.get("id"),
        ).validate()

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"mutate": list(self.ops)}
        if self.graph is not None:
            out["graph"] = self.graph
        if self.compact != "auto":
            out["compact"] = self.compact
        if self.id is not None:
            out["id"] = self.id
        return out


#: Either kind of JSONL request line.
Request = Union["QueryRequest", "MutationRequest"]


@dataclass
class MutationResponse:
    """Outcome of one :class:`MutationRequest`."""

    status: str  # "ok" | "error"
    #: :meth:`repro.api.MutationResult.as_dict` of the applied batch.
    result: Dict[str, Any] = field(default_factory=dict)
    error: Optional[str] = None
    #: Machine-readable error category (currently ``"invalid_delta"``
    #: for malformed op payloads); ``None`` for uncategorized errors.
    code: Optional[str] = None
    timings: Dict[str, float] = field(default_factory=dict)
    id: Optional[Any] = None

    @property
    def ok(self) -> bool:
        return self.status != "error"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"status": self.status}
        if self.result:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.code is not None:
            out["code"] = self.code
        if self.timings:
            out["timings"] = {
                k: round(v, 6) for k, v in self.timings.items()
            }
        if self.id is not None:
            out["id"] = self.id
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=False)


@dataclass
class QueryResponse:
    """Outcome of one :class:`QueryRequest`."""

    status: str  # "ok" | "empty" | "timeout" | "error"
    lam: Optional[int] = None
    walks: List[Dict[str, Any]] = field(default_factory=list)
    next_cursor: Optional[List[int]] = None
    #: Answers consumed by the request's ``offset`` (≤ offset; smaller
    #: only when a timeout interrupted the skip phase).
    skipped: int = 0
    error: Optional[str] = None
    #: Machine-readable error category so callers can branch without
    #: parsing the message: ``"internal"`` for the in-process
    #: backstop, ``"worker_crashed"`` / ``"worker_timeout"`` /
    #: ``"not_owner"`` from the :mod:`repro.serve` tier; ``None`` for
    #: ordinary client-input errors.
    code: Optional[str] = None
    cached: Dict[str, bool] = field(default_factory=dict)
    timings: Dict[str, float] = field(default_factory=dict)
    id: Optional[Any] = None

    @property
    def ok(self) -> bool:
        """True unless the request itself was rejected."""
        return self.status != "error"

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "status": self.status,
            "lam": self.lam,
            "walks": self.walks,
            "next_cursor": self.next_cursor,
        }
        if self.skipped:
            out["skipped"] = self.skipped
        if self.error is not None:
            out["error"] = self.error
        if self.code is not None:
            out["code"] = self.code
        if self.cached:
            out["cached"] = self.cached
        if self.timings:
            out["timings"] = {
                k: round(v, 6) for k, v in self.timings.items()
            }
        if self.id is not None:
            out["id"] = self.id
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=False)


def iter_jsonl(lines: Iterable[str]) -> Iterator[Tuple[int, Any]]:
    """Yield ``(lineno, payload)`` for a JSONL stream.

    The shared scaffolding of every JSONL consumer (the batch request
    reader here, the CLI ``mutate`` ops reader): blank lines and
    ``#`` comment lines are skipped, and a syntactically broken line
    raises :class:`RequestError` naming the line number — a malformed
    file is a caller bug, not a per-line failure.
    """
    for lineno, raw in enumerate(lines, start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        try:
            yield lineno, json.loads(line)
        except json.JSONDecodeError as exc:
            raise RequestError(
                f"line {lineno}: invalid JSON ({exc.msg})"
            ) from None


def read_requests_jsonl(lines: Iterable[str]) -> Iterator[Request]:
    """Parse a JSONL stream into query and mutation requests.

    A line whose object carries a ``"mutate"`` key parses as a
    :class:`MutationRequest`, anything else as a
    :class:`QueryRequest`; line hygiene and error reporting as in
    :func:`iter_jsonl`.
    """
    from repro.exceptions import InvalidDeltaError

    for lineno, payload in iter_jsonl(lines):
        try:
            if isinstance(payload, dict) and "mutate" in payload:
                yield MutationRequest.from_dict(payload)
            else:
                yield QueryRequest.from_dict(payload)
        except (RequestError, InvalidDeltaError) as exc:
            # File-level parsing keeps its contract — a malformed op
            # on some line is the caller's file bug, reported with the
            # line number (the typed per-request mapping applies to
            # directly-submitted requests, not batch files).
            raise RequestError(f"line {lineno}: {exc}") from None
