"""Thread-safe LRU caches with single-flight builds and statistics.

Both service caches (plan and annotation, see
:mod:`repro.service.service`) are instances of :class:`LRUCache`.  The
cache serves three needs the plain ``functools.lru_cache`` cannot:

* **single-flight** — when several batch-executor threads miss on the
  same key simultaneously, exactly one runs the (expensive) factory;
  the others block until the value is ready and then share it.  This
  is the build-once guard for cached compile/annotate products;
* **statistics** — hit/miss/eviction counters, exposed through
  :meth:`LRUCache.stats` and aggregated into the service statistics;
* **targeted invalidation** — :meth:`LRUCache.drop_where` removes all
  entries whose key matches a predicate (used when a graph is
  re-registered and its version bumps).

A ``capacity`` of 0 disables storage entirely: every lookup is a miss
and values are rebuilt per call — that is the "cold" configuration the
service benchmark compares against.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, Generic, Hashable, Optional, TypeVar

K = TypeVar("K", bound=Hashable)
V = TypeVar("V")


@dataclass
class CacheStats:
    """Counters for one cache (monotone; snapshot via ``as_dict``)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Hits per lookup; 0.0 before the first lookup."""
        return self.hits / self.lookups if self.lookups else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }


class _Pending:
    """In-flight build: followers wait on the event, leader fills it."""

    __slots__ = ("event", "value", "error")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.value: object = None
        self.error: Optional[BaseException] = None


class LRUCache(Generic[K, V]):
    """A bounded mapping with LRU eviction and single-flight misses.

    All public methods are thread-safe.  Factories passed to
    :meth:`get_or_create` run *outside* the cache lock, so a slow build
    never blocks hits on other keys — only duplicate builds of the same
    key are serialized (and collapsed into one).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self._pending: Dict[K, _Pending] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key: K) -> Optional[V]:
        """The cached value, freshened to most-recently-used; or None."""
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.stats.hits += 1
                return self._data[key]
            self.stats.misses += 1
            return None

    def put(self, key: K, value: V) -> None:
        """Insert (or refresh) an entry, evicting the LRU on overflow."""
        if self.capacity == 0:
            return
        with self._lock:
            self._store(key, value)

    def _store(self, key: K, value: V) -> None:
        # Caller holds the lock.
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.stats.evictions += 1

    def get_or_create(self, key: K, factory: Callable[[], V]) -> V:
        """Return the cached value, building it via ``factory`` on miss.

        Concurrent misses on the same key run ``factory`` exactly once
        (single-flight); a factory exception is propagated to every
        waiter and nothing is cached.  Only the building thread counts
        as a miss — followers are neither hits nor misses, they are the
        same logical build.

        A disabled cache (capacity 0) does not single-flight either:
        every call is an independent miss that runs ``factory`` itself,
        so the "cold" configuration measures true per-request work.
        """
        if self.capacity == 0:
            with self._lock:
                self.stats.misses += 1
            return factory()
        while True:
            with self._lock:
                if key in self._data:
                    self._data.move_to_end(key)
                    self.stats.hits += 1
                    return self._data[key]
                pending = self._pending.get(key)
                if pending is None:
                    pending = self._pending[key] = _Pending()
                    leader = True
                    self.stats.misses += 1
                else:
                    leader = False
            if not leader:
                pending.event.wait()
                if pending.error is not None:
                    raise pending.error
                # A drop_where/clear may race the publication; loop to
                # re-check rather than hand out a possibly-stale value.
                return pending.value  # type: ignore[return-value]
            try:
                value = factory()
            except BaseException as exc:
                with self._lock:
                    self._pending.pop(key, None)
                pending.error = exc
                pending.event.set()
                raise
            with self._lock:
                if self.capacity > 0:
                    self._store(key, value)
                self._pending.pop(key, None)
            pending.value = value
            pending.event.set()
            return value

    def drop_where(self, predicate: Callable[[K], bool]) -> int:
        """Remove every entry whose key satisfies ``predicate``.

        Returns the number of entries dropped.  In-flight builds are
        not interrupted (their keys embed the graph version, so a
        stale build can only ever be *read* through its stale key).
        """
        return self.drop_where_item(lambda k, _v: predicate(k))

    def drop_where_item(
        self, predicate: Callable[[K, V], bool]
    ) -> int:
        """Remove entries whose ``(key, value)`` satisfies ``predicate``.

        The value-aware sibling of :meth:`drop_where` — fine-grained
        invalidation inspects the cached artifact itself (e.g. a
        plan's or annotation's label footprint) instead of only the
        key.  The predicate runs under the cache lock, so it must be
        cheap and must not call back into the cache.
        """
        with self._lock:
            doomed = [
                k for k, v in self._data.items() if predicate(k, v)
            ]
            for k in doomed:
                del self._data[k]
            return len(doomed)

    def clear(self) -> None:
        """Drop every entry (statistics are kept)."""
        with self._lock:
            self._data.clear()
