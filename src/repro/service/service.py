"""The batched :class:`QueryService` — cached, concurrent RPQ serving.

See :mod:`repro.service` for the architecture overview (cache keys,
invalidation, thread-safety).  Since the ``repro.api`` façade landed,
the service is a thin protocol adapter: the graph registry, both
caches and the execution path live in :class:`repro.api.Database`;
this module maps the JSONL :class:`QueryRequest`/:class:`QueryResponse`
wire model onto façade queries and keeps the service-level counters.

In short: requests flow through

* a **plan cache** — regex string → compiled automaton +
  :class:`~repro.core.compile.CompiledQuery` (ε-elimination and the
  dense/firing-label layouts happen once per distinct query text);
* an **annotation cache** — (query, source) → a saturated
  :class:`~repro.core.multi_target.MultiTargetShortestWalks`, whose
  ``Annotate``/``Trim`` products are shared by every target and every
  repeat request from that source.

With the annotation cache disabled (capacity 0) the service degrades
to cold per-request execution through the ordinary single-pair
:class:`~repro.core.engine.DistinctShortestWalks` pipeline — that is
the baseline the service benchmark compares against.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, List, Optional, Sequence

from repro.exceptions import InvalidDeltaError, ReproError
from repro.graph.database import Graph
from repro.obs import Observability
from repro.service.requests import (
    MutationRequest,
    MutationResponse,
    QueryRequest,
    QueryResponse,
    RequestError,
)


class ServiceError(ReproError):
    """Service-level misuse (unknown graph, no graph registered, …)."""


class QueryService:
    """Serve batches of RPQ requests with two-level result-structure reuse.

    >>> from repro.workloads.fraud import example9_graph
    >>> from repro.service import QueryRequest, QueryService
    >>> service = QueryService()
    >>> _ = service.register_graph("fraud", example9_graph())
    >>> resp = service.execute(
    ...     QueryRequest("h* s (h | s)*", "Alix", "Bob", limit=2)
    ... )
    >>> resp.status, resp.lam, len(resp.walks)
    ('ok', 3, 2)
    >>> next_page = service.execute(
    ...     QueryRequest("h* s (h | s)*", "Alix", "Bob",
    ...                  cursor=resp.next_cursor)
    ... )
    >>> len(next_page.walks)
    2
    """

    def __init__(
        self,
        plan_cache_size: int = 256,
        annotation_cache_size: int = 128,
        default_mode: str = "memoryless",
        max_workers: int = 4,
        wal_dir: Optional[str] = None,
        wal_sync: str = "group",
        wal_group_window_ms: float = 50.0,
        obs: Optional[Observability] = None,
        slow_ms: float = 0.0,
        slowlog_capacity: int = 64,
    ) -> None:
        if default_mode not in ("iterative", "recursive", "memoryless"):
            raise ServiceError(
                f"default_mode must be a concrete engine mode, "
                f"got {default_mode!r}"
            )
        #: Observability bundle (metrics registry + slow-query log).
        #: The service defaults to an *enabled* bundle — counters have
        #: always been on here; pass ``Observability.disabled()`` to
        #: run bare.
        self.obs = obs if obs is not None else Observability(
            slow_ms=slow_ms, slowlog_capacity=slowlog_capacity
        )
        # Imported lazily: repro.api.database itself imports
        # repro.service.cache, so a module-level import here would be
        # circular when repro.api loads first.
        from repro.api.database import Database

        self._db = Database(
            plan_cache_size=plan_cache_size,
            annotation_cache_size=annotation_cache_size,
            default_mode=default_mode,
            obs=self.obs,
        )
        self.default_mode = default_mode
        self.max_workers = max_workers
        #: Durability root: with a ``wal_dir``, every registered graph
        #: becomes WAL-backed under ``<wal_dir>/<name>/`` (existing
        #: durable state wins over the graph the caller passes — the
        #: restart flow; see :meth:`repro.api.Database.register_durable`).
        self.wal_dir = wal_dir
        self.wal_sync = wal_sync
        self.wal_group_window_ms = wal_group_window_ms
        # Instrument handles resolved once; on a disabled bundle these
        # are the shared null instruments, so the hot path stays cheap.
        registry = self.obs.registry
        self._c_requests = registry.counter("service.requests")
        self._c_errors = registry.counter("service.errors")
        self._c_timeouts = registry.counter("service.timeouts")
        self._c_walks = registry.counter("service.walks_emitted")
        self._c_mutations = registry.counter("service.mutations")
        self._c_mutation_ops = registry.counter("service.mutation_ops")
        self._c_compactions = registry.counter("service.compactions")
        self._c_evicted_plans = registry.counter("service.evicted_plans")
        self._c_evicted_annotations = registry.counter(
            "service.evicted_annotations"
        )
        self._h_total = registry.histogram("service.request_seconds")
        self._h_enumerate = registry.histogram("service.enumerate_seconds")
        self._h_annotate = registry.histogram("service.annotate_seconds")

    # -- graph registry ------------------------------------------------------

    def register_graph(
        self, name: str, graph: Graph, warm: bool = True
    ) -> int:
        """Register (or replace) a graph under ``name``; returns its version.

        Re-registering bumps the version, which invalidates every
        cached plan and annotation for the old graph — see
        :meth:`repro.api.Database.register` for the mechanics.
        Registering a :class:`~repro.live.LiveGraph` makes the entry
        writable through ``{"mutate": [...]}`` requests without the
        one-time promotion purge a plain graph's first mutation pays.

        When the service was constructed with a ``wal_dir``, the entry
        is registered *durably*: its mutations append to the WAL under
        ``<wal_dir>/<name>/`` before applying, and any durable state
        already there wins over ``graph``.
        """
        if self.wal_dir is not None:
            import os

            return self._db.register_durable(
                name,
                os.path.join(self.wal_dir, name),
                graph=graph,
                sync=self.wal_sync,
                group_window_ms=self.wal_group_window_ms,
                warm=warm,
            )
        return self._db.register(name, graph, warm=warm)

    def close(self) -> None:
        """Flush and close every durable entry's WAL writer."""
        self._db.close()

    def unregister_graph(self, name: str) -> None:
        """Remove a graph and purge its cached artifacts."""
        try:
            self._db.unregister(name)
        except ReproError as exc:
            raise ServiceError(str(exc)) from None

    def graph_version(self, name: str) -> int:
        """Current version of a registered graph."""
        return self._db.version(name)

    # -- execution -----------------------------------------------------------

    def execute(self, request):
        """Execute one request; never raises for per-request problems.

        Accepts a :class:`QueryRequest` or a :class:`MutationRequest`
        (returning the matching response type).  Input problems
        (unknown graph/vertex, bad regex, bad ops) come back as
        ``status="error"`` responses so that one broken request cannot
        take down a batch.
        """
        if isinstance(request, MutationRequest):
            return self.execute_mutation(request)
        started = time.perf_counter()
        try:
            response = self._execute_checked(request)
        except (RequestError, ReproError) as exc:
            response = QueryResponse(
                status="error", error=str(exc), id=request.id
            )
        except Exception as exc:  # noqa: BLE001 — serving-layer backstop:
            # one request must never take down the batch or leak a raw
            # traceback through the executor.  code="internal" keeps
            # the in-process service and the repro.serve tier (whose
            # equivalent category is "worker_crashed") uniform for
            # callers that branch on the error category.
            response = QueryResponse(
                status="error",
                error=f"internal error: {type(exc).__name__}: {exc}",
                code="internal",
                id=request.id,
            )
        response.timings["total"] = time.perf_counter() - started
        self._record(response)
        if self.obs.should_log(response.timings["total"]):
            self.obs.slowlog.record(self._slowlog_entry(request, response))
        return response

    def execute_mutation(
        self, request: MutationRequest
    ) -> MutationResponse:
        """Apply one write batch; never raises for per-request problems."""
        started = time.perf_counter()
        try:
            # from_dict/read_requests_jsonl already validated (and
            # parsed the ops); only directly-constructed requests
            # still need the pass.
            if getattr(request, "parsed_ops", None) is None:
                request.validate()
            result = self._db.mutate(
                request.graph,
                request.parsed_ops,
                compact={
                    "auto": "auto", "always": True, "never": False,
                }[request.compact],
            )
            response = MutationResponse(
                status="ok", result=result.as_dict(), id=request.id
            )
        except InvalidDeltaError as exc:
            # Malformed op payloads are a client-input category of
            # their own: structured, machine-readable, never the
            # "internal error" backstop a leaked KeyError used to hit.
            response = MutationResponse(
                status="error",
                error=str(exc),
                code="invalid_delta",
                id=request.id,
            )
        except (RequestError, ReproError) as exc:
            response = MutationResponse(
                status="error", error=str(exc), id=request.id
            )
        except Exception as exc:  # noqa: BLE001 — serving-layer backstop.
            response = MutationResponse(
                status="error",
                error=f"internal error: {type(exc).__name__}: {exc}",
                code="internal",
                id=request.id,
            )
        response.timings["total"] = time.perf_counter() - started
        self._record(response)
        return response

    def _record(self, response) -> None:
        """Update the service instruments from one finished response.

        The single accounting path for queries *and* mutations — the
        per-instrument locks in the registry replace the old
        ``ServiceStats`` double-lock bookkeeping, and the two formerly
        duplicated update blocks collapse into this helper.
        """
        self._c_requests.inc()
        self._h_total.observe(response.timings["total"])
        if response.status == "error":
            self._c_errors.inc()
            return
        if isinstance(response, MutationResponse):
            self._c_mutations.inc()
            self._c_mutation_ops.inc(response.result.get("ops", 0))
            self._c_compactions.inc(
                int(response.result.get("compacted", False))
            )
            self._c_evicted_plans.inc(
                response.result.get("evicted_plans", 0)
            )
            self._c_evicted_annotations.inc(
                response.result.get("evicted_annotations", 0)
            )
            return
        if response.status == "timeout":
            self._c_timeouts.inc()
        self._c_walks.inc(len(response.walks))
        if "enumerate" in response.timings:
            self._h_enumerate.observe(response.timings["enumerate"])
        if "annotate" in response.timings:
            self._h_annotate.observe(response.timings["annotate"])

    @staticmethod
    def _slowlog_entry(request: QueryRequest, response: QueryResponse):
        """Span tree + explain payload for one slow (or traced) request.

        Returns a zero-arg callable (the :class:`~repro.obs.SlowLog`
        lazy-entry form): with ``slow_ms=0`` every request records, so
        the scalars are captured eagerly — cheap, and crucially *not*
        retaining the response with its materialized walks in the ring
        — while the JSON rendering (rounding, span-tree dicts) is
        deferred to the rare read path.
        """
        rid = request.id
        query = request.query
        source = request.source
        target = request.target
        graph = request.graph
        mode = request.mode
        semantics = request.semantics
        status = response.status
        lam = response.lam
        cached = dict(response.cached)
        timings = dict(response.timings)
        n_walks = len(response.walks)
        trace = getattr(response, "trace", None)

        def render() -> Dict[str, Any]:
            return {
                "kind": "query",
                "id": rid,
                "status": status,
                "total_ms": round(timings.get("total", 0.0) * 1000.0, 3),
                "request": {
                    "query": query,
                    "source": source,
                    "target": target,
                    "graph": graph,
                    "mode": mode,
                    "semantics": semantics,
                },
                "explain": {
                    "lam": lam,
                    "cached": cached,
                    "timings": {
                        k: round(v, 6) for k, v in timings.items()
                    },
                    "walks": n_walks,
                },
                "spans": (
                    trace.to_dict()["spans"] if trace is not None else []
                ),
            }

        return render

    def execute_batch(
        self,
        requests: Sequence,
        max_workers: Optional[int] = None,
    ) -> List:
        """Execute a batch on the thread pool, preserving request order.

        Cached preprocessing products are shared across the pool:
        plans and saturated annotations are built single-flight, the
        memoryless enumerations run concurrently over the read-only
        resumable structures, and the eager modes enumerate over
        private cursor snapshots.

        Mutation requests are **barriers**: the queries before one run
        (and finish) first, then the mutation applies alone, then the
        remainder of the batch proceeds — read-your-writes order for
        mixed batches without giving up read concurrency.
        """
        workers = self.max_workers if max_workers is None else max_workers
        requests = list(requests)
        if workers <= 1 or len(requests) <= 1:
            return [self.execute(r) for r in requests]

        responses: List = []
        segment: List[QueryRequest] = []
        # One pool for the whole batch: pool.map is fully consumed by
        # extend() before the next segment starts, so the barrier
        # semantics hold without per-segment pool churn.
        with ThreadPoolExecutor(max_workers=workers) as pool:

            def flush() -> None:
                if not segment:
                    return
                if len(segment) == 1:
                    responses.append(self.execute(segment[0]))
                else:
                    responses.extend(pool.map(self.execute, segment))
                segment.clear()

            for request in requests:
                if isinstance(request, MutationRequest):
                    flush()
                    responses.append(self.execute(request))
                else:
                    segment.append(request)
            flush()
        return responses

    # -- internals -----------------------------------------------------------

    def _execute_checked(self, request: QueryRequest) -> QueryResponse:
        request.validate()
        query = (
            self._db.query(request.query)
            .on(request.graph)
            .construction(request.construction)
            .from_(request.source)
            .to(request.target)
            .semantics(request.semantics)
            .mode(request.mode)
            .limit(request.limit)
            .offset(request.offset)
            .timeout_ms(request.timeout_ms)
        )
        if request.cursor is not None:
            query = query.cursor(list(request.cursor))
        result = query.run()
        if result.lam is None:
            response = QueryResponse(
                status="empty",
                cached=result.stats["cached"],
                timings=result.stats["timings"],
                id=request.id,
            )
            response.trace = result.stats.get("trace")
            return response
        walks = [row.walk.to_dict() for row in result]
        response = QueryResponse(
            status="timeout" if result.timed_out else "ok",
            lam=result.lam,
            walks=walks,
            next_cursor=(
                list(result.next_cursor.edges)
                if result.next_cursor is not None
                else None
            ),
            skipped=result.skipped,
            cached=result.stats["cached"],
            timings=result.stats["timings"],
            id=request.id,
        )
        # Stashed out-of-band: the trace is service-internal (slow log,
        # span-tree tests) and must not leak into the JSONL wire dict.
        response.trace = result.stats.get("trace")
        return response

    # -- statistics ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A point-in-time snapshot of every service counter.

        Key layout predates ``repro.obs`` and is part of the protocol
        surface (CLI ``--stats``, serve workers, tests); the values now
        read from the metrics registry instead of ``ServiceStats``.
        """
        plan_build_s, annotation_build_s = self._db.build_seconds()
        registry = self.obs.registry
        counters = {
            "requests": int(registry.counter_value("service.requests")),
            "errors": int(registry.counter_value("service.errors")),
            "timeouts": int(registry.counter_value("service.timeouts")),
            "walks_emitted": int(
                registry.counter_value("service.walks_emitted")
            ),
            "mutations": int(registry.counter_value("service.mutations")),
            "mutation_ops": int(
                registry.counter_value("service.mutation_ops")
            ),
            "compactions": int(
                registry.counter_value("service.compactions")
            ),
            "evicted_plans": int(
                registry.counter_value("service.evicted_plans")
            ),
            "evicted_annotations": int(
                registry.counter_value("service.evicted_annotations")
            ),
            "plan_build_s": round(plan_build_s, 6),
            "annotation_build_s": round(annotation_build_s, 6),
            "enumerate_s": round(
                registry.histogram_sum("service.enumerate_seconds"), 6
            ),
            "total_s": round(
                registry.histogram_sum("service.request_seconds"), 6
            ),
        }
        return {
            **counters,
            **self._db.cache_stats(),
            "graphs": self._db.graphs(),
        }
