"""The batched :class:`QueryService` — cached, concurrent RPQ serving.

See :mod:`repro.service` for the architecture overview (cache keys,
invalidation, thread-safety).  In short: requests flow through

* a **plan cache** — regex string → compiled automaton +
  :class:`~repro.core.compile.CompiledQuery` (ε-elimination and the
  dense/firing-label layouts happen once per distinct query text);
* an **annotation cache** — (query, source) → a saturated
  :class:`~repro.core.multi_target.MultiTargetShortestWalks`, whose
  ``Annotate``/``Trim`` products are shared by every target and every
  repeat request from that source.

With the annotation cache disabled (capacity 0) the service degrades
to cold per-request execution through the ordinary single-pair
:class:`~repro.core.engine.DistinctShortestWalks` pipeline — that is
the baseline the service benchmark compares against.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.engine import DistinctShortestWalks
from repro.core.enumerate import enumerate_walks_recursive
from repro.core.multi_target import MultiTargetShortestWalks
from repro.core.walks import Walk
from repro.exceptions import ReproError
from repro.graph.database import Graph
from repro.query.rpq import RPQ
from repro.service.cache import LRUCache
from repro.service.requests import QueryRequest, QueryResponse, RequestError


class ServiceError(ReproError):
    """Service-level misuse (unknown graph, no graph registered, …)."""


@dataclass
class _GraphHandle:
    """A registered graph plus its monotonically increasing version."""

    name: str
    graph: Graph
    version: int


@dataclass
class _Plan:
    """A plan-cache value: the compiled form of one query text."""

    rpq: RPQ
    compiled: Any  # CompiledQuery; typed loosely to avoid import cycle.
    build_s: float


@dataclass
class ServiceStats:
    """Aggregated service counters (snapshot via :meth:`as_dict`)."""

    requests: int = 0
    errors: int = 0
    timeouts: int = 0
    walks_emitted: int = 0
    plan_build_s: float = 0.0
    annotation_build_s: float = 0.0
    enumerate_s: float = 0.0
    total_s: float = 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "walks_emitted": self.walks_emitted,
            "plan_build_s": round(self.plan_build_s, 6),
            "annotation_build_s": round(self.annotation_build_s, 6),
            "enumerate_s": round(self.enumerate_s, 6),
            "total_s": round(self.total_s, 6),
        }


class QueryService:
    """Serve batches of RPQ requests with two-level result-structure reuse.

    >>> from repro.workloads.fraud import example9_graph
    >>> from repro.service import QueryRequest, QueryService
    >>> service = QueryService()
    >>> _ = service.register_graph("fraud", example9_graph())
    >>> resp = service.execute(
    ...     QueryRequest("h* s (h | s)*", "Alix", "Bob", limit=2)
    ... )
    >>> resp.status, resp.lam, len(resp.walks)
    ('ok', 3, 2)
    >>> next_page = service.execute(
    ...     QueryRequest("h* s (h | s)*", "Alix", "Bob",
    ...                  cursor=resp.next_cursor)
    ... )
    >>> len(next_page.walks)
    2
    """

    def __init__(
        self,
        plan_cache_size: int = 256,
        annotation_cache_size: int = 128,
        default_mode: str = "memoryless",
        max_workers: int = 4,
    ) -> None:
        if default_mode not in ("iterative", "recursive", "memoryless"):
            raise ServiceError(
                f"default_mode must be a concrete engine mode, "
                f"got {default_mode!r}"
            )
        self._graphs: Dict[str, _GraphHandle] = {}
        self._graphs_lock = threading.Lock()
        # Service-wide monotone version counter — never reset, not even
        # when a name is unregistered and re-registered, so a stale
        # in-flight cache build can never collide with a fresh key.
        self._next_version = 0
        self._plan_cache: LRUCache[Tuple, _Plan] = LRUCache(plan_cache_size)
        self._annotation_cache: LRUCache[
            Tuple, MultiTargetShortestWalks
        ] = LRUCache(annotation_cache_size)
        self.default_mode = default_mode
        self.max_workers = max_workers
        self._stats = ServiceStats()
        self._stats_lock = threading.Lock()

    # -- graph registry ------------------------------------------------------

    def register_graph(
        self, name: str, graph: Graph, warm: bool = True
    ) -> int:
        """Register (or replace) a graph under ``name``; returns its version.

        Re-registering bumps the version, which invalidates every
        cached plan and annotation for the old graph (their cache keys
        embed the version, and the stale entries are purged eagerly).
        Versions are drawn from one service-wide monotone counter, so
        no (name, version) pair is ever reused — an unregister/register
        cycle cannot alias a stale in-flight build.  With ``warm=True``
        the graph's lazy CSR indexes are built now, on the caller's
        thread, so no request pays the O(|D|) build.
        """
        with self._graphs_lock:
            self._next_version += 1
            version = self._next_version
            replacing = name in self._graphs
            self._graphs[name] = _GraphHandle(name, graph, version)
        if replacing:
            # Purge entries of every *older* version of this graph — a
            # racing request may already have inserted entries for the
            # new version, and those are valid.
            def stale(key) -> bool:
                return key[0] == name and key[1] != version

            self._plan_cache.drop_where(stale)
            self._annotation_cache.drop_where(stale)
        if warm:
            graph.warm_indexes()
        return version

    def unregister_graph(self, name: str) -> None:
        """Remove a graph and purge its cached artifacts."""
        with self._graphs_lock:
            if name not in self._graphs:
                raise ServiceError(f"unknown graph {name!r}")
            del self._graphs[name]
        self._plan_cache.drop_where(lambda k: k[0] == name)
        self._annotation_cache.drop_where(lambda k: k[0] == name)

    def graph_version(self, name: str) -> int:
        """Current version of a registered graph."""
        return self._handle(name).version

    def _handle(self, name: Optional[str]) -> _GraphHandle:
        with self._graphs_lock:
            if name is None:
                if len(self._graphs) == 1:
                    return next(iter(self._graphs.values()))
                raise ServiceError(
                    "request names no graph and the service has "
                    f"{len(self._graphs)} registered; set 'graph'"
                )
            handle = self._graphs.get(name)
            if handle is None:
                raise ServiceError(f"unknown graph {name!r}")
            return handle

    # -- execution -----------------------------------------------------------

    def execute(self, request: QueryRequest) -> QueryResponse:
        """Execute one request; never raises for per-request problems.

        Input problems (unknown graph/vertex, bad regex, bad knobs)
        come back as ``status="error"`` responses so that one broken
        request cannot take down a batch.
        """
        started = time.perf_counter()
        try:
            response = self._execute_checked(request, started)
        except (RequestError, ReproError) as exc:
            response = QueryResponse(
                status="error", error=str(exc), id=request.id
            )
        except Exception as exc:  # noqa: BLE001 — serving-layer backstop:
            # one request must never take down the batch or leak a raw
            # traceback through the executor.
            response = QueryResponse(
                status="error",
                error=f"internal error: {type(exc).__name__}: {exc}",
                id=request.id,
            )
        response.timings["total"] = time.perf_counter() - started
        with self._stats_lock:
            self._stats.requests += 1
            self._stats.total_s += response.timings["total"]
            self._stats.enumerate_s += response.timings.get("enumerate", 0.0)
            if response.status == "error":
                self._stats.errors += 1
            elif response.status == "timeout":
                self._stats.timeouts += 1
            self._stats.walks_emitted += len(response.walks)
        return response

    def execute_batch(
        self,
        requests: Sequence[QueryRequest],
        max_workers: Optional[int] = None,
    ) -> List[QueryResponse]:
        """Execute a batch on the thread pool, preserving request order.

        Cached preprocessing products are shared across the pool:
        plans and saturated annotations are built single-flight, the
        memoryless enumerations run concurrently over the read-only
        resumable structures, and the eager modes enumerate over
        private cursor snapshots.
        """
        workers = self.max_workers if max_workers is None else max_workers
        requests = list(requests)
        if workers <= 1 or len(requests) <= 1:
            return [self.execute(r) for r in requests]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(self.execute, requests))

    # -- internals -----------------------------------------------------------

    def _plan_for(
        self, handle: _GraphHandle, request: QueryRequest
    ) -> Tuple[_Plan, bool]:
        key = (
            handle.name,
            handle.version,
            request.construction,
            request.query,
        )
        hit = True

        def build() -> _Plan:
            nonlocal hit
            hit = False
            t0 = time.perf_counter()
            compiled_rpq = RPQ(request.query, method=request.construction)
            from repro.core.compile import compile_query

            cq = compile_query(handle.graph, compiled_rpq.automaton)
            build_s = time.perf_counter() - t0
            with self._stats_lock:
                self._stats.plan_build_s += build_s
            return _Plan(rpq=compiled_rpq, compiled=cq, build_s=build_s)

        plan = self._plan_cache.get_or_create(key, build)
        return plan, hit

    def _annotation_for(
        self,
        handle: _GraphHandle,
        request: QueryRequest,
        plan: _Plan,
        source: int,
    ) -> Tuple[MultiTargetShortestWalks, bool]:
        key = (
            handle.name,
            handle.version,
            request.construction,
            request.query,
            source,
        )
        hit = True

        def build() -> MultiTargetShortestWalks:
            nonlocal hit
            hit = False
            t0 = time.perf_counter()
            # The request's original source, not the resolved id: the
            # constructor resolves names itself, and on graphs with
            # integer vertex *names* an id would resolve differently.
            mt = MultiTargetShortestWalks(
                handle.graph,
                plan.rpq.automaton,
                request.source,
                compiled=plan.compiled,
            ).preprocess()
            build_s = time.perf_counter() - t0
            with self._stats_lock:
                self._stats.annotation_build_s += build_s
            return mt

        mt = self._annotation_cache.get_or_create(key, build)
        return mt, hit

    def _execute_checked(
        self, request: QueryRequest, started: float
    ) -> QueryResponse:
        request.validate()
        handle = self._handle(request.graph)
        graph = handle.graph
        source = graph.resolve_vertex(request.source)
        target = graph.resolve_vertex(request.target)
        _check_cursor_shape(graph, request.cursor, target)
        deadline = (
            started + request.timeout_ms / 1000.0
            if request.timeout_ms is not None
            else None
        )

        plan, plan_hit = self._plan_for(handle, request)
        cached = {"plan": plan_hit}
        timings: Dict[str, float] = {}

        if self._annotation_cache.capacity == 0:
            iterator, lam = self._cold_iterator(
                graph, plan, request, timings
            )
            cached["annotation"] = False
        else:
            iterator, lam = self._cached_iterator(
                handle, request, plan, source, target, cached, timings
            )

        if lam is None:
            return QueryResponse(
                status="empty", cached=cached, timings=timings, id=request.id
            )
        if request.cursor is not None and len(request.cursor) != lam:
            raise RequestError(
                f"cursor length {len(request.cursor)} differs from λ={lam} "
                "— stale cursor from another query or graph version?"
            )

        t0 = time.perf_counter()
        walks, next_cursor, skipped, timed_out = self._paginate(
            iterator, request, deadline
        )
        timings["enumerate"] = time.perf_counter() - t0
        return QueryResponse(
            status="timeout" if timed_out else "ok",
            lam=lam,
            walks=[w.to_dict() for w in walks],
            next_cursor=next_cursor,
            skipped=skipped,
            cached=cached,
            timings=timings,
            id=request.id,
        )

    def _cached_iterator(
        self,
        handle: _GraphHandle,
        request: QueryRequest,
        plan: _Plan,
        source: int,
        target: int,
        cached: Dict[str, bool],
        timings: Dict[str, float],
    ) -> Tuple[Optional[Iterator[Walk]], Optional[int]]:
        t0 = time.perf_counter()
        mt, ann_hit = self._annotation_for(handle, request, plan, source)
        # From this request's perspective: build time on a miss,
        # single-flight wait time when another thread is building.
        timings["annotate"] = time.perf_counter() - t0
        cached["annotation"] = ann_hit
        lam_t, states = mt.annotation.target_info(target)
        if lam_t is None:
            return None, None
        mode = (
            self.default_mode if request.mode == "auto" else request.mode
        )
        # NB: the enumeration entry points below take the *resolved*
        # target id where the API is id-based, and the request's
        # original value where the API resolves names itself — never
        # an already-resolved id through a name-resolving API (graphs
        # may name their vertices with integers).
        if mode == "memoryless":
            iterator = mt.walks_to(
                request.target, memoryless=True, resume_after=request.cursor
            )
        elif mode == "recursive":
            iterator = enumerate_walks_recursive(
                handle.graph, mt.trimmed.snapshot(), lam_t, target, states
            )
            iterator = _skip_past_cursor(iterator, request.cursor)
        else:  # iterative
            iterator = mt.walks_to(request.target, snapshot=True)
            iterator = _skip_past_cursor(iterator, request.cursor)
        return iterator, lam_t

    def _cold_iterator(
        self,
        graph: Graph,
        plan: _Plan,
        request: QueryRequest,
        timings: Dict[str, float],
    ) -> Tuple[Optional[Iterator[Walk]], Optional[int]]:
        # Cold per-request execution: the ordinary single-pair engine,
        # early-stopping Annotate and all ("auto" here is the engine's
        # own auto, including its fast-path detection).  The compiled
        # plan is still injected when the plan cache has one.  Cursors
        # resume by replaying the prefix — there is no cached resumable
        # structure to seek in.
        t0 = time.perf_counter()
        engine = DistinctShortestWalks(
            graph,
            plan.rpq.automaton,
            request.source,
            request.target,
            mode=request.mode,
            compiled=plan.compiled,
        )
        lam = engine.lam  # Triggers preprocessing.
        timings["annotate"] = time.perf_counter() - t0
        if lam is None:
            return None, None
        return _skip_past_cursor(engine.enumerate(), request.cursor), lam

    def _paginate(
        self,
        iterator: Iterator[Walk],
        request: QueryRequest,
        deadline: Optional[float],
    ) -> Tuple[List[Walk], Optional[List[int]], int, bool]:
        """Apply offset/limit/deadline.

        Returns ``(page, next_cursor, skipped, timed_out)``:
        ``next_cursor`` is the resume token for the walk *after* the
        page (``None`` when the enumeration is exhausted) and
        ``skipped`` how much of the offset was consumed (it matters on
        timeout — see :class:`~repro.service.requests.QueryRequest`).
        The deadline is checked between outputs — Theorem 2's delay
        bound is what makes this an O(λ·|A|) overshoot at worst.
        """
        page: List[Walk] = []
        #: Last walk skipped or emitted — the anchor a resume cursor
        #: points at.  The request's own cursor is the fallback anchor
        #: when nothing was consumed yet (timeout before any output).
        last: Optional[Walk] = None
        fallback = (
            list(request.cursor) if request.cursor is not None else None
        )
        skipped = 0
        timed_out = False
        limit = request.limit
        try:
            for walk in iterator:
                if skipped < request.offset:
                    skipped += 1
                elif limit is None or len(page) < limit:
                    page.append(walk)
                else:
                    # One walk past the page: the enumeration has more.
                    cursor = list(last.edges) if last is not None else fallback
                    return page, cursor, skipped, False
                last = walk
                if deadline is not None and time.perf_counter() > deadline:
                    timed_out = True
                    break
        finally:
            close = getattr(iterator, "close", None)
            if close is not None:
                close()
        if timed_out:
            cursor = list(last.edges) if last is not None else fallback
            return page, cursor, skipped, True
        return page, None, skipped, False

    # -- statistics ----------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """A point-in-time snapshot of every service counter."""
        with self._stats_lock:
            counters = self._stats.as_dict()
        with self._graphs_lock:
            graphs = {
                name: handle.version
                for name, handle in self._graphs.items()
            }
        return {
            **counters,
            "plan_cache": {
                "capacity": self._plan_cache.capacity,
                "entries": len(self._plan_cache),
                **self._plan_cache.stats.as_dict(),
            },
            "annotation_cache": {
                "capacity": self._annotation_cache.capacity,
                "entries": len(self._annotation_cache),
                **self._annotation_cache.stats.as_dict(),
            },
            "graphs": graphs,
        }


def _check_cursor_shape(
    graph: Graph, cursor: Optional[Tuple[int, ...]], target: int
) -> None:
    """Reject cursors that cannot be a previous output of this graph.

    Edge ids must exist, concatenate into a walk (checked by the
    :class:`Walk` constructor) and end at the queried target; a
    λ-length check follows once λ is known.  This keeps a stale or
    corrupted client cursor a per-request ``"error"`` response instead
    of an IndexError inside the enumerators.
    """
    if cursor is None or not cursor:
        return
    for e in cursor:
        if not 0 <= e < graph.edge_count:
            raise RequestError(f"cursor contains unknown edge id {e}")
    walk = Walk(graph, cursor)  # GraphError if edges do not concatenate.
    if walk.tgt != target:
        raise RequestError("cursor walk does not end at the target")


def _skip_past_cursor(
    iterator: Iterator[Walk], cursor: Optional[Tuple[int, ...]]
) -> Iterator[Walk]:
    """Drop outputs up to and including the cursor walk.

    The eager enumerators cannot seek, so resuming them replays the
    prefix — O(position) rather than the memoryless mode's O(λ).  The
    output *order* is identical across the general modes (the paper's
    DFS order), so a cursor handed out by one mode is valid in another.
    A cursor that matches no output (it passed the shape checks but was
    never an answer of this query) is an error, not a silent empty
    page claiming exhaustion.
    """
    if cursor is None:
        yield from iterator
        return
    cursor = tuple(cursor)
    seen = False
    for walk in iterator:
        if seen:
            yield walk
        elif walk.edges == cursor:
            seen = True
    if not seen:
        raise RequestError(
            "cursor does not match any output of this enumeration"
        )
