"""``repro.service`` — a batched, caching RPQ serving layer.

The paper's pipeline (compile → ``Annotate`` → ``Trim`` → ``Enumerate``,
Figure 2) front-loads all the expensive work into per-(query, source)
structures that are *read-only at enumeration time* — exactly the shape
a serving layer wants.  :class:`QueryService` exploits that with two
caches and a thread-pool batch executor.

Architecture
------------

**Plan cache** (LRU, default 256 entries).  Key::

    (graph_name, graph_version, construction, query_text)

Value: the parsed :class:`~repro.query.rpq.RPQ` plus the
graph-specific :class:`~repro.core.compile.CompiledQuery` — i.e. the
regex parse, Thompson/Glushkov construction, ε-elimination, label-id
re-keying and the dense/firing-label layouts, all paid once per
distinct query text per graph version.

**Annotation cache** (LRU, default 128 entries).  Key::

    (graph_name, graph_version, construction, query_text, source_id)

Value: a saturated
:class:`~repro.core.multi_target.MultiTargetShortestWalks` — the
``Annotate`` run to exhaustion (Section 5.3) plus its ``Trim`` product.
Because saturation covers *every* target, one entry answers requests
for any target from that source: λ_t and the start-state certificate
are read off the cached annotation in O(|F|), and only the
O(answers·λ·|A|) enumeration itself runs per request.

**Invalidation.**  Graphs are immutable objects; "mutation" is
re-registering a name via :meth:`QueryService.register_graph`, which
bumps the graph's integer version.  Both cache keys embed the version,
so stale entries can never be hit; they are additionally purged
eagerly (:meth:`~repro.service.cache.LRUCache.drop_where`) so they do
not occupy capacity until LRU eviction.

**Thread-safety.**  Safe concurrent execution rests on four guards:

1. the caches are lock-protected with *single-flight* misses — racing
   threads build a given plan/annotation exactly once
   (:meth:`~repro.service.cache.LRUCache.get_or_create`);
2. the graph's lazy CSR indexes have a build-once lock
   (:meth:`~repro.graph.database.Graph.warm_indexes` double-checks
   under ``Graph._lazy_lock``), so concurrent first use is safe —
   and registration pre-warms them off the request path;
3. the **memoryless** mode (the service default) enumerates over the
   read-only :class:`~repro.core.trim.ResumableAnnotation`, which is
   never mutated — any number of requests share one cached instance;
4. the **eager** modes (``iterative``/``recursive``) get a private
   cursor :meth:`~repro.core.trim.TrimmedAnnotation.snapshot` (O(1)
   per non-empty queue, items shared), so they never contend on the
   shared trimmed annotation's cursors.

**Pagination.**  ``limit``/``offset`` plus a resume ``cursor`` (the
previous page's ``next_cursor`` — the last walk's edge ids).  In
memoryless mode the cursor seeks in O(λ) via the paper's ``NextOutput``
(Theorem 18: the next output is computed from the previous output
alone); the eager modes replay the prefix.  Output order is identical
across the general modes, so cursors are mode-portable.

**Budgets.**  ``timeout_ms`` is checked between outputs; by Theorem 2
the overshoot past the deadline is one delay, O(λ·|A|).  A timed-out
response carries the partial page and a cursor to resume it.

**Where the machinery lives.**  Since the ``repro.api`` façade
landed, the registry, both caches and the execution path described
above are implemented in :class:`repro.api.Database` and shared with
every other entry point (the ``rpq()`` helpers, the CLI);
:class:`QueryService` is the JSONL protocol adapter on top — request
parsing/validation, response rendering, the thread-pool batch
executor, the slow-query log and the service metrics (kept in a
:class:`repro.obs.Observability` bundle — see :mod:`repro.obs`).
"""

from repro.service.cache import CacheStats, LRUCache
from repro.service.requests import (
    MutationRequest,
    MutationResponse,
    QueryRequest,
    QueryResponse,
    RequestError,
    read_requests_jsonl,
)
from repro.service.service import QueryService, ServiceError

__all__ = [
    "CacheStats",
    "LRUCache",
    "MutationRequest",
    "MutationResponse",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "RequestError",
    "ServiceError",
    "read_requests_jsonl",
]
