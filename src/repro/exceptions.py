"""Exception hierarchy for the :mod:`repro` library.

All exceptions raised deliberately by the library derive from
:class:`ReproError`, so callers can catch the whole family with one
``except`` clause while letting genuine bugs (``TypeError`` etc.)
propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of all errors raised by the repro library."""


class GraphError(ReproError):
    """Structural problem in a graph database (bad vertex/edge/label)."""


class UnknownVertexError(GraphError):
    """A vertex name or id was requested that does not exist."""

    def __init__(self, vertex: object) -> None:
        super().__init__(f"unknown vertex: {vertex!r}")
        self.vertex = vertex


class UnknownEdgeError(GraphError):
    """An edge id was requested that does not exist."""

    def __init__(self, edge: object) -> None:
        super().__init__(f"unknown edge: {edge!r}")
        self.edge = edge


class UnknownLabelError(GraphError):
    """A label name was requested that does not exist in the graph."""

    def __init__(self, label: object) -> None:
        super().__init__(f"unknown label: {label!r}")
        self.label = label


class InvalidDeltaError(GraphError):
    """A mutation op payload is malformed (wire form or op object).

    Raised by :func:`repro.live.delta.op_from_dict` for *every* kind
    of bad input — unknown op kind, missing/unknown fields, wrong
    field types, unhashable values smuggled in through JSON — so that
    serving layers can map malformed mutation payloads to a structured
    error response instead of leaking a raw ``KeyError``/``TypeError``
    through their internal-error backstop.  Subclasses
    :class:`GraphError`, so existing ``except GraphError`` call sites
    keep working unchanged.
    """


class WalError(ReproError):
    """Durability-layer failure (WAL framing, snapshot, recovery).

    Raised for structural problems in a write-ahead-log directory that
    recovery must not paper over: a valid frame with a non-contiguous
    LSN, a snapshot watermark the log cannot replay from, a durable
    graph fed values that do not survive the JSON wire form.  Torn or
    corrupt *tail* frames are NOT errors — recovery stops cleanly at
    the first invalid frame (see :mod:`repro.wal`).
    """


class AutomatonError(ReproError):
    """Structural problem in an automaton (bad state, transition...)."""


class RegexSyntaxError(ReproError):
    """A regular path query expression failed to parse.

    Attributes
    ----------
    position:
        0-based offset in the input string where the error was detected.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class QueryError(ReproError):
    """A query was invalid for the database it was run against."""


class PatternSyntaxError(ReproError):
    """A GQL-style path pattern failed to parse.

    Attributes
    ----------
    position:
        0-based offset in the input string where the error was detected.
    """

    def __init__(self, message: str, position: int) -> None:
        super().__init__(f"{message} (at position {position})")
        self.position = position


class CostError(ReproError):
    """Edge costs were missing, non-positive, or of mixed bad types."""


class EnumerationStateError(ReproError):
    """The shared enumeration structures were used in an invalid way.

    Raised for instance when two enumerations that share one trimmed
    annotation are interleaved without resetting it.
    """


class ShmError(ReproError):
    """Shared-memory serving-segment failure (repro.serve.shm).

    Raised when a segment cannot be published (a vertex name that does
    not survive the JSON interning table), when an attach target is
    missing, or when the attached block fails validation (bad magic,
    unsupported version, header or data CRC mismatch — e.g. a stale or
    torn segment left behind by a crashed owner).
    """
