"""Immutable singly-linked lists ("cons lists").

The paper's Section 2.1 requires lists that support:

* O(1) creation of the empty list,
* O(1) prepend ("append at the head"),
* O(1) copy (copying the head pointer).

Regular Python lists have O(n) copy, which would silently break the
delay analysis of the recursive enumerator: every recursive call copies
the current walk prefix.  A cons list shares structure instead.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Optional


class ConsList:
    """An immutable singly-linked list cell.

    The empty list is the module-level singleton :data:`nil`.  Lists
    are built with :func:`cons` or :meth:`ConsList.prepend`::

        >>> xs = nil.prepend(3).prepend(2).prepend(1)
        >>> list(xs)
        [1, 2, 3]
        >>> len(xs)
        3

    Instances are hashable and compare by content, which makes them
    usable as dictionary keys in tests.
    """

    __slots__ = ("head", "tail", "_length")

    def __init__(self, head: object, tail: Optional["ConsList"]) -> None:
        # ``tail is None`` encodes "this is the nil sentinel"; user code
        # never passes None, it goes through ``cons``/``prepend``.
        self.head = head
        self.tail = tail
        self._length = 0 if tail is None else tail._length + 1

    # -- construction --------------------------------------------------

    def prepend(self, value: object) -> "ConsList":
        """Return a new list with ``value`` in front of this one. O(1)."""
        return ConsList(value, self)

    @classmethod
    def from_iterable(cls, values: Iterable[object]) -> "ConsList":
        """Build a list with the same order as ``values``. O(n)."""
        result = nil
        for value in reversed(list(values)):
            result = result.prepend(value)
        return result

    # -- inspection -----------------------------------------------------

    @property
    def is_empty(self) -> bool:
        """True only for the :data:`nil` sentinel."""
        return self.tail is None

    def __len__(self) -> int:
        return self._length

    def __iter__(self) -> Iterator[object]:
        node = self
        while node.tail is not None:
            yield node.head
            node = node.tail

    def __bool__(self) -> bool:
        return self.tail is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConsList):
            return NotImplemented
        if self is other:
            return True
        if len(self) != len(other):
            return False
        return all(a == b for a, b in zip(self, other))

    def __hash__(self) -> int:
        return hash(tuple(self))

    def __repr__(self) -> str:
        return f"ConsList({list(self)!r})"


#: The empty cons list.  Shared by every list in the process.
nil = ConsList(None, None)


def cons(head: object, tail: ConsList) -> ConsList:
    """Prepend ``head`` to ``tail`` — the classic ``cons`` operation."""
    return ConsList(head, tail)
