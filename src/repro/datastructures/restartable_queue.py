"""Restartable queues (paper, Section 2.1).

A restartable queue is a sequence with three pointers — start, end and
*current* — supporting all of the following in O(1):

* creation of an empty queue,
* ``enqueue`` at the end,
* ``peek`` the element under the current pointer,
* ``advance`` the current pointer,
* ``restart``: move the current pointer back to the start.

The paper implements them as linked lists; a Python list plus an index
gives the same amortized bounds with far better constants, and —
crucially for the analysis — ``restart`` is O(1) because it only resets
the index, never touches the elements.
"""

from __future__ import annotations

from typing import Generic, Iterator, List, Optional, TypeVar

T = TypeVar("T")


class RestartableQueue(Generic[T]):
    """FIFO queue with an O(1) restartable read cursor.

    >>> q = RestartableQueue([1, 2, 3])
    >>> q.peek()
    1
    >>> q.advance(); q.peek()
    2
    >>> q.restart(); q.peek()
    1
    """

    __slots__ = ("_items", "_pos", "_factory")

    def __init__(self, items: Optional[List[T]] = None) -> None:
        self._items: Optional[List[T]] = (
            list(items) if items is not None else []
        )
        self._pos = 0
        self._factory = None

    @classmethod
    def from_factory(cls, factory) -> "RestartableQueue[T]":
        """A queue whose item list is built lazily by ``factory()``.

        The zero-copy packed-slice constructor: :func:`repro.core.trim`
        materializes its compatibility queues this way, so a queue that
        is never read never copies its ``(e, X)`` payloads out of the
        packed annotation arrays.  Construction is O(1); the first
        cursor/read operation pays the one-time materialization.
        """
        queue: "RestartableQueue[T]" = cls.__new__(cls)
        queue._items = None
        queue._pos = 0
        queue._factory = factory
        return queue

    def _materialized(self) -> List[T]:
        items = self._items
        if items is None:
            items = self._items = self._factory()
            self._factory = None
        return items

    # -- writing --------------------------------------------------------

    def enqueue(self, item: T) -> None:
        """Add ``item`` at the end of the queue. Amortized O(1)."""
        self._materialized().append(item)

    def fork(self) -> "RestartableQueue[T]":
        """A new queue *sharing* this queue's elements, cursor at 0.

        O(1): only the cursor is per-fork; the element list is the same
        object.  Intended for the read phase — once a queue has been
        forked, neither copy may :meth:`enqueue` (an append would leak
        into every fork mid-enumeration).
        """
        forked: "RestartableQueue[T]" = RestartableQueue.__new__(
            RestartableQueue
        )
        forked._items = self._materialized()
        forked._pos = 0
        forked._factory = None
        return forked

    # -- the read cursor -------------------------------------------------

    @property
    def exhausted(self) -> bool:
        """True when the cursor has moved past the last element."""
        items = self._items
        if items is None:
            items = self._materialized()
        return self._pos >= len(items)

    def peek(self) -> T:
        """Return the element under the cursor without moving it.

        Raises :class:`IndexError` when the queue is exhausted; callers
        are expected to check :attr:`exhausted` first, as the paper's
        pseudocode does ("if C_u[p] is not empty").
        """
        items = self._items
        if items is None:
            items = self._materialized()
        return items[self._pos]

    def advance(self) -> None:
        """Move the cursor one element forward. O(1)."""
        items = self._items
        if items is None:
            items = self._materialized()
        if self._pos < len(items):
            self._pos += 1

    def restart(self) -> None:
        """Move the cursor back to the first element. O(1)."""
        self._pos = 0

    # -- inspection -------------------------------------------------------

    def __len__(self) -> int:
        """Total number of enqueued elements (independent of cursor)."""
        return len(self._materialized())

    def remaining(self) -> int:
        """Number of elements from the cursor to the end."""
        return len(self._materialized()) - self._pos

    @property
    def position(self) -> int:
        """Current cursor offset from the start (for tests/debugging)."""
        return self._pos

    def __iter__(self) -> Iterator[T]:
        """Iterate over *all* elements, ignoring the cursor."""
        return iter(self._materialized())

    def __repr__(self) -> str:
        return f"RestartableQueue({self._materialized()!r}, pos={self._pos})"
