"""The skip-pointer array behind ``ResumableTrim`` (paper, Section 4.2).

The memoryless variant of the algorithm (Theorem 18) must position a
read cursor at "the first non-empty cell with index ≥ i" in O(1),
without the mutable cursors of
:class:`~repro.datastructures.restartable_queue.RestartableQueue`.

The paper achieves this by storing, with every cell, a pointer to the
next non-empty cell.  :class:`ResumableIndex` packages that idea: it is
built once from a ``size``-cell sparse mapping ``index -> payload`` and
afterwards is strictly read-only.

Operations (all O(1) except construction):

* ``first()`` — index of the first non-empty cell, or ``None``;
* ``seek(i)`` — index of the first non-empty cell ``>= i``, or ``None``;
* ``after(i)`` — index of the first non-empty cell ``> i``, or ``None``;
* ``payload(i)`` — the payload stored at cell ``i`` (``None`` if empty).
"""

from __future__ import annotations

from typing import Dict, Generic, List, Optional, TypeVar

P = TypeVar("P")


class ResumableIndex(Generic[P]):
    """Read-only sparse array with O(1) "next non-empty cell" queries.

    >>> idx = ResumableIndex(6, {1: "a", 4: "b"})
    >>> idx.first()
    1
    >>> idx.seek(2)
    4
    >>> idx.after(4) is None
    True
    """

    __slots__ = ("_size", "_payloads", "_next")

    def __init__(self, size: int, cells: Dict[int, P]) -> None:
        if any(not (0 <= i < size) for i in cells):
            raise IndexError(
                f"cell index out of range for ResumableIndex of size {size}"
            )
        self._size = size
        self._payloads: Dict[int, P] = dict(cells)
        self._next = self._build_next(size, self._payloads)

    @staticmethod
    def _build_next(size: int, present) -> List[int]:
        """The skip-pointer array: ``_next[i]`` = smallest non-empty
        index ``>= i``; sentinel ``size`` means "none".  One extra slot
        so that ``seek(size)`` is well-defined."""
        nxt: List[int] = [size] * (size + 1)
        following = size
        for i in range(size - 1, -1, -1):
            if i in present:
                following = i
            nxt[i] = following
        return nxt

    @classmethod
    def from_sorted(
        cls, size: int, indices: List[int], payloads: List[P]
    ) -> "ResumableIndex[P]":
        """Build from parallel (ascending, in-range) index/payload lists.

        The packed-slice constructor used by
        :mod:`repro.core.trim`'s compatibility views: the caller's cell
        indices are already validated and sorted (they come straight
        off the packed annotation arrays), so the per-key dict copy and
        range checks of ``__init__`` are skipped.
        """
        idx: "ResumableIndex[P]" = cls.__new__(cls)
        idx._size = size
        idx._payloads = dict(zip(indices, payloads))
        idx._next = cls._build_next(size, set(indices))
        return idx

    # -- queries ----------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of cells (the in-degree of the vertex, in practice)."""
        return self._size

    def first(self) -> Optional[int]:
        """Index of the first non-empty cell, or ``None``."""
        return self.seek(0)

    def seek(self, i: int) -> Optional[int]:
        """Index of the first non-empty cell ``>= i``, or ``None``. O(1)."""
        if i >= self._size:
            return None
        if i < 0:
            i = 0
        j = self._next[i]
        return None if j >= self._size else j

    def after(self, i: int) -> Optional[int]:
        """Index of the first non-empty cell ``> i``, or ``None``. O(1)."""
        return self.seek(i + 1)

    def payload(self, i: int) -> Optional[P]:
        """Payload at cell ``i`` (``None`` when the cell is empty)."""
        return self._payloads.get(i)

    def non_empty_indices(self) -> List[int]:
        """All non-empty cell indices in increasing order (for tests)."""
        return sorted(self._payloads)

    def __len__(self) -> int:
        return len(self._payloads)

    def __repr__(self) -> str:
        return f"ResumableIndex(size={self._size}, cells={self._payloads!r})"
