"""A pairing heap with ``decrease_key`` — the Dijkstra priority queue.

The Distinct Cheapest Walks extension (paper, Section 5.3) replaces the
BFS of ``Annotate`` with a cheapest-first traversal and cites
Fredman–Tarjan for the resulting
``O(|D|×|A| + |V|×|Q|×(log|V| + log|Q|))`` preprocessing bound.  That
bound presumes a priority queue with O(1) amortized ``decrease_key``;
a binary heap with lazy deletion matches it only up to duplicate
entries.  This module provides a from-scratch **pairing heap** — the
standard practical stand-in for Fibonacci heaps, with the same
amortized bounds for Dijkstra workloads (O(log n) ``pop``, o(log n)
``decrease_key``).

The heap is a min-heap over ``(key, item)`` pairs.  ``push`` returns an
opaque node handle; pass it to :meth:`PairingHeap.decrease_key` to
lower that entry's key in place.  Keys must be mutually comparable
(``<``); items are never compared.

>>> heap = PairingHeap()
>>> n1 = heap.push(5, "a")
>>> n2 = heap.push(3, "b")
>>> heap.decrease_key(n1, 1)
>>> heap.pop()
(1, 'a')
>>> heap.pop()
(3, 'b')
"""

from __future__ import annotations

from typing import Generic, List, Optional, Tuple, TypeVar

K = TypeVar("K")
V = TypeVar("V")


class HeapNode(Generic[K, V]):
    """A handle to one heap entry; treat all fields as read-only."""

    __slots__ = ("key", "item", "_child", "_next", "_prev", "_in_heap")

    def __init__(self, key: K, item: V) -> None:
        self.key = key
        self.item = item
        self._child: Optional["HeapNode[K, V]"] = None
        self._next: Optional["HeapNode[K, V]"] = None
        # Previous sibling, or the parent when this is a leftmost child.
        self._prev: Optional["HeapNode[K, V]"] = None
        self._in_heap = True

    def __repr__(self) -> str:
        return f"HeapNode({self.key!r}, {self.item!r})"


class PairingHeap(Generic[K, V]):
    """Min-heap with O(1) ``push``/``meld``/``decrease_key`` (amortized
    o(log n)) and O(log n) amortized ``pop`` — two-pass pairing."""

    __slots__ = ("_root", "_size")

    def __init__(self) -> None:
        self._root: Optional[HeapNode[K, V]] = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._root is not None

    def push(self, key: K, item: V) -> HeapNode[K, V]:
        """Insert ``(key, item)``; return the node handle."""
        node: HeapNode[K, V] = HeapNode(key, item)
        self._root = node if self._root is None else _meld(self._root, node)
        self._size += 1
        return node

    def peek(self) -> Tuple[K, V]:
        """The minimal ``(key, item)`` without removing it."""
        if self._root is None:
            raise IndexError("peek on an empty PairingHeap")
        return self._root.key, self._root.item

    def pop(self) -> Tuple[K, V]:
        """Remove and return the minimal ``(key, item)``."""
        root = self._root
        if root is None:
            raise IndexError("pop on an empty PairingHeap")
        root._in_heap = False
        self._root = _merge_pairs(root._child)
        root._child = None
        self._size -= 1
        return root.key, root.item

    def decrease_key(self, node: HeapNode[K, V], new_key: K) -> None:
        """Lower ``node``'s key to ``new_key`` in place.

        Raises ``ValueError`` if ``new_key`` is greater than the
        current key or if the node was already popped.
        """
        if not node._in_heap:
            raise ValueError("decrease_key on a node no longer in the heap")
        if node.key < new_key:
            raise ValueError(
                f"decrease_key would increase the key: "
                f"{node.key!r} -> {new_key!r}"
            )
        node.key = new_key
        if node is self._root:
            return
        _cut(node)
        assert self._root is not None
        self._root = _meld(self._root, node)


def _meld(
    a: HeapNode[K, V], b: HeapNode[K, V]
) -> HeapNode[K, V]:
    """Link two heap roots; the larger becomes the leftmost child."""
    if b.key < a.key:
        a, b = b, a
    # b becomes a's leftmost child.
    b._prev = a
    b._next = a._child
    if a._child is not None:
        a._child._prev = b
    a._child = b
    a._next = None
    a._prev = None
    return a


def _cut(node: HeapNode[K, V]) -> None:
    """Detach ``node`` (and its subtree) from its sibling list."""
    prev = node._prev
    assert prev is not None  # Non-root nodes always have a prev link.
    if prev._child is node:  # node is a leftmost child; prev is parent.
        prev._child = node._next
    else:  # prev is the left sibling.
        prev._next = node._next
    if node._next is not None:
        node._next._prev = prev
    node._next = None
    node._prev = None


def _merge_pairs(
    first: Optional[HeapNode[K, V]]
) -> Optional[HeapNode[K, V]]:
    """Two-pass pairwise meld of a sibling list (iterative)."""
    if first is None:
        return None
    # Pass 1: meld siblings in pairs, left to right.
    pairs: List[HeapNode[K, V]] = []
    node: Optional[HeapNode[K, V]] = first
    while node is not None:
        right = node._next
        node._next = None
        node._prev = None
        if right is None:
            pairs.append(node)
            break
        after = right._next
        right._next = None
        right._prev = None
        pairs.append(_meld(node, right))
        node = after
    # Pass 2: meld the pair roots right to left.
    result = pairs.pop()
    while pairs:
        result = _meld(pairs.pop(), result)
    return result
