"""The collection data structures of the paper's Section 2.1.

The complexity bounds of the enumeration algorithm hinge on using the
right structure at each step:

* :class:`~repro.datastructures.cons_list.ConsList` — immutable
  singly-linked lists with O(1) prepend and O(1) copy (sharing), used
  for walk prefixes during the recursive enumeration;
* :class:`~repro.datastructures.restartable_queue.RestartableQueue` —
  queues with O(1) enqueue / peek / advance / restart, used for the
  trimmed annotation ``C``;
* :class:`~repro.datastructures.resumable_index.ResumableIndex` — the
  skip-pointer array of the paper's ``ResumableTrim`` (Section 4.2),
  which supports O(1) "seek to the first non-empty cell ≥ i" and makes
  the memoryless variant of the algorithm possible;
* :class:`~repro.datastructures.pairing_heap.PairingHeap` — a
  decrease-key priority queue for the Dijkstra traversal of the
  Distinct Cheapest Walks extension (Section 5.3 cites Fredman–Tarjan;
  pairing heaps are the practical equivalent);
* :class:`~repro.datastructures.packed.PackedBack` /
  :class:`~repro.datastructures.packed.PackedCells` — the CSR-packed
  annotation entry store and the packed ``Trim`` cell layout that flow
  through the whole Annotate → Trim → Enumerate pipeline without
  conversion (the primary ``L``/``B`` form since the packed-pipeline
  refactor; the mapping views above are compatibility layers).
"""

from repro.datastructures.cons_list import ConsList, cons, nil
from repro.datastructures.packed import PackedBack, PackedCells
from repro.datastructures.pairing_heap import HeapNode, PairingHeap
from repro.datastructures.restartable_queue import RestartableQueue
from repro.datastructures.resumable_index import ResumableIndex

__all__ = [
    "ConsList",
    "cons",
    "nil",
    "HeapNode",
    "PairingHeap",
    "PackedBack",
    "PackedCells",
    "RestartableQueue",
    "ResumableIndex",
]
