"""CSR-packed annotation storage — the interior of ``Annotate``'s output.

The paper's ``B_u[p]`` maps (Lemma 10(2)) are conceptually a sparse
three-dimensional table ``(vertex, state, TgtIdx) → [predecessor
states]``.  The original implementation stored them as a
dict-of-dicts-of-lists; this module packs the same data into four flat
integer arrays, the layout the rest of the pipeline (``Trim``,
``Enumerate``, ``NextOutput``, the counting DP) reads without any
per-cell allocation:

:class:`PackedBack` — the raw predecessor entries, one ``(TgtIdx,
predecessor state)`` pair per witnessing transition, grouped by the
flattened product node ``key = u·|Q| + p`` (ascending) and, within a
key, by ascending ``TgtIdx``; entries of the same ``(key, TgtIdx)``
cell keep their BFS/Dijkstra append order.  Built from the traversal's
append-only entry log by a two-pass stable counting sort (LSD radix on
``TgtIdx`` then ``key``), O(|entries| + |V|·|Q| + max-InDeg) — no
comparison sort anywhere.  Remark 17's entry count is simply
``len(ent_pred)``, an O(1) read.

:class:`PackedCells` — the ``Trim`` product (paper, Figure 2 lines
34-41) in the same spirit: one record per *non-empty cell* — the queue
items ``(e, X)`` of Lemma 11 — as parallel arrays ``cell_ti`` /
``cell_edge`` / ``cell_pred_indptr``, grouped per key in ascending
``TgtIdx`` order.  Because :class:`PackedBack` already stores entries
in exactly that order, the build is a single O(entries) pointer-slicing
pass: no ``sorted()``, no tuple freezing.  Certificate tuples (the
sorted, duplicate-free predecessor sets the enumerators union per tree
edge) are materialized lazily per cell and cached in :attr:`certs` —
a first-``k`` enumeration touches only the cells along its walks.

One :class:`PackedCells` instance is shared by the eager
:class:`~repro.core.trim.TrimmedAnnotation` (which adds a per-key
cursor array), the read-only
:class:`~repro.core.trim.ResumableAnnotation` (which adds nothing —
the memoryless cursors live in the caller's frames) and the counting
DP, so ``Trim`` and ``ResumableTrim`` cost O(entries) once per
annotation *combined*.
"""

from __future__ import annotations

from array import array
from itertools import accumulate
from typing import Dict, List, Optional, Tuple

#: Legacy mapping forms (kept for the compatibility views).
LengthMap = Dict[int, int]
BackMap = Dict[int, Dict[int, List[int]]]


class PackedBack:
    """The packed ``B`` store: flat, grouped, TgtIdx-sorted entries.

    ``ent_ti[i]`` / ``ent_pred[i]`` are the ``TgtIdx`` and predecessor
    state of entry ``i``; entries of key ``k = u·|Q| + p`` occupy
    ``key_indptr[k] : key_indptr[k+1]``.  ``nonempty_keys`` lists the
    keys with at least one entry, ascending — iteration helpers skip
    the (typically vast) empty majority of the key space.
    """

    __slots__ = ("n", "n_states", "key_indptr", "ent_ti", "ent_pred",
                 "nonempty_keys")

    def __init__(
        self,
        n: int,
        n_states: int,
        key_indptr: array,
        ent_ti: array,
        ent_pred: array,
        nonempty_keys: List[int],
    ) -> None:
        self.n = n
        self.n_states = n_states
        self.key_indptr = key_indptr
        self.ent_ti = ent_ti
        self.ent_pred = ent_pred
        self.nonempty_keys = nonempty_keys

    def __len__(self) -> int:
        """Total predecessor entries — Remark 17's quantity, O(1)."""
        return len(self.ent_pred)

    @classmethod
    def from_entries(
        cls,
        n: int,
        n_states: int,
        ent_key: array,
        ent_ti: array,
        ent_pred: array,
    ) -> "PackedBack":
        """Pack a traversal's append-order entry log.

        Two stable counting-sort passes (LSD radix): first by
        ``TgtIdx``, then by key — so the result is grouped by key with
        ``TgtIdx`` ascending inside each key and append order preserved
        inside each cell.  The input arrays are consumed (reused as the
        output storage of the second pass).
        """
        m = len(ent_key)
        n_keys = n * n_states
        if not m:
            key_indptr = array("q", bytes(8 * (n_keys + 1)))
            return cls(n, n_states, key_indptr, array("q"), array("q"), [])

        # Pass 1 — stable counting sort by TgtIdx.
        max_ti = max(ent_ti)
        offsets = list(accumulate(
            _bucket_counts(ent_ti, max_ti + 1), initial=0
        ))
        by_ti_key = array("q", ent_key)
        by_ti_ti = array("q", ent_ti)
        by_ti_pred = array("q", ent_pred)
        for i in range(m):
            t = ent_ti[i]
            pos = offsets[t]
            offsets[t] = pos + 1
            by_ti_key[pos] = ent_key[i]
            by_ti_ti[pos] = t
            by_ti_pred[pos] = ent_pred[i]

        # Pass 2 — stable counting sort by key.  Only touched keys are
        # counted in Python; the prefix sum over the full (dense) key
        # space runs in C via itertools.accumulate.
        counts = array("q", bytes(8 * n_keys))
        seen = set()
        seen_add = seen.add
        for k in by_ti_key:
            counts[k] += 1
            seen_add(k)
        key_indptr = array("q", accumulate(counts, initial=0))
        fill = key_indptr[:n_keys]
        out_ti = ent_ti  # reuse — every slot is overwritten below
        out_pred = ent_pred
        for i in range(m):
            k = by_ti_key[i]
            pos = fill[k]
            fill[k] = pos + 1
            out_ti[pos] = by_ti_ti[i]
            out_pred[pos] = by_ti_pred[i]
        return cls(n, n_states, key_indptr, out_ti, out_pred, sorted(seen))

    @classmethod
    def from_maps(cls, n: int, n_states: int, B: List[BackMap]) -> "PackedBack":
        """Pack a legacy dict-of-dicts ``B`` (the reference traversals
        and the Dijkstra variant build these).  Deterministic: keys
        ascending, cells in ``TgtIdx`` order, predecessor lists kept in
        their recorded order."""
        ent_key = array("q")
        ent_ti = array("q")
        ent_pred = array("q")
        counts = array("q", bytes(8 * (n * n_states)))
        nonempty: List[int] = []
        for u in range(min(n, len(B))):
            base = u * n_states
            per_state = B[u]
            for p in sorted(per_state):
                cells = per_state[p]
                k = base + p
                total = 0
                for ti in sorted(cells):
                    preds = cells[ti]
                    for q in preds:
                        ent_key.append(k)
                        ent_ti.append(ti)
                        ent_pred.append(q)
                    total += len(preds)
                if total:
                    counts[k] = total
                    nonempty.append(k)
        key_indptr = array("q", accumulate(counts, initial=0))
        return cls(n, n_states, key_indptr, ent_ti, ent_pred, nonempty)

    # -- compatibility ---------------------------------------------------

    def to_maps(self) -> List[BackMap]:
        """Materialize the documented ``B[u][p][i]`` dict-of-dicts view.

        Cell lists reproduce the traversal's append order (including
        duplicates), so the view is indistinguishable from the maps the
        pre-packed implementation built in place.
        """
        B: List[BackMap] = [{} for _ in range(self.n)]
        key_indptr = self.key_indptr
        ent_ti = self.ent_ti
        ent_pred = self.ent_pred
        n_states = self.n_states
        for k in self.nonempty_keys:
            lo, hi = key_indptr[k], key_indptr[k + 1]
            if lo == hi:
                continue
            cells: Dict[int, List[int]] = {}
            i = lo
            while i < hi:
                t = ent_ti[i]
                j = i + 1
                while j < hi and ent_ti[j] == t:
                    j += 1
                cells[t] = list(ent_pred[i:j])
                i = j
            B[k // n_states][k % n_states] = cells
        return B


def _bucket_counts(values: array, size: int) -> array:
    counts = array("q", bytes(8 * size))
    for v in values:
        counts[v] += 1
    return counts


class PackedCells:
    """The packed ``Trim`` product — Lemma 11's queues as flat arrays.

    Cell ``c`` (a non-empty ``(u, p, TgtIdx)`` triple) has

    * ``cell_ti[c]`` — its ``TgtIdx`` (strictly increasing within a
      key: Lemma 11(2));
    * ``cell_edge[c]`` — the in-edge ``In(u)[TgtIdx]``, resolved once
      at build time;
    * predecessor entries ``back.ent_pred[cell_pred_indptr[c] :
      cell_pred_indptr[c+1]]`` — a zero-copy slice of the annotation's
      entry store (raw append order, duplicates preserved);
    * ``certs[c]`` — the sorted duplicate-free certificate tuple, built
      lazily on first use and cached (`None` until then).

    Cells of key ``k`` occupy ``key_indptr[k] : key_indptr[k+1]``;
    because keys are packed in ascending order, ``cell_pred_indptr`` is
    globally non-decreasing and one sentinel slot suffices.
    """

    __slots__ = ("graph", "back", "n", "n_states", "key_indptr",
                 "cell_ti", "cell_edge", "cell_pred_indptr", "certs")

    def __init__(self, graph, back: PackedBack) -> None:
        self.graph = graph
        self.back = back
        self.n = back.n
        self.n_states = back.n_states
        n_keys = back.n * back.n_states
        key_indptr_src = back.key_indptr
        ent_ti = back.ent_ti
        in_array = graph.in_array
        n_states = back.n_states

        cell_ti = array("q")
        cell_edge = array("q")
        # Entries are globally contiguous in cell order (keys ascending,
        # cells in entry order), so per-cell spans are one indptr array:
        # cell c's entries are [cell_pred_indptr[c], cell_pred_indptr[c+1]).
        cell_pred_indptr = array("q")
        counts = array("q", bytes(8 * n_keys))
        ti_append = cell_ti.append
        edge_append = cell_edge.append
        span_append = cell_pred_indptr.append
        for k in back.nonempty_keys:
            lo, hi = key_indptr_src[k], key_indptr_src[k + 1]
            if lo == hi:
                continue
            in_list = in_array[k // n_states]
            n_cells = 0
            i = lo
            while i < hi:
                t = ent_ti[i]
                ti_append(t)
                edge_append(in_list[t])
                span_append(i)
                n_cells += 1
                i += 1
                while i < hi and ent_ti[i] == t:
                    i += 1
            counts[k] = n_cells
        span_append(len(ent_ti))
        self.key_indptr = array("q", accumulate(counts, initial=0))
        self.cell_ti = cell_ti
        self.cell_edge = cell_edge
        self.cell_pred_indptr = cell_pred_indptr
        self.certs: List[Optional[Tuple[int, ...]]] = [None] * len(cell_ti)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        """Number of stored cells (= Trim queue items), O(1)."""
        return len(self.cell_ti)

    def cert(self, c: int) -> Tuple[int, ...]:
        """The certificate tuple of cell ``c`` — sorted, deduplicated,
        cached after the first call."""
        t = self.certs[c]
        if t is None:
            indptr = self.cell_pred_indptr
            lo, hi = indptr[c], indptr[c + 1]
            preds = self.back.ent_pred
            if hi == lo + 1:
                t = (preds[lo],)
            else:
                t = tuple(sorted(set(preds[lo:hi])))
            self.certs[c] = t
        return t

    def raw_preds(self, c: int) -> Tuple[int, ...]:
        """Cell ``c``'s predecessor list in append order, duplicates
        kept — the payload the legacy mapping views expose."""
        indptr = self.cell_pred_indptr
        return tuple(self.back.ent_pred[indptr[c]:indptr[c + 1]])
