"""The :func:`rpq` front-end: parse once, query anywhere.

>>> from repro.query import rpq
>>> from repro.workloads.fraud import example9_graph
>>> query = rpq("h* s (h | s)*")
>>> walks = list(query.shortest_walks(example9_graph(), "Alix", "Bob"))
>>> len(walks)
4
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional, Tuple

from repro.automata import parse_rpq, regex_to_nfa
from repro.automata.nfa import NFA
from repro.automata.regex_ast import RegexNode, ast_size
from repro.core.cheapest import DistinctCheapestWalks
from repro.core.engine import DistinctShortestWalks
from repro.core.multi_target import MultiTargetShortestWalks
from repro.core.walks import Walk
from repro.graph.database import Graph
from repro.query.plan import QueryPlan, analyze


class RPQ:
    """A compiled regular path query.

    Holds both the parsed AST and the compiled automaton; the
    construction method is a visible, benchmarkable choice
    (``thompson`` keeps Corollary 20's bounds; ``glushkov`` trades
    ε-freeness for O(|R|²) transitions).
    """

    def __init__(self, expression: str, method: str = "thompson") -> None:
        self.expression = expression
        self.method = method
        self.ast: RegexNode = parse_rpq(expression)
        self.automaton: NFA = regex_to_nfa(self.ast, method=method)

    @property
    def size(self) -> int:
        """|R| — the expression size used in Corollary 20."""
        return ast_size(self.ast)

    # -- execution ----------------------------------------------------------

    def engine(
        self,
        graph: Graph,
        source: Hashable,
        target: Hashable,
        mode: str = "auto",
    ) -> DistinctShortestWalks:
        """A reusable engine for this query on a specific instance."""
        return DistinctShortestWalks(
            graph, self.automaton, source, target, mode=mode
        )

    def shortest_walks(
        self,
        graph: Graph,
        source: Hashable,
        target: Hashable,
        mode: str = "auto",
    ) -> Iterator[Walk]:
        """Enumerate distinct shortest matching walks."""
        return self.engine(graph, source, target, mode=mode).enumerate()

    def shortest_walks_with_multiplicity(
        self, graph: Graph, source: Hashable, target: Hashable
    ) -> Iterator[Tuple[Walk, int]]:
        """Enumerate ``(walk, number of accepting runs)`` pairs."""
        return self.engine(
            graph, source, target, mode="iterative"
        ).enumerate_with_multiplicity()

    def cheapest_walks(
        self, graph: Graph, source: Hashable, target: Hashable
    ) -> Iterator[Walk]:
        """Enumerate distinct cheapest matching walks (edge costs)."""
        return DistinctCheapestWalks(
            graph, self.automaton, source, target
        ).enumerate()

    def to_all_targets(
        self, graph: Graph, source: Hashable
    ) -> MultiTargetShortestWalks:
        """Shared-preprocessing enumeration towards every target."""
        return MultiTargetShortestWalks(graph, self.automaton, source)

    def plan(self, graph: Graph) -> QueryPlan:
        """Input analysis for this query against ``graph``."""
        return analyze(graph, self.automaton)

    # -- conveniences ------------------------------------------------------------

    def lam(
        self, graph: Graph, source: Hashable, target: Hashable
    ) -> Optional[int]:
        """λ for this query on an instance (``None`` when unmatched)."""
        return self.engine(graph, source, target).lam

    def count(
        self, graph: Graph, source: Hashable, target: Hashable
    ) -> int:
        """Number of distinct shortest matching walks."""
        return self.engine(graph, source, target).count()

    def first(
        self, graph: Graph, source: Hashable, target: Hashable, k: int
    ) -> List[Walk]:
        """First ``k`` answers in enumeration order."""
        return self.engine(graph, source, target).first(k)

    def __repr__(self) -> str:
        return f"RPQ({self.expression!r}, method={self.method!r})"


def rpq(expression: str, method: str = "thompson") -> RPQ:
    """Compile a regular path query expression."""
    return RPQ(expression, method=method)
