"""The :func:`rpq` front-end: parse once, query anywhere.

>>> from repro.query import rpq
>>> from repro.workloads.fraud import example9_graph
>>> query = rpq("h* s (h | s)*")
>>> walks = list(query.shortest_walks(example9_graph(), "Alix", "Bob"))
>>> len(walks)
4

Since the ``repro.api`` façade landed, every execution method here is
a thin shim over :class:`repro.api.Database` — repeat calls on the
same graph object share the per-graph plan/annotation caches
(:meth:`repro.api.Database.for_graph`), and the historical mode
quirks are gone: every enumeration method accepts ``mode`` and
defaults to ``"auto"``.

**Mode × semantics.**  ``shortest`` (and its multiplicity variant)
supports ``auto`` / ``iterative`` / ``recursive`` / ``memoryless``;
``cheapest`` supports ``auto`` / ``iterative`` / ``memoryless`` (the
recursive enumerator is length-budgeted only).  ``"auto"`` resolves
to the façade's cached memoryless execution.

Prefer the façade directly for anything beyond a one-shot call::

    from repro.api import Database
    db = Database(graph)
    db.query("h* s (h | s)*").from_("Alix").to("Bob").limit(10).run()
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Hashable, Iterator, List, Optional, Tuple

from repro.automata import parse_rpq, regex_to_nfa
from repro.automata.nfa import NFA
from repro.automata.regex_ast import RegexNode, ast_size
from repro.core.engine import DistinctShortestWalks
from repro.core.walks import Walk
from repro.graph.database import Graph
from repro.query.plan import QueryPlan, analyze

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.api.query import Query
    from repro.core.multi_target import MultiTargetShortestWalks


class RPQ:
    """A compiled regular path query.

    Holds both the parsed AST and the compiled automaton; the
    construction method is a visible, benchmarkable choice
    (``thompson`` keeps Corollary 20's bounds; ``glushkov`` trades
    ε-freeness for O(|R|²) transitions).
    """

    def __init__(self, expression: str, method: str = "thompson") -> None:
        self.expression = expression
        self.method = method
        self.ast: RegexNode = parse_rpq(expression)
        self.automaton: NFA = regex_to_nfa(self.ast, method=method)

    @property
    def size(self) -> int:
        """|R| — the expression size used in Corollary 20."""
        return ast_size(self.ast)

    # -- execution ----------------------------------------------------------

    def query(self, graph: Graph) -> "Query":
        """A façade query-builder for this RPQ on ``graph``'s shared
        :class:`~repro.api.Database` — the full fluent API (endpoint
        shapes, pagination, ``explain``/``stats``)."""
        from repro.api.database import Database

        return Database.for_graph(graph).query(self)

    def engine(
        self,
        graph: Graph,
        source: Hashable,
        target: Hashable,
        mode: str = "auto",
    ) -> DistinctShortestWalks:
        """A raw single-pair engine — the uncached low-level escape
        hatch (no plan/annotation reuse; prefer :meth:`query`)."""
        return DistinctShortestWalks(
            graph, self.automaton, source, target, mode=mode
        )

    def shortest_walks(
        self,
        graph: Graph,
        source: Hashable,
        target: Hashable,
        mode: str = "auto",
        semantics: str = "walks",
    ) -> Iterator[Walk]:
        """Enumerate distinct shortest matching walks.

        ``semantics`` selects the walk restriction: ``"walks"``
        (default), ``"trails"`` (no repeated edge) or ``"simple"``
        (no repeated vertex) — see
        :meth:`repro.api.query.Query.semantics`.
        """
        return (
            self.query(graph).from_(source).to(target).mode(mode)
            .semantics(semantics).run().walks()
        )

    def any_walk(
        self,
        graph: Graph,
        source: Hashable,
        target: Hashable,
    ) -> Optional[Walk]:
        """One shortest witness walk, or ``None`` — the cheap
        single-answer mode (early-exit BFS, no enumeration
        machinery)."""
        rows = (
            self.query(graph).from_(source).to(target).any_walk()
            .run().all()
        )
        return rows[0].walk if rows else None

    def shortest_walks_with_multiplicity(
        self,
        graph: Graph,
        source: Hashable,
        target: Hashable,
        mode: str = "auto",
    ) -> Iterator[Tuple[Walk, int]]:
        """Enumerate ``(walk, number of accepting runs)`` pairs.

        Historically hard-coded ``mode="iterative"``; now any engine
        mode works (the runs are recomputed per output either way).
        """
        rows = (
            self.query(graph).from_(source).to(target).mode(mode)
            .with_multiplicity().run()
        )
        return ((row.walk, row.multiplicity) for row in rows)

    def cheapest_walks(
        self,
        graph: Graph,
        source: Hashable,
        target: Hashable,
        mode: str = "auto",
    ) -> Iterator[Walk]:
        """Enumerate distinct cheapest matching walks (edge costs).

        Historically accepted no ``mode``; now ``auto`` /
        ``iterative`` / ``memoryless`` (``recursive`` is rejected —
        the recursive enumerator cannot track cost budgets).
        """
        return (
            self.query(graph).cheapest().from_(source).to(target)
            .mode(mode).run().walks()
        )

    def to_all_targets(
        self, graph: Graph, source: Hashable
    ) -> "MultiTargetShortestWalks":
        """Shared-preprocessing enumeration towards every target.

        Each call returns an *independent*
        :class:`~repro.core.multi_target.MultiTargetShortestWalks`
        (built over the graph's cached compiled plan), so callers may
        interleave its eager enumerations freely.  For result sharing
        across calls, use the façade's ``to_all`` shape instead.
        """
        from repro.api.database import Database

        return Database.for_graph(graph).multi_target(self, source)

    def plan(self, graph: Graph) -> QueryPlan:
        """Input analysis for this query against ``graph``."""
        return analyze(graph, self.automaton)

    # -- conveniences ------------------------------------------------------------

    def lam(
        self, graph: Graph, source: Hashable, target: Hashable
    ) -> Optional[int]:
        """λ for this query on an instance (``None`` when unmatched)."""
        return self.query(graph).from_(source).to(target).run().lam

    def count(
        self, graph: Graph, source: Hashable, target: Hashable
    ) -> int:
        """Number of distinct shortest matching walks."""
        return self.query(graph).from_(source).to(target).count()

    def first(
        self, graph: Graph, source: Hashable, target: Hashable, k: int
    ) -> List[Walk]:
        """The first ``k`` answers in enumeration order."""
        rows = (
            self.query(graph).from_(source).to(target).limit(k).run()
        )
        return [row.walk for row in rows]

    def __repr__(self) -> str:
        return f"RPQ({self.expression!r}, method={self.method!r})"


def rpq(expression: str, method: str = "thompson") -> RPQ:
    """Compile a regular path query expression."""
    return RPQ(expression, method=method)
