"""Query planning: detect which algorithm variant an input admits.

The paper (Section 1): *"it takes linear time to check whether a given
automaton A is deterministic and a given database D is single-labeled.
Thus, detecting that the input lies in the more favourable setting and
running the more efficient algorithm instead can be done at no
additional cost."*  :func:`analyze` performs exactly those checks and
records the reasoning, so users can ask a plan to explain itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.automata.determinize import is_deterministic
from repro.automata.nfa import NFA
from repro.automata.ops import is_unambiguous
from repro.core.simple import graph_is_single_labeled
from repro.graph.database import Graph


@dataclass
class QueryPlan:
    """Outcome of :func:`analyze`."""

    single_labeled: bool
    deterministic: bool
    has_epsilon: bool
    unambiguous: bool
    #: "simple" (product BFS, O(λ) delay) or "general" (the paper's
    #: algorithm, O(λ×|A|) delay).
    engine: str = "general"
    reasons: List[str] = field(default_factory=list)
    graph_size: int = 0
    automaton_size: int = 0

    def explain(self) -> str:
        """Multi-line human-readable account of the decision."""
        lines = [
            f"engine: {self.engine}",
            f"database: size {self.graph_size}, "
            f"single-labeled: {self.single_labeled}",
            f"automaton: size {self.automaton_size}, "
            f"deterministic: {self.deterministic}, "
            f"ε-transitions: {self.has_epsilon}, "
            f"unambiguous: {self.unambiguous}",
        ]
        lines.extend(f"- {reason}" for reason in self.reasons)
        return "\n".join(lines)


def analyze(graph: Graph, automaton: NFA, check_ambiguity: bool = True) -> QueryPlan:
    """Classify the input and choose an engine.

    The single-labeled and determinism checks are linear; the
    unambiguity check (used only for reporting — related work [11, 17]
    assumes it) costs up to O(|Δ|²) and can be disabled with
    ``check_ambiguity=False``.
    """
    single = graph_is_single_labeled(graph)
    deterministic = is_deterministic(automaton)
    has_eps = automaton.has_epsilon
    unambiguous = (
        deterministic
        if deterministic
        else (is_unambiguous(automaton) if check_ambiguity else False)
    )
    plan = QueryPlan(
        single_labeled=single,
        deterministic=deterministic,
        has_epsilon=has_eps,
        unambiguous=unambiguous,
        graph_size=graph.size(),
        automaton_size=automaton.size(),
    )
    if single and deterministic:
        plan.engine = "simple"
        plan.reasons.append(
            "single-labeled database + deterministic automaton: "
            "walks and product paths are in bijection, the O(λ)-delay "
            "product-BFS enumeration applies"
        )
    else:
        plan.engine = "general"
        if not single:
            plan.reasons.append(
                "multi-labeled edges introduce nondeterminism in the data"
            )
        if not deterministic:
            plan.reasons.append(
                "nondeterministic query automaton "
                "(duplicates possible in the product)"
            )
        plan.reasons.append(
            "using the paper's algorithm: O(|D|×|A|) preprocessing, "
            "O(λ×|A|) delay"
        )
    return plan
