"""User-facing RPQ layer.

* :func:`~repro.query.rpq.rpq` — compile a regular path query
  expression once, run it against any database;
* :func:`~repro.query.pattern.parse_pattern` — GQL-flavoured path
  patterns (``ALL SHORTEST (a)-[:h|:s]->+(b)``) over the same engine;
* :func:`~repro.query.plan.analyze` — linear-time input analysis and
  engine selection, per the paper's remark that detecting the
  "simpler setting" is free.
"""

from repro.query.pattern import PathPattern, parse_pattern
from repro.query.plan import QueryPlan, analyze
from repro.query.rpq import RPQ, rpq

__all__ = [
    "PathPattern",
    "QueryPlan",
    "RPQ",
    "analyze",
    "parse_pattern",
    "rpq",
]
