"""GQL-flavoured path patterns over the shortest-walk engine.

All-shortest-walks is "one of the most widespread semantics in
practice" (paper, Section 1): it is the semantics of GSQL/TigerGraph
and G-Core, and is supported by PGQL and the GQL ISO standard.  Those
languages phrase queries as *path patterns* —
``ALL SHORTEST (a)-[:h|:s]->+(b)`` — rather than bare regular
expressions.  This module provides that surface syntax, compiled down
to the library's RPQ engine.

Supported grammar (a pragmatic GQL subset; whitespace is free)::

    pattern  := [mode] node segment+
    mode     := 'ANY' 'SHORTEST' | 'ALL' 'SHORTEST' | 'SHORTEST'
                                                (default: ALL SHORTEST)
    node     := '(' NAME? ')'        endpoints must be named; interior
                                     nodes must be anonymous '()'
    segment  := arrow node
    arrow    := '-[' SPEC ']->' QUANT?  |  '-->' QUANT?
    QUANT    := '*' | '+' | '?' | '{' INT [',' INT?] '}'
    SPEC     := a regular path query expression
                (:mod:`repro.automata.regex_parser` syntax); GQL-style
                ':' sigils before labels are tolerated and ignored

``-->`` abbreviates ``-[.]->`` (one edge, any label).  Consecutive
segments concatenate; a quantifier applies to its segment's SPEC.

>>> from repro.workloads.fraud import example9_graph
>>> p = parse_pattern("ALL SHORTEST (Alix)-[h* s (h|s)*]->(Bob)")
>>> len(list(p.run(example9_graph())))
4
>>> one = parse_pattern("ANY SHORTEST (Alix)-[h* s (h|s)*]->(Bob)")
>>> len(list(one.run(example9_graph())))
1

Semantics note: ``ANY SHORTEST`` returns one (the enumeration's first)
shortest matching walk; ``ALL SHORTEST`` returns every one, each
exactly once — precisely the paper's Distinct Shortest Walks problem.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.core.engine import DistinctShortestWalks
from repro.core.walks import Walk
from repro.exceptions import PatternSyntaxError
from repro.graph.database import Graph
from repro.query.rpq import RPQ

_MODES = ("all", "any")


class PathPattern:
    """A parsed path pattern: endpoints + compiled RPQ + mode.

    Build with :func:`parse_pattern`.  The compiled regular expression
    is exposed as :attr:`regex` (useful for logging and for tests);
    the underlying :class:`~repro.query.rpq.RPQ` as :attr:`rpq`.
    """

    def __init__(
        self,
        expression: str,
        mode: str,
        source: str,
        target: str,
        regex: str,
    ) -> None:
        self.expression = expression
        self.mode = mode
        self.source = source
        self.target = target
        self.regex = regex
        self.rpq = RPQ(regex)

    def engine(
        self, graph: Graph, mode: str = "auto"
    ) -> DistinctShortestWalks:
        """A shortest-walk engine for this pattern on ``graph``."""
        return self.rpq.engine(graph, self.source, self.target, mode=mode)

    def run(self, graph: Graph) -> Iterator[Walk]:
        """Evaluate the pattern.

        ``ALL SHORTEST`` yields every distinct shortest matching walk;
        ``ANY SHORTEST`` yields at most one.
        """
        iterator = self.engine(graph).enumerate()
        if self.mode == "any":
            for walk in iterator:
                yield walk
                break
            if hasattr(iterator, "close"):
                iterator.close()
            return
        yield from iterator

    def __repr__(self) -> str:
        return (
            f"PathPattern({self.mode.upper()} SHORTEST "
            f"({self.source}) -[{self.regex}]-> ({self.target}))"
        )


def parse_pattern(text: str) -> PathPattern:
    """Parse a GQL-flavoured path pattern (see the module docstring)."""
    scanner = _Scanner(text)
    mode = scanner.parse_mode()
    nodes: List[Tuple[Optional[str], int]] = [scanner.parse_node()]
    segments: List[str] = []
    while True:
        segments.append(scanner.parse_arrow())
        nodes.append(scanner.parse_node())
        scanner.skip_ws()
        if scanner.at_end():
            break
    if not segments:  # pragma: no cover - parse_arrow raises first.
        raise PatternSyntaxError("pattern needs at least one edge", 0)

    source, source_pos = nodes[0]
    target, target_pos = nodes[-1]
    if source is None:
        raise PatternSyntaxError(
            "the source endpoint must be named", source_pos
        )
    if target is None:
        raise PatternSyntaxError(
            "the target endpoint must be named", target_pos
        )
    for name, pos in nodes[1:-1]:
        if name is not None:
            raise PatternSyntaxError(
                f"interior node ({name}) must be anonymous: a regular "
                "path query cannot pin intermediate vertices",
                pos,
            )
    regex = " ".join(segments)
    return PathPattern(
        expression=text,
        mode=mode,
        source=source,
        target=target,
        regex=regex,
    )


class _Scanner:
    """Character-level scanner for the pattern grammar."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0

    # -- plumbing ------------------------------------------------------

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def skip_ws(self) -> None:
        while not self.at_end() and self.text[self.pos].isspace():
            self.pos += 1

    def error(self, message: str) -> PatternSyntaxError:
        return PatternSyntaxError(message, self.pos)

    def expect(self, literal: str) -> None:
        if not self.text.startswith(literal, self.pos):
            raise self.error(f"expected {literal!r}")
        self.pos += len(literal)

    def _word(self) -> str:
        start = self.pos
        while not self.at_end() and self.text[self.pos].isalpha():
            self.pos += 1
        return self.text[start:self.pos]

    # -- grammar -------------------------------------------------------

    def parse_mode(self) -> str:
        """``ANY SHORTEST`` / ``ALL SHORTEST`` / ``SHORTEST`` / none."""
        self.skip_ws()
        checkpoint = self.pos
        first = self._word().upper()
        if first in ("ANY", "ALL"):
            self.skip_ws()
            second = self._word().upper()
            if second != "SHORTEST":
                raise self.error(
                    f"expected SHORTEST after {first}, got {second!r}"
                )
            return "any" if first == "ANY" else "all"
        if first == "SHORTEST":
            return "all"
        self.pos = checkpoint  # Not a mode keyword: no mode given.
        return "all"

    def parse_node(self) -> Tuple[Optional[str], int]:
        """``( name? )`` → (name or None, position)."""
        self.skip_ws()
        start = self.pos
        self.expect("(")
        end = self.text.find(")", self.pos)
        if end < 0:
            raise self.error("unterminated node: missing ')'")
        name = self.text[self.pos:end].strip()
        self.pos = end + 1
        return (name if name else None), start

    def parse_arrow(self) -> str:
        """An arrow segment → its regular-expression fragment."""
        self.skip_ws()
        if self.text.startswith("-->", self.pos):
            self.pos += 3
            spec = "."
        elif self.text.startswith("-[", self.pos):
            self.pos += 2
            spec = self._bracket_spec()
            self.skip_ws()
            self.expect("->")
        else:
            raise self.error("expected '-[' or '-->'")
        quant = self._quantifier()
        return f"({spec}){quant}" if quant else f"({spec})"

    def _bracket_spec(self) -> str:
        """Scan to the matching ``]``; strip GQL ':' sigils.

        Quoted labels (single or double quotes, backslash escapes) may
        contain ``]`` and ``:`` freely.
        """
        start = self.pos
        chars: List[str] = []
        quote: Optional[str] = None
        while not self.at_end():
            ch = self.text[self.pos]
            if quote is not None:
                chars.append(ch)
                if ch == "\\" and self.pos + 1 < len(self.text):
                    chars.append(self.text[self.pos + 1])
                    self.pos += 2
                    continue
                if ch == quote:
                    quote = None
                self.pos += 1
                continue
            if ch in "'\"":
                quote = ch
                chars.append(ch)
                self.pos += 1
                continue
            if ch == "]":
                self.pos += 1
                spec = "".join(chars).strip()
                if not spec:
                    raise PatternSyntaxError(
                        "empty edge specification", start
                    )
                return spec
            if ch == ":":
                chars.append(" ")  # GQL sigil: ':h|:s' ≡ 'h|s'.
                self.pos += 1
                continue
            chars.append(ch)
            self.pos += 1
        raise PatternSyntaxError("unterminated '-[': missing ']'", start)

    def _quantifier(self) -> str:
        """``*``, ``+``, ``?`` or ``{m,n}`` after an arrow, if any."""
        self.skip_ws()
        if self.at_end():
            return ""
        ch = self.text[self.pos]
        if ch in "*+?":
            self.pos += 1
            return ch
        if ch == "{":
            end = self.text.find("}", self.pos)
            if end < 0:
                raise self.error("unterminated quantifier: missing '}'")
            body = self.text[self.pos + 1:end].strip()
            self.pos = end + 1
            parts = [p.strip() for p in body.split(",")]
            if not all(p.isdigit() or p == "" for p in parts) or not parts[
                0
            ].isdigit() or len(parts) > 2:
                raise self.error(f"bad quantifier body {{{body}}}")
            return "{" + body.replace(" ", "") + "}"
        return ""
