"""Adversarial instance families for the complexity experiments.

* :func:`duplicate_bomb` — one single shortest walk witnessed by
  ``m**k`` product paths: the instance from the paper's introduction
  where naive product enumeration repeats the same answer
  exponentially many times (experiment EXP-NAIVE);
* :func:`diamond_chain` — ``p**k`` distinct answers, for enumeration
  throughput and delay measurements;
* :func:`wide_nfa` — a complete m-state NFA used to scale |A|
  independently of |D| in the delay experiments (EXP-T2-DELAY);
* :func:`decoy_indegree` — a diamond chain whose in-degrees are
  inflated by never-matched decoy edges: the instance that separates
  the trimmed enumeration from the factor-``d`` strawman of
  Section 3.2 (experiment EXP-ABL-TRIM);
* :func:`label_soup` — a diamond chain drowned in labels the query
  never fires on: the instance that separates the label-indexed
  product-BFS (cost ∝ matching labels only) from the edge-major scan
  (cost ∝ OutDeg(v) × |Lbl(e)|) in EXP-ADJ
  (``benchmarks/bench_adjacency.py``).
"""

from __future__ import annotations

from typing import Tuple

from repro.automata.nfa import NFA
from repro.graph.builder import GraphBuilder
from repro.graph.generators import chain
from repro.graph.database import Graph


def wide_nfa(m: int, labels: Tuple[str, ...] = ("a", "b")) -> NFA:
    """Complete NFA: every state reaches every state on every label.

    All states are initial-reachable witnesses: state 0 is initial, all
    states are final, so every walk over ``labels`` matches — with
    ``m**k`` accepting runs for a walk of length ``k``.
    |Δ| = m² × len(labels).
    """
    nfa = NFA(m)
    for q in range(m):
        for p in range(m):
            for a in labels:
                nfa.add_transition(q, a, p)
    nfa.set_initial(0)
    nfa.set_final(*range(m))
    return nfa


def duplicate_bomb(
    k: int, m: int, labels: Tuple[str, ...] = ("a", "b")
) -> Tuple[Graph, NFA, str, str]:
    """One walk, ``m**k`` product paths.

    The database is a simple chain of ``k`` multi-labeled edges (so
    exactly one shortest walk from end to end); the query is the
    complete ``m``-state NFA.  Naive product-path enumeration visits
    ``m**k`` shortest product paths to emit that single answer, while
    the paper's algorithm outputs it after O(|D|×|A|) preprocessing
    with O(λ×|A|) delay.

    Returns ``(graph, nfa, source_name, target_name)``.
    """
    graph = chain(k, labels=labels, parallel=1)
    return graph, wide_nfa(m, labels), "v0", f"v{k}"


def diamond_chain(
    k: int, parallel: int = 2, labels: Tuple[str, ...] = ("a",)
) -> Tuple[Graph, NFA, str, str]:
    """``parallel**k`` distinct shortest walks, all of length ``k``.

    Each hop of the chain has ``parallel`` parallel edges; the query is
    the single-state "accept anything" automaton, so every combination
    of edge choices is a distinct answer.  Used to measure enumeration
    throughput and per-output delay on large answer sets.

    Returns ``(graph, nfa, source_name, target_name)``.
    """
    graph = chain(k, labels=labels, parallel=parallel)
    nfa = NFA(1)
    for a in labels:
        nfa.add_transition(0, a, 0)
    nfa.set_initial(0)
    nfa.set_final(0)
    return graph, nfa, "v0", f"v{k}"


def decoy_indegree(
    k: int,
    parallel: int = 2,
    decoys: int = 0,
    label: str = "a",
    decoy_label: str = "x",
) -> Tuple[Graph, NFA, str, str]:
    """A diamond chain whose in-degrees are padded with decoy edges.

    Same answer set as :func:`diamond_chain` (``parallel**k`` walks of
    length ``k`` matching ``label*``), but every chain vertex also
    receives ``decoys`` in-edges from an unreachable hub, labeled
    ``decoy_label`` which the query does not mention.  The decoys are
    inserted *before* the real edges, so they occupy the low ``TgtIdx``
    positions that a cell-by-cell scan of ``B_u[p]`` must cross first.

    The annotation ignores the decoys entirely (the hub is unreachable
    from the source), so:

    * the trimmed enumeration's delay is independent of ``decoys``
      (Theorem 2 — the queues only ever contain real edges), while
    * the untrimmed strawman (:mod:`repro.baselines.untrimmed`) scans
      ``decoys`` empty cells per tree node — the factor ``d`` of
      Section 3.2.

    Returns ``(graph, nfa, source_name, target_name)``.
    """
    builder = GraphBuilder()
    builder.add_vertex("v0")
    if decoys:
        builder.add_vertex("decoy_hub")
    for i in range(1, k + 1):
        for _ in range(decoys):
            builder.add_edge("decoy_hub", f"v{i}", [decoy_label])
        for _ in range(parallel):
            builder.add_edge(f"v{i - 1}", f"v{i}", [label])
    nfa = NFA(1)
    nfa.add_transition(0, label, 0)
    nfa.set_initial(0)
    nfa.set_final(0)
    return builder.build(), nfa, "v0", f"v{k}"


def label_soup(
    k: int,
    parallel: int = 2,
    extra_labels: int = 8,
    noise_out: int = 4,
    label: str = "a",
) -> Tuple[Graph, NFA, str, str]:
    """A diamond chain where almost every label never fires.

    Two orthogonal label inflations over :func:`diamond_chain`:

    * every matching chain edge *additionally* carries ``extra_labels``
      noise labels ``x0 .. x{extra_labels-1}`` — the edge-major scan
      probes Δ once per label and misses on all but ``label``;
    * every chain vertex also gets ``noise_out`` out-edges (to the next
      vertex) carrying only noise labels — the edge-major scan walks
      them in full, the label-indexed one never sees them.

    Answer set unchanged: ``parallel**k`` walks of length ``k``
    matching ``label*``.  With the defaults each frontier expansion
    costs the reference traversal 22 (edge, label) probes — 2 matching
    edges × 9 labels + 4 noise edges × 1 label — versus 2 CSR hits in
    the indexed one, which is the O(OutDeg × |Lbl|) → O(Σ_a |Out_a|)
    separation of the CSR layer at its starkest.

    Returns ``(graph, nfa, source_name, target_name)``.
    """
    noise = [f"x{j}" for j in range(extra_labels)]
    builder = GraphBuilder()
    builder.add_vertex("v0")
    for i in range(1, k + 1):
        for _ in range(parallel):
            builder.add_edge(f"v{i - 1}", f"v{i}", [label] + noise)
        for j in range(noise_out if extra_labels else 0):
            builder.add_edge(f"v{i - 1}", f"v{i}", [noise[j % extra_labels]])
    nfa = NFA(1)
    nfa.add_transition(0, label, 0)
    nfa.set_initial(0)
    nfa.set_final(0)
    return builder.build(), nfa, "v0", f"v{k}"
