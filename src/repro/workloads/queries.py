"""A catalog of benchmark queries, keyed by scenario.

Each entry is a plain RPQ expression string (see
:mod:`repro.automata.regex_parser` for the syntax); compile with
:func:`repro.query.rpq` or :func:`repro.automata.regex_to_nfa`.
"""

from __future__ import annotations

from typing import Dict

QUERY_CATALOG: Dict[str, str] = {
    # -- the paper's example -------------------------------------------------
    "example9": "h* s (h | s)*",
    # -- fraud scenario -------------------------------------------------------
    "laundering_chain": "s s* h?",
    "any_suspicious": "(h | w | c)* s (h | w | c | s)*",
    "wire_only": "w+",
    "high_value_pair": "h h",
    # -- social scenario ---------------------------------------------------------
    "friends_of_friends": "knows knows",
    "friend_circle": "knows{1,3}",
    "influencer_reach": "follows+ mentions",
    "any_connection": "(knows | follows)* mentions",
    "degrees_of_separation": ". . .",
    # -- synthetic / stress ---------------------------------------------------------
    "star_a": "a*",
    "alt_ab": "(a | b)*",
    "a_then_b": "a* b a*",
    "bounded": "a{2,5}",
    "nested": "((a b)* | (b a)*) a?",
}
