"""Workloads: the paper's running example plus scalable scenario
generators used by the examples, tests and benchmarks.

* :mod:`repro.workloads.fraud` — Figure 1 / Example 9 (bank transfers),
  its property-graph form (amounts + compliance flags), and a scalable
  fraud-network generator;
* :mod:`repro.workloads.social` — a social-graph generator with
  follow/knows/mentions labels;
* :mod:`repro.workloads.transport` — intermodal transport networks
  with per-mode edge costs, for the Distinct Cheapest Walks extension;
* :mod:`repro.workloads.worstcase` — adversarial families: the
  *duplicate bomb* (exponentially many product paths per walk), the
  *diamond chain* (exponentially many answers), and the
  *decoy in-degree* family (the Trim ablation);
* :mod:`repro.workloads.queries` — a catalog of benchmark queries.
"""

from repro.workloads.fraud import (
    example9_automaton,
    example9_graph,
    example9_property_graph,
    example9_query,
    example9_rules,
    fraud_network,
)
from repro.workloads.queries import QUERY_CATALOG
from repro.workloads.social import social_network
from repro.workloads.transport import (
    TRANSPORT_QUERIES,
    antipodal_pair,
    transport_network,
)
from repro.workloads.worstcase import (
    decoy_indegree,
    diamond_chain,
    duplicate_bomb,
    wide_nfa,
)

__all__ = [
    "QUERY_CATALOG",
    "TRANSPORT_QUERIES",
    "antipodal_pair",
    "decoy_indegree",
    "diamond_chain",
    "duplicate_bomb",
    "example9_automaton",
    "example9_graph",
    "example9_property_graph",
    "example9_query",
    "example9_rules",
    "fraud_network",
    "social_network",
    "transport_network",
    "wide_nfa",
]
