"""The paper's running example (Figure 1, Example 9) and a scalable
fraud-detection workload in the same spirit.

Figure 1's database: people connected by bank transfers; labels are
``h`` ("high value") and ``s`` ("suspicious").  Example 9's query asks
for sequences of transfers from Alix to Bob made of high-value or
suspicious transfers with at least one suspicious one:
``h* s (h + s)*``.

Edge-insertion order is chosen so that the ``TgtIdx`` values match the
ones printed in the paper's Figure 3 (``In(Cassie) = [e3, e1]``,
``In(Eve) = [e4, e5, e6]``, ``In(Bob) = [e8, e7]``), which the
annotation-reproduction test relies on.  Use :data:`EXAMPLE9_EDGE_IDS`
to translate the paper's edge names (``e1``..``e8``) to edge ids.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.automata.nfa import NFA
from repro.graph.builder import GraphBuilder
from repro.graph.database import Graph

#: Paper edge name -> (src, tgt, labels); ids depend on insertion order.
_EXAMPLE9_EDGES: List[Tuple[str, str, str, Tuple[str, ...]]] = [
    # (name, src, tgt, labels) — insertion order fixes Figure 3's TgtIdx.
    ("e2", "Alix", "Dan", ("h", "s")),
    ("e3", "Dan", "Cassie", ("s",)),
    ("e1", "Alix", "Cassie", ("h",)),
    ("e4", "Dan", "Eve", ("h",)),
    ("e5", "Cassie", "Eve", ("h",)),
    ("e6", "Cassie", "Eve", ("s",)),
    ("e8", "Eve", "Bob", ("h", "s")),
    ("e7", "Cassie", "Bob", ("h",)),
]

#: Paper edge name ("e1".."e8") -> edge id in :func:`example9_graph`.
EXAMPLE9_EDGE_IDS: Dict[str, int] = {
    name: position for position, (name, *_rest) in enumerate(_EXAMPLE9_EDGES)
}

#: Example 9's query as an RPQ expression.
example9_query = "h* s (h | s)*"


def example9_graph() -> Graph:
    """The database of Figure 1 (5 people, 8 multi-labeled transfers)."""
    builder = GraphBuilder()
    builder.add_vertices(["Alix", "Bob", "Cassie", "Dan", "Eve"])
    for _name, src, tgt, labels in _EXAMPLE9_EDGES:
        builder.add_edge(src, tgt, labels)
    return builder.build()


def example9_automaton() -> NFA:
    """The two-state automaton of Figure 3, capturing ``h* s (h + s)*``.

    State 0 is initial; reading ``s`` moves to state 1, which is final
    and absorbs both labels.
    """
    nfa = NFA(2)
    nfa.add_transition(0, "h", 0)
    nfa.add_transition(0, "s", 1)
    nfa.add_transition(1, "h", 1)
    nfa.add_transition(1, "s", 1)
    nfa.set_initial(0)
    nfa.set_final(1)
    return nfa


#: Transfer records behind Figure 1: (src, tgt, amount, flagged).
#: The labels of Example 9 are *derived*: h ⇔ amount ≥ 10 000 and
#: s ⇔ flagged — matching the paper's reading of multi-labels as
#: boolean tests on data values.
_EXAMPLE9_TRANSFERS: List[Tuple[str, str, int, bool]] = [
    ("Alix", "Dan", 25_000, True),     # e2: h, s
    ("Dan", "Cassie", 900, True),      # e3: s
    ("Alix", "Cassie", 12_000, False),  # e1: h
    ("Dan", "Eve", 48_000, False),     # e4: h
    ("Cassie", "Eve", 31_000, False),  # e5: h
    ("Cassie", "Eve", 700, True),      # e6: s
    ("Eve", "Bob", 64_000, True),      # e8: h, s
    ("Cassie", "Bob", 15_000, False),  # e7: h
]


def example9_property_graph():
    """Figure 1 as a *property* graph: raw amounts and fraud flags.

    Projecting it with :func:`example9_rules` reproduces
    :func:`example9_graph` edge-for-edge (the integration tests check
    this), demonstrating the paper's "labels = boolean tests on data
    values" abstraction on its own running example.
    """
    from repro.graph.property_graph import PropertyGraph

    pg = PropertyGraph()
    for src, tgt, amount, flagged in _EXAMPLE9_TRANSFERS:
        pg.add_edge(
            src, tgt, rel_type="transfer", amount=amount, flagged=flagged
        )
    return pg


def example9_rules():
    """The label rules that recover Figure 1's ``h`` and ``s``."""
    from repro.graph.property_graph import LabelRule

    return [
        LabelRule(
            "h",
            lambda e: e["amount"] >= 10_000,
            description="high value: amount >= 10k",
        ),
        LabelRule(
            "s",
            lambda e: e["flagged"],
            description="suspicious: flagged by compliance",
        ),
    ]


def fraud_network(
    n_accounts: int,
    n_transfers: int,
    suspicious_rate: float = 0.15,
    high_value_rate: float = 0.4,
    chain_length: int = 4,
    seed: int = 0,
) -> Graph:
    """A scalable bank-transfer network in the style of Figure 1.

    Labels: ``h`` (high value), ``s`` (suspicious), ``w`` (wire),
    ``c`` (cash); each transfer carries one to three of them.  A
    "mule chain" of suspicious transfers from account ``acct0`` to
    ``acctN`` (the last account) is always planted so that Example 9's
    query has answers between those two accounts.
    """
    rng = random.Random(seed)
    builder = GraphBuilder()
    names = [f"acct{i}" for i in range(n_accounts)]
    builder.add_vertices(names)

    def transfer_labels() -> List[str]:
        labels = {"w" if rng.random() < 0.7 else "c"}
        if rng.random() < high_value_rate:
            labels.add("h")
        if rng.random() < suspicious_rate:
            labels.add("s")
        return sorted(labels)

    for _ in range(n_transfers):
        a, b = rng.randrange(n_accounts), rng.randrange(n_accounts)
        builder.add_edge(names[a], names[b], transfer_labels())

    # Planted mule chain: acct0 -> ... -> acct{n-1}, all h/s-labeled.
    waypoints = (
        [names[0]]
        + [names[rng.randrange(n_accounts)] for _ in range(chain_length - 1)]
        + [names[-1]]
    )
    for a, b in zip(waypoints, waypoints[1:]):
        labels = ["h", "s"] if rng.random() < 0.5 else ["s"]
        builder.add_edge(a, b, labels)
    return builder.build()
