"""A scalable intermodal transport workload (Distinct Cheapest Walks).

The Section 5.3 cost extension needs realistic inputs: networks where
the *cheapest* compliant route differs from the *shortest* one and
where policy queries ("no flights after ground", "at most two buses")
prune the answer space.  This generator produces such networks at any
scale:

* cities arranged on a ring with ``train``/``bus`` edges between
  neighbours (buses cheaper, both directions);
* a random subset of *hub* cities fully connected by ``flight`` edges
  (fast in hops, expensive in cost);
* every edge carries a positive integer cost drawn from a per-mode
  range, so Dijkstra budgets stay exact.

The layout guarantees connectivity (the ring), multi-modal choice
(parallel train/bus edges), and hop-vs-cost tension (flights), which
together exercise every branch of the cheapest-walk annotation.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.database import Graph

#: Per-mode (min cost, max cost) ranges.
DEFAULT_MODE_COSTS: Dict[str, Tuple[int, int]] = {
    "train": (30, 80),
    "bus": (10, 40),
    "flight": (60, 150),
}

#: Policy queries over the transport alphabet, for benchmarks/examples.
TRANSPORT_QUERIES: Dict[str, str] = {
    "ground_only": "(train | bus)+",
    "fly_then_ground": "flight* (train | bus)*",
    "no_bus": "(train | flight)+",
    "one_flight_max": "(train | bus)* flight? (train | bus)*",
    "anything": "(train | bus | flight)+",
}


def transport_network(
    n_cities: int,
    hub_fraction: float = 0.2,
    mode_costs: Dict[str, Tuple[int, int]] = DEFAULT_MODE_COSTS,
    seed: int = 0,
) -> Graph:
    """A ring of cities with train/bus neighbour edges + flight hubs.

    Vertices are ``city0 .. city{n-1}``.  Every consecutive pair (both
    directions, ring-closed) gets one ``train`` and one ``bus`` edge
    with independent random costs; ``max(2, hub_fraction·n)`` hub
    cities are pairwise connected by ``flight`` edges.  All costs are
    positive integers (exact Dijkstra arithmetic).
    """
    if n_cities < 2:
        raise GraphError("a transport network needs at least two cities")
    if not 0.0 <= hub_fraction <= 1.0:
        raise GraphError("hub_fraction must be within [0, 1]")
    for mode, (lo, hi) in mode_costs.items():
        if lo <= 0 or hi < lo:
            raise GraphError(f"bad cost range for mode {mode!r}: ({lo}, {hi})")

    rng = random.Random(seed)
    builder = GraphBuilder()
    names = [f"city{i}" for i in range(n_cities)]
    builder.add_vertices(names)

    def cost(mode: str) -> int:
        lo, hi = mode_costs[mode]
        return rng.randint(lo, hi)

    ground = [m for m in ("train", "bus") if m in mode_costs]
    for i in range(n_cities):
        j = (i + 1) % n_cities
        for mode in ground:
            builder.add_edge(names[i], names[j], [mode], cost=cost(mode))
            builder.add_edge(names[j], names[i], [mode], cost=cost(mode))

    if "flight" in mode_costs:
        n_hubs = max(2, int(round(hub_fraction * n_cities)))
        hubs = rng.sample(range(n_cities), min(n_hubs, n_cities))
        for a in hubs:
            for b in hubs:
                if a != b:
                    builder.add_edge(
                        names[a], names[b], ["flight"], cost=cost("flight")
                    )
    return builder.build()


def antipodal_pair(graph: Graph) -> Tuple[str, str]:
    """The ring's most distant city pair — the canonical query endpoints."""
    n = graph.vertex_count
    return "city0", f"city{n // 2}"
