"""A social-network workload: people, posts... well, people mostly.

Labels model typical property-graph relationships:

* ``knows`` — symmetric-ish friendship (both directions inserted with
  high probability);
* ``follows`` — directed, power-law-ish (preferential attachment);
* ``mentions`` — directed interactions, may coexist with ``follows``
  on a *multi-labeled* edge, exercising the paper's data model.

Typical queries: ``knows{1,3}``, ``follows+ mentions``,
``(knows | follows)* mentions`` — see
:data:`repro.workloads.queries.QUERY_CATALOG`.
"""

from __future__ import annotations

import random
from typing import List

from repro.graph.builder import GraphBuilder
from repro.graph.database import Graph


def social_network(
    n_people: int,
    avg_degree: int = 6,
    mention_rate: float = 0.25,
    seed: int = 0,
) -> Graph:
    """Generate a social graph with multi-labeled interaction edges.

    Preferential attachment makes early vertices hubs, giving the
    in-degree skew that stresses the ``TgtIdx`` machinery (the paper's
    delay must not depend on in-degrees).
    """
    rng = random.Random(seed)
    builder = GraphBuilder()
    names = [f"p{i}" for i in range(n_people)]
    builder.add_vertices(names)

    popularity: List[int] = [1] * n_people

    def pick_popular() -> int:
        total = sum(popularity)
        roll = rng.randrange(total)
        acc = 0
        for person, weight in enumerate(popularity):
            acc += weight
            if roll < acc:
                return person
        return n_people - 1

    n_edges = max(1, (n_people * avg_degree) // 2)
    for _ in range(n_edges):
        a = rng.randrange(n_people)
        b = pick_popular()
        if a == b:
            b = (b + 1) % n_people
        kind = rng.random()
        if kind < 0.45:
            builder.add_edge(names[a], names[b], ["knows"])
            if rng.random() < 0.8:
                builder.add_edge(names[b], names[a], ["knows"])
        else:
            labels = ["follows"]
            if rng.random() < mention_rate:
                labels.append("mentions")
            builder.add_edge(names[a], names[b], labels)
            popularity[b] += 2
    return builder.build()
