"""repro — Distinct Shortest Walk Enumeration for RPQs.

A from-scratch Python implementation of

    Claire David, Nadime Francis, Victor Marsault.
    *Distinct Shortest Walk Enumeration for RPQs.*  PODS 2024.
    arXiv:2312.05505.

Given a multi-labeled multi-edge graph database, two vertices and a
regular path query, enumerate **all shortest matching walks, each
exactly once**, with O(|D|×|A|) preprocessing and O(λ×|A|) delay.

Quickstart::

    from repro import GraphBuilder, rpq

    b = GraphBuilder()
    b.add_edge("Alix", "Dan", ["h", "s"])
    b.add_edge("Dan", "Bob", ["h"])
    g = b.build()

    for walk in rpq("h* s (h | s)*").shortest_walks(g, "Alix", "Bob"):
        print(walk.describe())

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
reproduction of the paper's claims.
"""

from repro.automata import (
    ANY,
    EPSILON,
    NFA,
    equivalent,
    glushkov_nfa,
    language_key,
    minimize,
    parse_rpq,
    regex_to_nfa,
    thompson_nfa,
)
from repro.core import (
    DistinctCheapestWalks,
    DistinctShortestWalks,
    MultiTargetShortestWalks,
    Walk,
    count_distinct_shortest,
    count_shortest_product_paths,
    count_total_multiplicity,
    distinct_shortest_walks,
)
from repro.exceptions import (
    AutomatonError,
    CostError,
    GraphError,
    PatternSyntaxError,
    QueryError,
    RegexSyntaxError,
    ReproError,
)
from repro.graph import (
    Graph,
    GraphBuilder,
    LabelRule,
    PropertyGraph,
    project,
)
from repro.query import RPQ, PathPattern, analyze, parse_pattern, rpq
from repro.service import QueryRequest, QueryResponse, QueryService

__version__ = "1.0.0"

__all__ = [
    "ANY",
    "AutomatonError",
    "CostError",
    "DistinctCheapestWalks",
    "DistinctShortestWalks",
    "EPSILON",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "LabelRule",
    "MultiTargetShortestWalks",
    "NFA",
    "PathPattern",
    "PatternSyntaxError",
    "PropertyGraph",
    "QueryError",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "RPQ",
    "RegexSyntaxError",
    "ReproError",
    "Walk",
    "analyze",
    "count_distinct_shortest",
    "count_shortest_product_paths",
    "count_total_multiplicity",
    "distinct_shortest_walks",
    "equivalent",
    "glushkov_nfa",
    "language_key",
    "minimize",
    "parse_pattern",
    "parse_rpq",
    "project",
    "regex_to_nfa",
    "rpq",
    "thompson_nfa",
]
