"""repro — Distinct Shortest Walk Enumeration for RPQs.

A from-scratch Python implementation of

    Claire David, Nadime Francis, Victor Marsault.
    *Distinct Shortest Walk Enumeration for RPQs.*  PODS 2024.
    arXiv:2312.05505.

Given a multi-labeled multi-edge graph database, two vertices and a
regular path query, enumerate **all shortest matching walks, each
exactly once**, with O(|D|×|A|) preprocessing and O(λ×|A|) delay.

Quickstart — the fluent ``repro.api`` façade::

    from repro import Database, GraphBuilder

    b = GraphBuilder()
    b.add_edge("Alix", "Dan", ["h", "s"])
    b.add_edge("Dan", "Bob", ["h"])
    db = Database(b.build())

    for row in db.query("h* s (h | s)*").from_("Alix").to("Bob"):
        print(row.walk.describe())

Legacy entry points (kept as thin shims over the façade — prefer the
builder calls on the right for new code):

=====================================================  =====================================================
 old entry point                                        façade equivalent
=====================================================  =====================================================
``DistinctShortestWalks(g, q, s, t).enumerate()``      ``db.query(q).from_(s).to(t).run()``
``DistinctCheapestWalks(g, q, s, t).enumerate()``      ``db.query(q).cheapest().from_(s).to(t).run()``
``MultiTargetShortestWalks(g, q, s).walks_to(t)``      ``db.query(q).from_(s).to_all().run()``
``SimpleShortestWalks`` (fast path)                    ``mode("auto")`` on a cold ``Database`` (cache size 0)
``rpq(q).shortest_walks(g, s, t)``                     ``db.query(q).from_(s).to(t).run().walks()``
``rpq(q).shortest_walks_with_multiplicity(g, s, t)``   ``….with_multiplicity().run()``
``rpq(q).cheapest_walks(g, s, t)``                     ``….cheapest().run()``
``QueryService.execute(QueryRequest(q, s, t))``        ``db.query(q).from_(s).to(t).limit(n).cursor(c).run()``
``repro query GRAPH Q S T`` (CLI)                      routes through the façade internally
=====================================================  =====================================================

The engine classes remain fully supported as the *uncached* low-level
layer; the ``RPQ`` helpers, the batch :class:`QueryService` and the
CLI now delegate to :mod:`repro.api`, so they share one plan cache,
one annotation cache and one pagination/cursor model.

See ``DESIGN.md`` for the architecture and ``EXPERIMENTS.md`` for the
reproduction of the paper's claims.
"""

from repro.api import Cursor, Database, Query, ResultSet, Row

from repro.automata import (
    ANY,
    EPSILON,
    NFA,
    equivalent,
    glushkov_nfa,
    language_key,
    minimize,
    parse_rpq,
    regex_to_nfa,
    thompson_nfa,
)
from repro.core import (
    DistinctCheapestWalks,
    DistinctShortestWalks,
    MultiTargetShortestWalks,
    Walk,
    count_distinct_shortest,
    count_shortest_product_paths,
    count_total_multiplicity,
    distinct_shortest_walks,
)
from repro.exceptions import (
    AutomatonError,
    CostError,
    GraphError,
    PatternSyntaxError,
    QueryError,
    RegexSyntaxError,
    ReproError,
)
from repro.graph import (
    Graph,
    GraphBuilder,
    LabelRule,
    PropertyGraph,
    project,
)
from repro.live import LiveGraph, MutationBatch, StandingQuery
from repro.query import RPQ, PathPattern, analyze, parse_pattern, rpq
from repro.service import QueryRequest, QueryResponse, QueryService

__version__ = "1.0.0"

__all__ = [
    "ANY",
    "AutomatonError",
    "CostError",
    "Cursor",
    "Database",
    "DistinctCheapestWalks",
    "DistinctShortestWalks",
    "EPSILON",
    "Graph",
    "GraphBuilder",
    "GraphError",
    "LabelRule",
    "LiveGraph",
    "MultiTargetShortestWalks",
    "MutationBatch",
    "NFA",
    "PathPattern",
    "PatternSyntaxError",
    "PropertyGraph",
    "Query",
    "QueryError",
    "QueryRequest",
    "QueryResponse",
    "QueryService",
    "RPQ",
    "ResultSet",
    "Row",
    "RegexSyntaxError",
    "ReproError",
    "StandingQuery",
    "Walk",
    "analyze",
    "count_distinct_shortest",
    "count_shortest_product_paths",
    "count_total_multiplicity",
    "distinct_shortest_walks",
    "equivalent",
    "glushkov_nfa",
    "language_key",
    "minimize",
    "parse_pattern",
    "parse_rpq",
    "project",
    "regex_to_nfa",
    "rpq",
    "thompson_nfa",
]
