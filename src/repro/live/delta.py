"""The mutation op model of :mod:`repro.live`.

A mutation is a sequence of :data:`Delta` ops applied to a
:class:`~repro.live.live_graph.LiveGraph` as one atomic **batch**:

* :class:`AddVertex` — register a (possibly isolated) vertex by name;
* :class:`AddEdge` — append one edge (named endpoints, label names, an
  optional positive cost); endpoints are interned on first sight, like
  :class:`~repro.graph.builder.GraphBuilder`;
* :class:`RemoveEdge` — tombstone an edge by id.  The id keeps its
  slot in the edge-id space and its ``TgtIdx`` position (see the
  no-reindexing invariant in :mod:`repro.live`), it merely disappears
  from every adjacency view;
* :class:`SetEdgeLabels` — replace an edge's label set in place.  The
  edge id and its ``TgtIdx`` are preserved, which is what makes label
  edits cheaper than a remove + re-add (those allocate a new id).

Ops round-trip through plain dictionaries (``op_to_dict`` /
``op_from_dict``) — the wire form used by the JSONL ``mutate`` request
of :mod:`repro.service.requests`, the CLI ``mutate`` subcommand and
the :mod:`repro.wal` write-ahead log::

    {"v": 1, "op": "add_vertex", "name": "city99"}
    {"v": 1, "op": "add_edge", "src": "city0", "tgt": "city99",
     "labels": ["ferry"], "cost": 12}
    {"v": 1, "op": "remove_edge", "edge": 17}
    {"v": 1, "op": "set_edge_labels", "edge": 3,
     "labels": ["train", "night"]}

The ``"v"`` field versions the wire schema (currently
:data:`WIRE_VERSION` = 1) so WAL files survive future evolution: the
reader accepts payloads without it (pre-versioning writers), rejects
unknown fields at the version it knows (they are typos, not
extensions), and *ignores* unknown fields on payloads stamped with a
**newer** version — a downgraded reader replays what it understands
instead of refusing the whole log.  Malformed payloads of every kind
raise the typed :class:`~repro.exceptions.InvalidDeltaError` (a
:class:`~repro.exceptions.GraphError`), never a raw
``KeyError``/``TypeError``.

Applying a batch yields a :class:`MutationBatch` receipt: what was
added/removed, which label *names* the batch touched, and which label
names it introduced to the graph.  The receipt is the currency of
fine-grained cache invalidation (:meth:`repro.api.Database.mutate`
evicts only cached artifacts whose label footprint intersects
``touched_labels``) and of the :meth:`LiveGraph.subscribe` change
feed (standing queries compare it against their own footprint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Optional,
    Tuple,
    Union,
)

from repro.exceptions import InvalidDeltaError

#: Version stamped into every :func:`op_to_dict` payload.  Bump it
#: when the wire schema gains fields; readers at an older version
#: ignore fields they do not know on payloads carrying a newer ``v``.
WIRE_VERSION = 1


@dataclass(frozen=True)
class AddVertex:
    """Register a vertex by name (idempotent, like the builder's)."""

    name: Hashable

    op = "add_vertex"


@dataclass(frozen=True)
class AddEdge:
    """Append one edge; unknown endpoint names are interned."""

    src: Hashable
    tgt: Hashable
    labels: Tuple[str, ...]
    cost: Optional[int] = None

    op = "add_edge"

    def __post_init__(self) -> None:
        object.__setattr__(self, "labels", tuple(self.labels))


@dataclass(frozen=True)
class RemoveEdge:
    """Tombstone an edge by id (slot and TgtIdx position retained)."""

    edge: int

    op = "remove_edge"


@dataclass(frozen=True)
class SetEdgeLabels:
    """Replace an edge's label set in place (id and TgtIdx keep)."""

    edge: int
    labels: Tuple[str, ...]

    op = "set_edge_labels"

    def __post_init__(self) -> None:
        object.__setattr__(self, "labels", tuple(self.labels))


#: One mutation op.
Delta = Union[AddVertex, AddEdge, RemoveEdge, SetEdgeLabels]

_OP_TYPES: Dict[str, type] = {
    "add_vertex": AddVertex,
    "add_edge": AddEdge,
    "remove_edge": RemoveEdge,
    "set_edge_labels": SetEdgeLabels,
}

_OP_FIELDS: Dict[str, Tuple[Tuple[str, bool], ...]] = {
    # field name -> required?
    "add_vertex": (("name", True),),
    "add_edge": (
        ("src", True), ("tgt", True), ("labels", True), ("cost", False),
    ),
    "remove_edge": (("edge", True),),
    "set_edge_labels": (("edge", True), ("labels", True)),
}


def op_to_dict(op: Delta) -> Dict[str, Any]:
    """The wire form of one op (inverse of :func:`op_from_dict`)."""
    out: Dict[str, Any] = {"v": WIRE_VERSION, "op": op.op}
    for name, _ in _OP_FIELDS[op.op]:
        value = getattr(op, name)
        if value is None:
            continue
        out[name] = list(value) if name == "labels" else value
    return out


def op_from_dict(payload: Dict[str, Any]) -> Delta:
    """Parse one wire-form op.

    Every malformed payload — wrong container type, unknown op kind
    (including unhashable ones a JSON list can smuggle into ``"op"``),
    missing/unknown fields, wrong field types — raises the typed
    :class:`~repro.exceptions.InvalidDeltaError`.  A payload stamped
    with a ``"v"`` *newer* than :data:`WIRE_VERSION` is read
    tolerantly: fields this reader does not know are ignored rather
    than rejected, so logs written by a future schema still replay.
    """
    if not isinstance(payload, dict):
        raise InvalidDeltaError(
            f"mutation op must be an object, got {type(payload).__name__}"
        )
    version = payload.get("v", WIRE_VERSION)
    if not isinstance(version, int) or isinstance(version, bool) or (
        version < 1
    ):
        raise InvalidDeltaError(
            f"op field 'v' must be a positive integer, got {version!r}"
        )
    kind = payload.get("op")
    cls = _OP_TYPES.get(kind) if isinstance(kind, str) else None
    if cls is None:
        raise InvalidDeltaError(
            f"unknown mutation op {kind!r}; expected one of "
            f"{', '.join(sorted(_OP_TYPES))}"
        )
    fields = _OP_FIELDS[kind]
    known = {"op", "v"} | {name for name, _ in fields}
    unknown = set(payload) - known
    if unknown and version <= WIRE_VERSION:
        raise InvalidDeltaError(
            f"unknown field(s) for op {kind!r}: "
            f"{', '.join(sorted(map(str, unknown)))}"
        )
    kwargs: Dict[str, Any] = {}
    for name, required in fields:
        if name in payload:
            kwargs[name] = payload[name]
        elif required:
            raise InvalidDeltaError(
                f"op {kind!r} is missing field {name!r}"
            )
    if "labels" in kwargs:
        labels = kwargs["labels"]
        if not isinstance(labels, (list, tuple)) or not all(
            isinstance(a, str) for a in labels
        ):
            raise InvalidDeltaError(
                f"op {kind!r}: 'labels' must be a list of strings"
            )
        kwargs["labels"] = tuple(labels)
    if "edge" in kwargs and (
        not isinstance(kwargs["edge"], int)
        or isinstance(kwargs["edge"], bool)
    ):
        raise InvalidDeltaError(f"op {kind!r}: 'edge' must be an edge id")
    if "cost" in kwargs and (
        not isinstance(kwargs["cost"], int)
        or isinstance(kwargs["cost"], bool)
    ):
        raise InvalidDeltaError(
            f"op {kind!r}: 'cost' must be an integer"
        )
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:  # Defensive backstop.
        raise InvalidDeltaError(
            f"malformed op {kind!r}: {exc}"
        ) from None


def ops_from_dicts(payloads: Iterable[Dict[str, Any]]) -> Tuple[Delta, ...]:
    """Parse a sequence of wire-form ops."""
    if isinstance(payloads, dict):
        raise InvalidDeltaError(
            "mutation ops must be a sequence of op objects, got a "
            "single object"
        )
    return tuple(op_from_dict(p) for p in payloads)


@dataclass(frozen=True)
class MutationBatch:
    """Receipt of one applied batch — the invalidation currency.

    ``touched_labels`` holds the label *names* carried by every edge
    the batch added, removed or relabeled (for label edits: old set ∪
    new set); ``new_labels`` the subset this batch introduced to the
    graph's label universe (⊆ ``touched_labels``, since labels only
    enter through edges).  Cached plans are only affected by
    ``new_labels`` (compilation drops transitions on absent labels and
    expands wildcards over the alphabet it saw); cached annotations by
    any ``touched_labels`` their automaton can fire on.
    """

    epoch: int
    ops: Tuple[Delta, ...]
    touched_labels: FrozenSet[str] = frozenset()
    new_labels: FrozenSet[str] = frozenset()
    added_vertices: Tuple[int, ...] = ()
    added_edges: Tuple[int, ...] = ()
    removed_edges: Tuple[int, ...] = ()
    relabeled_edges: Tuple[int, ...] = ()
    #: True for the receipt a :meth:`LiveGraph.compact` emits: no data
    #: changed, but **edge ids were renumbered** — subscribers holding
    #: id-addressed state (caches, materialized rows, cursors) must
    #: rebuild it wholesale; label-footprint reasoning does not apply.
    compaction: bool = False

    def summary(self) -> Dict[str, Any]:
        """A JSON-friendly digest (the service/CLI response body)."""
        return {
            "epoch": self.epoch,
            "ops": len(self.ops),
            "added_vertices": len(self.added_vertices),
            "added_edges": len(self.added_edges),
            "removed_edges": len(self.removed_edges),
            "relabeled_edges": len(self.relabeled_edges),
            "touched_labels": sorted(self.touched_labels),
            "new_labels": sorted(self.new_labels),
        }

