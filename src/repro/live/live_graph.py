""":class:`LiveGraph` — a mutable delta overlay over an immutable CSR base.

See :mod:`repro.live` for the architecture overview.  The class
implements the full :class:`~repro.graph.database.Graph` accessor
contract (``In``/``Out``/``Src``/``Tgt``/``Lbl``/``TgtIdx``, the
label-indexed ``out_by_label``/``in_by_label`` buckets and the raw
flat-array views the product-BFS hot loops consume), so ``annotate``,
``cheapest_annotate``, the enumerators and the counting DP all run on
a ``LiveGraph`` unmodified.

Two read paths coexist:

* **merged point reads** (``out_edges``, ``in_edges``,
  ``out_by_label``, ``in_by_label``, ``out_labels`` …) iterate the
  base CSR bucket — filtering tombstones and label overrides — and
  splice in the per-label delta adjacency.  O(answer) per call, always
  current, no materialization;
* **epoch-lazy flat views** (``out_csr``, ``in_csr``, ``src_array``,
  ``tgt_idx_array`` …) are counting-sorted over the live edge set on
  first use after a mutation batch and cached for the rest of the
  epoch.  One query after a batch pays the O(|D|) build; every other
  query in the epoch reads plain arrays at immutable-graph speed.

The **no-reindexing invariant** (load-bearing — see :mod:`repro.live`):
between compactions, vertex ids, label ids and edge ids are
append-only, and the ``TgtIdx`` of an existing edge never changes.
Tombstoned edges keep their slot in ``In(v)`` (they simply never carry
annotation cells), and label edits rewrite the label set in place.
Cached annotations therefore remain *positionally* valid across
batches, and fine-grained invalidation only has to reason about label
footprints, never about renumbering.

:meth:`compact` merges the overlay into a fresh immutable
:class:`Graph` — edge ids are renumbered (tombstone slots close up),
so compaction is the one operation after which every cached artifact
and cursor of this graph must be dropped
(:meth:`repro.api.Database.mutate` handles that with a version bump).
"""

from __future__ import annotations

import threading
import time
from array import array
from bisect import insort
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.exceptions import (
    CostError,
    GraphError,
    UnknownEdgeError,
    UnknownLabelError,
    UnknownVertexError,
)
from repro.graph.database import CsrIndex, Graph
from repro.live.delta import (
    AddEdge,
    AddVertex,
    Delta,
    MutationBatch,
    RemoveEdge,
    SetEdgeLabels,
)

#: A subscriber receives the receipt of every applied batch.
Subscriber = Callable[[MutationBatch], None]


class _View:
    """One epoch's materialized flat-array views (immutable once built)."""

    __slots__ = (
        "src_array",
        "tgt_array",
        "label_array",
        "cost_array",
        "out_array",
        "in_array",
        "tgt_idx_array",
        "out_csr",
        "in_csr",
        "out_label_tuples",
        "in_label_tuples",
    )


class LiveGraph:
    """A mutable multi-labeled multi-edge graph: immutable base + overlay.

    >>> from repro.graph import GraphBuilder
    >>> b = GraphBuilder()
    >>> _ = b.add_edge("Alix", "Dan", ["h", "s"])
    >>> live = LiveGraph(b.build())
    >>> _ = live.add_edge("Dan", "Bob", ["h"])
    >>> live.vertex_count, live.live_edge_count
    (3, 2)
    >>> _ = live.remove_edge(0)
    >>> live.live_edge_count
    1
    """

    def __init__(
        self,
        base: Optional[Graph] = None,
        *,
        compact_threshold: float = 0.5,
    ) -> None:
        if base is None:
            base = Graph(
                vertex_names=(), label_names=(), src=(), tgt=(), labels=()
            )
        if not 0.0 < compact_threshold:
            raise GraphError("compact_threshold must be positive")
        self._base = base
        self.compact_threshold = compact_threshold
        self._lock = threading.RLock()
        self._epoch = 0
        self._compactions = 0
        self._subscribers: List[Subscriber] = []
        # Duck-typed durability hook (see attach_wal); survives
        # compaction, unlike the per-epoch overlay state below.
        self._wal_hook = None
        # Duck-typed metrics registry (see attach_metrics); also
        # survives compaction.
        self._metrics = None
        self._reset_overlay()

    def _reset_overlay(self) -> None:
        base = self._base
        # Interning overlays (append-only; base ids stay authoritative).
        self._new_vertex_names: List[Hashable] = []
        self._new_vertex_ids: Dict[Hashable, int] = {}
        self._new_label_names: List[str] = []
        self._new_label_ids: Dict[str, int] = {}
        # Overlay edges occupy ids >= base.edge_count, in apply order.
        self._o_src: List[int] = []
        self._o_tgt: List[int] = []
        self._o_labels: List[Tuple[int, ...]] = []
        self._o_costs: List[int] = []
        self._o_any_cost = False
        self._o_tgt_idx: List[int] = []
        # Tombstones and in-place label overrides (base or overlay ids).
        self._removed: Set[int] = set()
        self._label_override: Dict[int, Tuple[int, ...]] = {}
        # Per-vertex overlay adjacency, in apply order (incl. tombstoned
        # overlay edges — In positions must never shift).
        self._o_out: Dict[int, List[int]] = {}
        self._o_in: Dict[int, List[int]] = {}
        # Per-(label, vertex) delta buckets: live edges that carry the
        # label *now* but are absent from the base CSR bucket — overlay
        # edges plus base edges whose override added the label.
        self._d_out: Dict[Tuple[int, int], List[int]] = {}
        self._d_in: Dict[Tuple[int, int], List[int]] = {}
        self._view: Optional[_View] = None

    # -- global counts ----------------------------------------------------

    @property
    def base(self) -> Graph:
        """The current immutable base (replaced by :meth:`compact`)."""
        return self._base

    @property
    def epoch(self) -> int:
        """Number of mutation batches applied (compaction included)."""
        return self._epoch

    @property
    def compactions(self) -> int:
        """Number of :meth:`compact` runs over this graph's lifetime."""
        return self._compactions

    @property
    def vertex_count(self) -> int:
        """|V| (base + overlay)."""
        return self._base.vertex_count + len(self._new_vertex_names)

    @property
    def edge_count(self) -> int:
        """Size of the edge-*id* space, tombstones included.

        Edge ids are append-only between compactions, so this is
        ``base.edge_count + overlay edges``; use
        :attr:`live_edge_count` for the number of traversable edges.
        """
        return self._base.edge_count + len(self._o_src)

    @property
    def live_edge_count(self) -> int:
        """Number of non-tombstoned edges."""
        return self.edge_count - len(self._removed)

    @property
    def label_count(self) -> int:
        """|Σ| (base + overlay; labels are never removed)."""
        return self._base.label_count + len(self._new_label_names)

    def size(self) -> int:
        """The paper's ``|D|`` over the *live* edge set."""
        return (
            self.vertex_count
            + self.live_edge_count
            + sum(len(self.labels(e)) for e in self.live_edges())
        )

    @property
    def total_label_occurrences(self) -> int:
        """``Σ_e |Lbl(e)|`` over live edges."""
        return sum(len(self.labels(e)) for e in self.live_edges())

    @property
    def delta_ratio(self) -> float:
        """Overlay weight relative to the base: the compaction signal.

        Counts overlay edges, tombstones and label overrides against
        ``max(1, base.edge_count)``.  :meth:`repro.api.Database.mutate`
        compacts when this crosses :attr:`compact_threshold`.
        """
        weight = (
            len(self._o_src) + len(self._removed) + len(self._label_override)
        )
        return weight / max(1, self._base.edge_count)

    # -- vertices -----------------------------------------------------------

    def vertices(self) -> range:
        """All vertex ids."""
        return range(self.vertex_count)

    def vertex_id(self, name: Hashable) -> int:
        """Translate a vertex name to its internal id."""
        vid = self._base._vertex_ids.get(name)
        if vid is None:
            vid = self._new_vertex_ids.get(name)
        if vid is None:
            raise UnknownVertexError(name)
        return vid

    def vertex_name(self, v: int) -> Hashable:
        """Translate an internal vertex id to its name."""
        base_n = self._base.vertex_count
        if 0 <= v < base_n:
            return self._base.vertex_name(v)
        if base_n <= v < self.vertex_count:
            return self._new_vertex_names[v - base_n]
        raise UnknownVertexError(v)

    def has_vertex(self, name: Hashable) -> bool:
        """True when a vertex called ``name`` exists."""
        return (
            name in self._base._vertex_ids or name in self._new_vertex_ids
        )

    def resolve_vertex(self, vertex: Hashable) -> int:
        """Name-or-id resolution, same semantics as :class:`Graph`."""
        if self.has_vertex(vertex):
            return self.vertex_id(vertex)
        if isinstance(vertex, int) and 0 <= vertex < self.vertex_count:
            return vertex
        raise UnknownVertexError(vertex)

    # -- labels ---------------------------------------------------------------

    def label_id(self, name: str) -> int:
        """Translate a label name to its internal id."""
        lid = self._base._label_ids.get(name)
        if lid is None:
            lid = self._new_label_ids.get(name)
        if lid is None:
            raise UnknownLabelError(name)
        return lid

    def label_name(self, a: int) -> str:
        """Translate an internal label id to its name."""
        base_k = self._base.label_count
        if 0 <= a < base_k:
            return self._base.label_name(a)
        if base_k <= a < self.label_count:
            return self._new_label_names[a - base_k]
        raise UnknownLabelError(a)

    def has_label(self, name: str) -> bool:
        """True when ``name`` is in the label universe (never shrinks)."""
        return name in self._base._label_ids or name in self._new_label_ids

    @property
    def alphabet(self) -> Tuple[str, ...]:
        """All label names, indexed by label id."""
        return self._base.alphabet + tuple(self._new_label_names)

    # -- edges -----------------------------------------------------------------

    def edges(self) -> range:
        """All edge *ids*, tombstones included (see :meth:`live_edges`)."""
        return range(self.edge_count)

    def live_edges(self) -> Iterator[int]:
        """Edge ids that are currently traversable."""
        removed = self._removed
        if not removed:
            yield from range(self.edge_count)
            return
        for e in range(self.edge_count):
            if e not in removed:
                yield e

    def is_live(self, e: int) -> bool:
        """True when ``e`` exists and is not tombstoned."""
        return 0 <= e < self.edge_count and e not in self._removed

    def _check_edge(self, e: int) -> None:
        if not 0 <= e < self.edge_count:
            raise UnknownEdgeError(e)

    def src(self, e: int) -> int:
        """``Src(e)`` (answers for tombstoned ids too — slots persist)."""
        self._check_edge(e)
        base_m = self._base.edge_count
        return (
            self._base._src[e] if e < base_m else self._o_src[e - base_m]
        )

    def tgt(self, e: int) -> int:
        """``Tgt(e)``."""
        self._check_edge(e)
        base_m = self._base.edge_count
        return (
            self._base._tgt[e] if e < base_m else self._o_tgt[e - base_m]
        )

    def labels(self, e: int) -> Tuple[int, ...]:
        """``Lbl(e)`` as sorted label ids (overrides applied)."""
        self._check_edge(e)
        override = self._label_override.get(e)
        if override is not None:
            return override
        base_m = self._base.edge_count
        return (
            self._base._labels[e]
            if e < base_m
            else self._o_labels[e - base_m]
        )

    def label_names_of(self, e: int) -> Tuple[str, ...]:
        """``Lbl(e)`` as label names."""
        return tuple(self.label_name(a) for a in self.labels(e))

    def tgt_idx(self, e: int) -> int:
        """``TgtIdx(e)`` — stable for the lifetime of the overlay."""
        self._check_edge(e)
        base_m = self._base.edge_count
        return (
            self._base._tgt_idx[e]
            if e < base_m
            else self._o_tgt_idx[e - base_m]
        )

    def cost(self, e: int) -> int:
        """Cost of edge ``e`` (1 when no cost was ever provided)."""
        self._check_edge(e)
        base_m = self._base.edge_count
        return (
            self._base.cost(e) if e < base_m else self._o_costs[e - base_m]
        )

    @property
    def has_costs(self) -> bool:
        """True when the base or any overlay edge carries a cost."""
        return self._base.has_costs or self._o_any_cost

    # -- merged point reads -----------------------------------------------------

    def out_edges(self, v: int) -> Tuple[int, ...]:
        """``Out(v)`` — live edges leaving ``v``, ascending edge id."""
        if not 0 <= v < self.vertex_count:
            raise UnknownVertexError(v)
        removed = self._removed
        base: Sequence[int] = (
            self._base._out[v] if v < self._base.vertex_count else ()
        )
        overlay = self._o_out.get(v, ())
        if not removed:
            return tuple(base) + tuple(overlay)
        return tuple(e for e in base if e not in removed) + tuple(
            e for e in overlay if e not in removed
        )

    def in_edges(self, v: int) -> Tuple[int, ...]:
        """``In(v)`` with position = ``TgtIdx`` — tombstones keep slots.

        Unlike :meth:`out_edges`, removed edges stay *in place*: the
        positional ``TgtIdx`` contract (and with it every cached
        annotation's ``B``-cell addressing) must survive mutations.
        Callers that want live in-edges only should filter with
        :meth:`is_live`.
        """
        if not 0 <= v < self.vertex_count:
            raise UnknownVertexError(v)
        base: Sequence[int] = (
            self._base._in[v] if v < self._base.vertex_count else ()
        )
        return tuple(base) + tuple(self._o_in.get(v, ()))

    def out_degree(self, v: int) -> int:
        """``OutDeg(v)`` over live edges."""
        return len(self.out_edges(v))

    def in_degree(self, v: int) -> int:
        """Size of the ``In(v)`` slot range (tombstone slots included)."""
        base_deg = (
            self._base.in_degree(v)
            if v < self._base.vertex_count
            else 0
        )
        if not 0 <= v < self.vertex_count:
            raise UnknownVertexError(v)
        return base_deg + len(self._o_in.get(v, ()))

    def max_in_degree(self) -> int:
        """Largest ``In`` slot range (diagnostic, as on :class:`Graph`)."""
        return max(
            (self.in_degree(v) for v in self.vertices()), default=0
        )

    def _bucket_live(self, e: int, a: int, base_csr: bool) -> bool:
        """Does edge ``e`` still belong to base CSR bucket ``a``?"""
        if e in self._removed:
            return False
        if base_csr:
            override = self._label_override.get(e)
            if override is not None and a not in override:
                return False
        return True

    def out_by_label(self, v: int, a: int) -> Tuple[int, ...]:
        """``Out_a(v)`` — merged iteration, no materialization."""
        return self._by_label(v, a, out=True)

    def in_by_label(self, v: int, a: int) -> Tuple[int, ...]:
        """``In_a(v)`` — merged iteration, no materialization."""
        return self._by_label(v, a, out=False)

    def _by_label(self, v: int, a: int, out: bool) -> Tuple[int, ...]:
        if not 0 <= v < self.vertex_count:
            raise UnknownVertexError(v)
        if not 0 <= a < self.label_count:
            raise UnknownLabelError(a)
        base = self._base
        merged: List[int] = []
        if v < base.vertex_count and a < base.label_count:
            indptr, payload = base.out_csr if out else base.in_csr
            b = a * base.vertex_count + v
            for j in range(indptr[b], indptr[b + 1]):
                e = payload[j]
                if self._bucket_live(e, a, base_csr=True):
                    merged.append(e)
        delta = (self._d_out if out else self._d_in).get((a, v))
        if delta:
            extra = [e for e in delta if e not in self._removed]
            if merged and extra and extra[0] < merged[-1]:
                # Overridden-in base edges can interleave with base ids.
                merged = sorted(merged + extra)
            else:
                merged.extend(extra)
        return tuple(merged)

    def out_labels(self, v: int) -> Tuple[int, ...]:
        """Distinct label ids on live ``Out(v)``, ascending."""
        return tuple(
            sorted({a for e in self.out_edges(v) for a in self.labels(e)})
        )

    def in_labels(self, v: int) -> Tuple[int, ...]:
        """Distinct label ids on live ``In(v)``, ascending."""
        return tuple(
            sorted(
                {
                    a
                    for e in self.in_edges(v)
                    if e not in self._removed
                    for a in self.labels(e)
                }
            )
        )

    def parallel_edges(self, u: int, v: int) -> List[int]:
        """All live edge ids from ``u`` to ``v``."""
        return [e for e in self.out_edges(u) if self.tgt(e) == v]

    # -- epoch-lazy flat views (the hot-loop contract) -------------------------

    def warm_indexes(self) -> "LiveGraph":
        """Force-build this epoch's flat views now (idempotent)."""
        self._materialized()
        return self

    def _materialized(self) -> _View:
        view = self._view
        if view is None:
            with self._lock:
                view = self._view
                if view is None:
                    view = self._build_view()
                    self._view = view
        return view

    def _build_view(self) -> _View:
        base = self._base
        n = self.vertex_count
        base_n = base.vertex_count
        base_m = base.edge_count
        view = _View()

        view.src_array = base._src + array("q", self._o_src)
        view.tgt_array = base._tgt + array("q", self._o_tgt)
        if self._label_override:
            labels = list(base._labels) + self._o_labels
            for e, ls in self._label_override.items():
                labels[e] = ls
            view.label_array = tuple(labels)
        else:
            view.label_array = base._labels + tuple(self._o_labels)
        if self.has_costs:
            view.cost_array = array("q", base.cost_array) + array(
                "q", self._o_costs
            )
        else:
            view.cost_array = array("q", [1]) * self.edge_count

        removed = self._removed
        out_lists: List[Tuple[int, ...]] = []
        in_lists: List[Tuple[int, ...]] = []
        for v in range(n):
            base_out: Sequence[int] = base._out[v] if v < base_n else ()
            base_in: Sequence[int] = base._in[v] if v < base_n else ()
            if removed:
                base_out = [e for e in base_out if e not in removed]
                o_out = [
                    e for e in self._o_out.get(v, ()) if e not in removed
                ]
            else:
                o_out = self._o_out.get(v, [])
            out_lists.append(tuple(base_out) + tuple(o_out))
            # In-lists keep tombstones in place: position = TgtIdx.
            in_lists.append(tuple(base_in) + tuple(self._o_in.get(v, ())))
        view.out_array = tuple(out_lists)
        view.in_array = tuple(in_lists)
        view.tgt_idx_array = base._tgt_idx + array("q", self._o_tgt_idx)

        view.out_csr = self._csr_from_live(view, endpoint_src=True)
        view.in_csr = self._csr_from_live(view, endpoint_src=False)
        view.out_label_tuples = self._label_tuples_from(view.out_csr)
        view.in_label_tuples = self._label_tuples_from(view.in_csr)

        # Defensive self-check of the overlay bookkeeping: every live
        # edge must sit at its recorded TgtIdx slot (cheap: O(overlay)).
        for e in range(base_m, self.edge_count):
            ti = view.tgt_idx_array[e]
            assert view.in_array[view.tgt_array[e]][ti] == e
        return view

    def _csr_from_live(self, view: _View, endpoint_src: bool) -> CsrIndex:
        """Counting-sort the live (edge, label) incidences, as the base does."""
        n = self.vertex_count
        n_buckets = self.label_count * n
        endpoint = view.src_array if endpoint_src else view.tgt_array
        label_arr = view.label_array
        removed = self._removed
        counts = [0] * (n_buckets + 1)
        for e in self.live_edges():
            v = endpoint[e]
            for a in label_arr[e]:
                counts[a * n + v + 1] += 1
        for b in range(1, n_buckets + 1):
            counts[b] += counts[b - 1]
        indptr = array("q", counts)
        payload = array("q", bytes(8 * counts[n_buckets]))
        cursor = counts[:-1]
        if removed:
            edge_iter: Iterator[int] = (
                e for e in range(self.edge_count) if e not in removed
            )
        else:
            edge_iter = iter(range(self.edge_count))
        for e in edge_iter:
            v = endpoint[e]
            for a in label_arr[e]:
                b = a * n + v
                payload[cursor[b]] = e
                cursor[b] += 1
        return indptr, payload

    def _label_tuples_from(
        self, csr: CsrIndex
    ) -> Tuple[Tuple[int, ...], ...]:
        n = self.vertex_count
        indptr, _ = csr
        present: List[List[int]] = [[] for _ in range(n)]
        for a in range(self.label_count):
            base_b = a * n
            for v in range(n):
                if indptr[base_b + v] < indptr[base_b + v + 1]:
                    present[v].append(a)
        return tuple(tuple(ls) for ls in present)

    @property
    def out_csr(self) -> CsrIndex:
        """This epoch's live out-CSR (hot path; see :class:`Graph`)."""
        return self._materialized().out_csr

    @property
    def in_csr(self) -> CsrIndex:
        """This epoch's live in-CSR (hot path)."""
        return self._materialized().in_csr

    @property
    def out_labels_array(self) -> Tuple[Tuple[int, ...], ...]:
        """Vertex-id-indexed distinct out-label tuples (hot path)."""
        return self._materialized().out_label_tuples

    @property
    def in_labels_array(self) -> Tuple[Tuple[int, ...], ...]:
        """Vertex-id-indexed distinct in-label tuples (hot path)."""
        return self._materialized().in_label_tuples

    @property
    def src_array(self) -> Sequence[int]:
        """Edge-id-indexed sources (tombstone slots included)."""
        return self._materialized().src_array

    @property
    def tgt_array(self) -> Sequence[int]:
        """Edge-id-indexed targets (tombstone slots included)."""
        return self._materialized().tgt_array

    @property
    def label_array(self) -> Tuple[Tuple[int, ...], ...]:
        """Edge-id-indexed label tuples, overrides applied."""
        return self._materialized().label_array

    @property
    def out_array(self) -> Tuple[Tuple[int, ...], ...]:
        """Vertex-id-indexed live Out lists."""
        return self._materialized().out_array

    @property
    def in_array(self) -> Tuple[Tuple[int, ...], ...]:
        """Vertex-id-indexed In lists; position = TgtIdx (slots keep)."""
        return self._materialized().in_array

    @property
    def tgt_idx_array(self) -> Sequence[int]:
        """Edge-id-indexed TgtIdx values."""
        return self._materialized().tgt_idx_array

    @property
    def cost_array(self) -> Sequence[int]:
        """Edge-id-indexed costs (unit costs when none were given)."""
        return self._materialized().cost_array

    # -- mutation -----------------------------------------------------------------

    def add_vertex(self, name: Hashable) -> int:
        """Apply a one-op :class:`AddVertex` batch; returns the id."""
        self.apply([AddVertex(name)])
        return self.vertex_id(name)

    def add_edge(
        self,
        src: Hashable,
        tgt: Hashable,
        labels: Sequence[str],
        cost: Optional[int] = None,
    ) -> int:
        """Apply a one-op :class:`AddEdge` batch; returns the edge id."""
        # The id comes from the batch receipt (assigned under the
        # apply lock) — reading edge_count afterwards could hand back
        # a concurrent writer's edge.
        return self.apply(
            [AddEdge(src, tgt, tuple(labels), cost)]
        ).added_edges[0]

    def remove_edge(self, e: int) -> MutationBatch:
        """Apply a one-op :class:`RemoveEdge` batch."""
        return self.apply([RemoveEdge(e)])

    def set_edge_labels(
        self, e: int, labels: Sequence[str]
    ) -> MutationBatch:
        """Apply a one-op :class:`SetEdgeLabels` batch."""
        return self.apply([SetEdgeLabels(e, tuple(labels))])

    def subscribe(
        self, fn: Subscriber, *, front: bool = False
    ) -> Callable[[], None]:
        """Register a change-feed callback; returns an unsubscriber.

        ``fn`` is called synchronously with the
        :class:`~repro.live.delta.MutationBatch` receipt after every
        applied batch, and with a ``compaction=True`` receipt after
        every :meth:`compact` (ids renumbered — rebuild id-addressed
        state); delivery is in subscription order.  Standing queries
        intersect a data receipt's ``touched_labels`` with their own
        footprint and skip refreshes for unrelated writes — see
        :class:`~repro.live.standing.StandingQuery`.

        ``front=True`` prepends instead of appending — the hook for
        *infrastructure* subscribers (the database's cache-eviction
        pass) that must observe the batch before user-level ones, even
        when they re-subscribe later (e.g. after a compaction
        re-registration).
        """
        with self._lock:
            if front:
                self._subscribers.insert(0, fn)
            else:
                self._subscribers.append(fn)

        def unsubscribe() -> None:
            with self._lock:
                try:
                    self._subscribers.remove(fn)
                except ValueError:
                    pass

        return unsubscribe

    def attach_wal(self, hook) -> None:
        """Attach a durability hook (write-ahead logging).

        ``hook`` is duck-typed — any object with ``log_batch(ops)``
        and ``log_compaction(new_graph)`` (in practice a
        :class:`repro.wal.WalWriter`; this module never imports the
        durability layer).  Once attached:

        * :meth:`apply` calls ``hook.log_batch(ops)`` inside the apply
          lock, *after* validation and *before* any state change — the
          batch is logged exactly when it is about to commit, LSN
          order equals apply order, and a hook failure aborts the
          batch with the graph untouched;
        * :meth:`compact` calls ``hook.log_compaction(new_graph)``
          with the already-merged state before installing it, so a
          replayer compacts at the same point and later id-addressed
          ops resolve to the same edges.

        Only one hook at a time; attaching a second replaces the
        first (callers owning the old hook close it themselves).
        """
        with self._lock:
            self._wal_hook = hook

    def detach_wal(self) -> None:
        """Remove the durability hook (no-op when none is attached)."""
        with self._lock:
            self._wal_hook = None

    @property
    def wal_hook(self):
        """The attached durability hook, or ``None``."""
        return self._wal_hook

    def attach_metrics(self, registry) -> None:
        """Attach a :class:`repro.obs.MetricsRegistry` (duck-typed,
        like :meth:`attach_wal` — this module never imports the
        observability layer).  :meth:`apply` then maintains the
        ``live.overlay_edges``/``live.tombstones`` gauges and mutation
        counters, and :meth:`compact` records its duration.  One
        registry at a time; attaching again (the database's compaction
        re-registration path) just re-resolves the instruments.
        """
        with self._lock:
            self._m_overlay_edges = registry.gauge("live.overlay_edges")
            self._m_tombstones = registry.gauge("live.tombstones")
            self._m_batches = registry.counter("live.mutation_batches")
            self._m_ops = registry.counter("live.mutation_ops")
            self._m_compactions = registry.counter("live.compactions")
            self._m_compact_s = registry.histogram("live.compact_seconds")
            self._metrics = registry

    def detach_metrics(self) -> None:
        """Stop exporting metrics (no-op when none attached)."""
        with self._lock:
            self._metrics = None

    @staticmethod
    def _check_vertex_name(name: Hashable) -> None:
        # JSON payloads can smuggle lists/dicts into name fields; an
        # unhashable name would only explode inside _intern_vertex,
        # after earlier ops committed — reject it up front instead.
        try:
            hash(name)
        except TypeError:
            raise GraphError(
                f"vertex names must be hashable, got {name!r}"
            ) from None

    def _check_ops(self, ops: Sequence[Delta]) -> None:
        """Pre-validate a batch so apply never half-commits."""
        pending_removed: Set[int] = set()
        pending_edges = 0
        for op in ops:
            if isinstance(op, AddVertex):
                self._check_vertex_name(op.name)
                continue
            if isinstance(op, AddEdge):
                self._check_vertex_name(op.src)
                self._check_vertex_name(op.tgt)
                if not op.labels:
                    raise GraphError("an edge must carry at least one label")
                for name in op.labels:
                    if not isinstance(name, str) or not name:
                        raise GraphError(
                            f"labels must be non-empty strings, got {name!r}"
                        )
                if op.cost is not None:
                    if isinstance(op.cost, bool) or not isinstance(
                        op.cost, int
                    ):
                        raise CostError(
                            f"edge cost must be an int, got {op.cost!r}"
                        )
                    if op.cost <= 0:
                        raise CostError(
                            f"edge cost must be positive, got {op.cost}"
                        )
                pending_edges += 1
                continue
            if isinstance(op, (RemoveEdge, SetEdgeLabels)):
                e = op.edge
                if not isinstance(e, int) or isinstance(e, bool) or not (
                    0 <= e < self.edge_count + pending_edges
                ):
                    raise UnknownEdgeError(e)
                if e in self._removed or e in pending_removed:
                    raise GraphError(
                        f"edge {e} is already removed (tombstoned)"
                    )
                if isinstance(op, RemoveEdge):
                    pending_removed.add(e)
                else:
                    if not op.labels:
                        raise GraphError(
                            "an edge must carry at least one label"
                        )
                    for name in op.labels:
                        if not isinstance(name, str) or not name:
                            raise GraphError(
                                f"labels must be non-empty strings, "
                                f"got {name!r}"
                            )
                continue
            raise GraphError(f"unknown mutation op: {op!r}")

    def _intern_vertex(self, name: Hashable) -> int:
        vid = self._base._vertex_ids.get(name)
        if vid is None:
            vid = self._new_vertex_ids.get(name)
        if vid is None:
            vid = self.vertex_count
            self._new_vertex_ids[name] = vid
            self._new_vertex_names.append(name)
        return vid

    def _intern_label(self, name: str, new_names: Set[str]) -> int:
        lid = self._base._label_ids.get(name)
        if lid is None:
            lid = self._new_label_ids.get(name)
        if lid is None:
            lid = self.label_count
            self._new_label_ids[name] = lid
            self._new_label_names.append(name)
            new_names.add(name)
        return lid

    def apply(self, ops: Sequence[Delta]) -> MutationBatch:
        """Apply one batch atomically; returns the receipt.

        The batch is pre-validated in full before the first op takes
        effect; a :class:`~repro.exceptions.GraphError` (bad edge id,
        empty label set, non-positive cost …) leaves the graph
        untouched.  Subscribers are notified after the commit.
        """
        ops = tuple(ops)
        with self._lock:
            self._check_ops(ops)
            if self._wal_hook is not None:
                # Write-ahead: the batch hits the log after validation
                # but before the first state change; a hook failure
                # (full disk, closed writer, non-wire-safe name) aborts
                # here with the graph untouched.
                self._wal_hook.log_batch(ops)
            touched: Set[str] = set()
            new_labels: Set[str] = set()
            added_vertices: List[int] = []
            added_edges: List[int] = []
            removed_edges: List[int] = []
            relabeled_edges: List[int] = []
            for op in ops:
                if isinstance(op, AddVertex):
                    before = self.vertex_count
                    vid = self._intern_vertex(op.name)
                    if vid >= before:
                        added_vertices.append(vid)
                elif isinstance(op, AddEdge):
                    before = self.vertex_count
                    u = self._intern_vertex(op.src)
                    v = self._intern_vertex(op.tgt)
                    added_vertices.extend(
                        range(before, self.vertex_count)
                    )
                    label_ids = tuple(
                        sorted(
                            {
                                self._intern_label(name, new_labels)
                                for name in op.labels
                            }
                        )
                    )
                    touched.update(op.labels)
                    e = self.edge_count
                    self._o_src.append(u)
                    self._o_tgt.append(v)
                    self._o_labels.append(label_ids)
                    self._o_costs.append(
                        op.cost if op.cost is not None else 1
                    )
                    if op.cost is not None:
                        self._o_any_cost = True
                    self._o_out.setdefault(u, []).append(e)
                    in_list = self._o_in.setdefault(v, [])
                    base_deg = (
                        self._base.in_degree(v)
                        if v < self._base.vertex_count
                        else 0
                    )
                    self._o_tgt_idx.append(base_deg + len(in_list))
                    in_list.append(e)
                    for a in label_ids:
                        insort(self._d_out.setdefault((a, u), []), e)
                        insort(self._d_in.setdefault((a, v), []), e)
                    added_edges.append(e)
                elif isinstance(op, RemoveEdge):
                    e = op.edge
                    touched.update(self.label_names_of(e))
                    self._removed.add(e)
                    removed_edges.append(e)
                else:  # SetEdgeLabels
                    e = op.edge
                    old_ids = self.labels(e)
                    touched.update(self.label_name(a) for a in old_ids)
                    new_ids = tuple(
                        sorted(
                            {
                                self._intern_label(name, new_labels)
                                for name in op.labels
                            }
                        )
                    )
                    touched.update(op.labels)
                    self._relabel(e, old_ids, new_ids)
                    relabeled_edges.append(e)
            self._epoch += 1
            self._view = None
            batch = MutationBatch(
                epoch=self._epoch,
                ops=ops,
                touched_labels=frozenset(touched),
                new_labels=frozenset(new_labels),
                added_vertices=tuple(added_vertices),
                added_edges=tuple(added_edges),
                removed_edges=tuple(removed_edges),
                relabeled_edges=tuple(relabeled_edges),
            )
            if self._metrics is not None:
                self._m_batches.inc()
                self._m_ops.inc(len(ops))
                self._m_overlay_edges.set(len(self._o_src))
                self._m_tombstones.set(len(self._removed))
            subscribers = tuple(self._subscribers)
        for fn in subscribers:
            fn(batch)
        return batch

    def _relabel(
        self, e: int, old_ids: Tuple[int, ...], new_ids: Tuple[int, ...]
    ) -> None:
        """Move ``e`` between delta buckets to match its new label set."""
        base_m = self._base.edge_count
        u, v = self.src(e), self.tgt(e)
        if e < base_m:
            self._label_override[e] = new_ids
            base_ids = self._base._labels[e]
            # Labels the base CSR carries are served (and filtered) from
            # the base bucket; the delta bucket only holds labels *added*
            # relative to the base.
            gained = set(new_ids) - set(base_ids)
            stale = (set(old_ids) - set(base_ids)) - gained
        else:
            self._o_labels[e - base_m] = new_ids
            gained = set(new_ids) - set(old_ids)
            stale = set(old_ids) - set(new_ids)
        for a in stale:
            for bucket in (self._d_out.get((a, u)), self._d_in.get((a, v))):
                if bucket is not None and e in bucket:
                    bucket.remove(e)
        for a in gained:
            out_bucket = self._d_out.setdefault((a, u), [])
            if e not in out_bucket:
                insort(out_bucket, e)
            in_bucket = self._d_in.setdefault((a, v), [])
            if e not in in_bucket:
                insort(in_bucket, e)

    # -- compaction ---------------------------------------------------------------

    def compact(self) -> Graph:
        """Merge the overlay into a fresh immutable base; returns it.

        The live edge set is counting-sort-merged into new CSR-backed
        :class:`Graph` arrays.  Vertex and label interning is carried
        over unchanged (ids stable); **edge ids are renumbered** in
        ascending old-id order as tombstone slots close up.  The
        overlay resets and the epoch counter keeps counting.

        Subscribers are notified with a receipt whose ``compaction``
        flag is set (and no op/label details): every piece of
        id-addressed state must be rebuilt — the database's eviction
        subscriber answers with a full version-bump purge, and
        :class:`~repro.live.standing.StandingQuery` re-runs
        unconditionally (its held rows reference pre-compaction edge
        ids).  Outstanding pagination *cursors* live client-side and
        cannot be notified; they must be discarded.
        """
        t0 = time.perf_counter()
        with self._lock:  # RLock: to_graph re-enters safely.
            new_graph = self.to_graph()
            if self._wal_hook is not None:
                # Logged before the swap: a hook failure leaves the
                # overlay (and every edge id) exactly as it was.
                self._wal_hook.log_compaction(new_graph)
            self._base = new_graph
            self._reset_overlay()
            self._epoch += 1
            self._compactions += 1
            receipt = MutationBatch(
                epoch=self._epoch, ops=(), compaction=True
            )
            if self._metrics is not None:
                self._m_compactions.inc()
                self._m_compact_s.observe(time.perf_counter() - t0)
                self._m_overlay_edges.set(0)
                self._m_tombstones.set(0)
            subscribers = tuple(self._subscribers)
        # Outside the lock, like apply(): subscribers run queries and
        # re-registrations that take this lock (and others) themselves.
        for fn in subscribers:
            fn(receipt)
        return new_graph

    def to_graph(self) -> Graph:
        """A fresh immutable :class:`Graph` equal to the current live
        state, *without* mutating this overlay (unlike :meth:`compact`)."""
        with self._lock:
            live = list(self.live_edges())
            return Graph(
                vertex_names=[
                    self.vertex_name(v) for v in self.vertices()
                ],
                label_names=list(self.alphabet),
                src=[self.src(e) for e in live],
                tgt=[self.tgt(e) for e in live],
                labels=[self.labels(e) for e in live],
                costs=(
                    [self.cost(e) for e in live] if self.has_costs else None
                ),
            )

    # -- convenience ----------------------------------------------------------------

    def edge_str(self, e: int) -> str:
        """Human-readable rendering of one edge."""
        lbls = ",".join(self.label_names_of(e))
        dead = " (removed)" if e in self._removed else ""
        return (
            f"e{e}:{self.vertex_name(self.src(e))}"
            f"-[{lbls}]->{self.vertex_name(self.tgt(e))}{dead}"
        )

    def stats(self) -> Dict[str, float]:
        """Summary counters (live sizes + overlay bookkeeping)."""
        return {
            "vertices": self.vertex_count,
            "edges": self.live_edge_count,
            "labels": self.label_count,
            "label_occurrences": self.total_label_occurrences,
            "size": self.size(),
            "max_in_degree": self.max_in_degree(),
            "epoch": self._epoch,
            "overlay_edges": len(self._o_src),
            "tombstones": len(self._removed),
            "label_overrides": len(self._label_override),
            "delta_ratio": round(self.delta_ratio, 4),
            "compactions": self._compactions,
        }

    def __iter__(self) -> Iterator[int]:
        return iter(self.vertices())

    def __repr__(self) -> str:
        return (
            f"LiveGraph(|V|={self.vertex_count}, "
            f"|E|={self.live_edge_count} live "
            f"(+{len(self._removed)} tombstoned), "
            f"|Σ|={self.label_count}, epoch={self._epoch})"
        )


#: The label footprint of a query automaton: the label *names* its
#: transitions mention plus whether it uses the ANY wildcard (which
#: compiles against the whole alphabet and is therefore touched by
#: every label).  This is what fine-grained invalidation intersects
#: with a batch's ``touched_labels``/``new_labels``.
QueryFootprint = Tuple[FrozenSet[str], bool]


def query_label_footprint(automaton) -> QueryFootprint:
    """``(mentioned label names, uses_any)`` for an NFA.

    ε-transitions carry no label and are ignored; an automaton using
    :data:`~repro.automata.nfa.ANY` is affected by *every* label the
    graph may gain or touch, so it is flagged instead of enumerated.
    """
    from repro.automata.nfa import ANY, EPSILON

    names: Set[str] = set()
    uses_any = False
    for q in automaton.states():
        for label, _targets in automaton.transitions_from(q):
            if label is EPSILON:
                continue
            if label is ANY:
                uses_any = True
            else:
                names.add(label)
    return frozenset(names), uses_any
