"""``repro.live`` — incremental graph mutations over the frozen engine.

The paper's engine (and everything built on it through PR-3) assumes a
frozen database: :class:`~repro.graph.database.Graph` is immutable,
any change means a full :class:`~repro.graph.builder.GraphBuilder`
rebuild, and re-registering bumps a version that evicts *every* cached
plan and saturated annotation.  This subpackage opens the read-write
workload dimension without giving up the cached read path.

Architecture
------------

**Delta-overlay CSR** (:class:`~repro.live.live_graph.LiveGraph`).  A
mutable overlay over an immutable CSR base: ``add_edge`` /
``remove_edge`` / ``add_vertex`` / ``set_edge_labels`` are logged
:mod:`~repro.live.delta` ops applied in atomic batches.  Reads merge
the base and the overlay — point accessors iterate the base CSR
bucket (filtering tombstones and label overrides) plus a per-label
delta adjacency; the flat-array views the product-BFS hot loops
consume (``out_csr``, ``tgt_idx_array`` …) are counting-sorted over
the live edge set lazily, once per mutation *epoch*.  The overlay
honours the full :class:`~repro.graph.database.Graph` accessor
contract, so ``annotate``, ``cheapest_annotate``, the enumerators and
the counting DP run on a ``LiveGraph`` unmodified (a shared contract
test in ``tests/graph/test_accessor_contract.py`` is parametrized over
both classes to keep it that way).

**The no-reindexing invariant.**  Between compactions, vertex ids,
label ids and edge ids are append-only and the ``TgtIdx`` of an
existing edge never changes: tombstoned edges keep their slot inside
``In(v)`` and label edits rewrite the label set in place.  This is
what makes *fine-grained* cache invalidation sound — a cached
saturated annotation addresses predecessor cells positionally by
``TgtIdx``, so an annotation whose automaton cannot fire on any label
a batch touched is still byte-for-byte valid afterwards and is **kept
warm** instead of evicted.  Since the packed-pipeline refactor those
cached annotations *are* flat CSR-packed arrays (``TgtIdx`` and edge
ids baked into the shared trim cells — see
:mod:`repro.datastructures.packed`), which is precisely the
representation the invariant keeps valid: retained entries stay
correct positionally with no per-cell re-validation, and vertices
added after the annotation was built are provably unreachable for it
(:meth:`~repro.core.annotate.Annotation.target_info` answers "no
matching walk" beyond the packed vertex range).  :meth:`repro.api.Database.mutate` evicts
only the entries whose label footprint
(:func:`~repro.live.live_graph.query_label_footprint`) intersects the
batch's ``touched_labels`` (plans: only ``new_labels`` — compilation
drops transitions on labels absent from the alphabet it saw, and
wildcards expand over that alphabet).

**Epoch-based compaction.**  When the overlay's
:attr:`~repro.live.live_graph.LiveGraph.delta_ratio` (overlay edges +
tombstones + label overrides, relative to the base) crosses a
threshold, :meth:`~repro.live.live_graph.LiveGraph.compact`
counting-sort-merges the live edge set into a fresh immutable base.
Edge ids renumber as tombstone slots close up, so compaction is the
one mutation that pairs with a full version bump (all cached
artifacts and outstanding cursors of the graph drop); vertex and
label interning carries over unchanged.

**Change feed** (:meth:`~repro.live.live_graph.LiveGraph.subscribe`).
Every applied batch notifies subscribers with its
:class:`~repro.live.delta.MutationBatch` receipt;
:class:`~repro.live.standing.StandingQuery` uses it to keep one query
current while *skipping* refreshes for batches whose labels are
disjoint from its footprint.

Entry points: ``Database.mutate(ops)`` (the cached serving path), the
JSONL ``{"mutate": [...]}`` request of :mod:`repro.service`, the CLI
``repro mutate`` subcommand, and direct ``LiveGraph`` use for
engine-level code.
"""

from repro.live.delta import (
    AddEdge,
    AddVertex,
    Delta,
    MutationBatch,
    RemoveEdge,
    SetEdgeLabels,
    op_from_dict,
    op_to_dict,
    ops_from_dicts,
)
from repro.live.live_graph import LiveGraph, query_label_footprint
from repro.live.standing import StandingQuery

__all__ = [
    "AddEdge",
    "AddVertex",
    "Delta",
    "LiveGraph",
    "MutationBatch",
    "RemoveEdge",
    "SetEdgeLabels",
    "StandingQuery",
    "op_from_dict",
    "op_to_dict",
    "ops_from_dicts",
    "query_label_footprint",
]
