"""Standing queries over a change feed (:meth:`LiveGraph.subscribe`).

A :class:`StandingQuery` keeps the result of one façade query current
against a mutating :class:`~repro.live.live_graph.LiveGraph` — but
only re-runs when a mutation batch's ``touched_labels`` intersect the
query's own label footprint.  Writes on unrelated labels are counted
and skipped: the standing query's result provably cannot have changed
(its automaton cannot fire on any touched label, so no added/removed
edge is traversable by it), which is the same soundness argument the
annotation cache's fine-grained invalidation rests on.

>>> from repro.api import Database
>>> from repro.graph import GraphBuilder
>>> from repro.live import LiveGraph
>>> b = GraphBuilder()
>>> _ = b.add_edge("a", "b", ["h"])
>>> db = Database(LiveGraph(b.build()))
>>> sq = StandingQuery(db, "h+", "a", "b")
>>> len(sq.rows)
1
>>> _ = db.mutate([{"op": "add_edge", "src": "a", "tgt": "b",
...                 "labels": ["x"]}], compact=False)
>>> sq.skipped          # unrelated label: no re-run
1
>>> _ = db.mutate([{"op": "add_edge", "src": "a", "tgt": "b",
...                 "labels": ["h"]}], compact=False)
>>> sq.refreshes, len(sq.rows)
(2, 2)

(``compact=False`` keeps the toy graph from auto-compacting — a
compaction renumbers edge ids and therefore always refreshes,
regardless of label footprints.)
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, List, Optional

from repro.exceptions import QueryError
from repro.live.delta import MutationBatch
from repro.live.live_graph import LiveGraph, query_label_footprint

#: Called with the standing query itself after every refresh.
ChangeCallback = Callable[["StandingQuery"], None]


class StandingQuery:
    """One pair-shaped façade query kept current over a live graph.

    The query is executed once at construction and re-executed after
    every mutation batch whose labels intersect its footprint; the
    latest rows are available as :attr:`rows`.  ``on_change`` (when
    given) fires after each refresh — the hook a notification layer
    would attach to.  Call :meth:`close` to detach from the feed.
    """

    def __init__(
        self,
        db,
        expression: str,
        source: Hashable,
        target: Hashable,
        *,
        graph_name: Optional[str] = None,
        mode: str = "auto",
        on_change: Optional[ChangeCallback] = None,
    ) -> None:
        handle_graph = db._handle(graph_name).graph
        if not isinstance(handle_graph, LiveGraph):
            raise QueryError(
                "standing queries require a LiveGraph-backed database "
                "entry; register a LiveGraph (or call Database.mutate "
                "once to promote the graph) first"
            )
        self._db = db
        self._graph_name = graph_name
        self.expression = expression
        self.source = source
        self.target = target
        self.mode = mode
        self.on_change = on_change
        #: Refresh runs (the initial run included).
        self.refreshes = 0
        #: Batches ignored because their labels were unrelated.
        self.skipped = 0
        self.rows: List[Any] = []
        self.lam: Optional[int] = None
        from repro.query.rpq import RPQ

        names, uses_any = query_label_footprint(RPQ(expression).automaton)
        self._footprint = names
        self._uses_any = uses_any
        self._refresh()
        self._unsubscribe = handle_graph.subscribe(self._on_batch)

    @property
    def footprint(self):
        """The label names this query can fire on (``None``-proof)."""
        return self._footprint

    def _query(self):
        q = self._db.query(self.expression).mode(self.mode)
        if self._graph_name is not None:
            q = q.on(self._graph_name)
        return q.from_(self.source).to(self.target)

    def _refresh(self) -> None:
        result = self._query().run()
        self.rows = result.all()
        self.lam = result.lam
        self.refreshes += 1
        if self.on_change is not None:
            self.on_change(self)

    def _on_batch(self, batch: MutationBatch) -> None:
        # Compaction renumbers edge ids: the held rows reference the
        # old numbering, so refresh regardless of label footprint.
        if not batch.compaction:
            if not self._uses_any and not (
                batch.touched_labels & self._footprint
            ):
                self.skipped += 1
                return
        self._refresh()

    def close(self) -> None:
        """Detach from the change feed (idempotent)."""
        self._unsubscribe()

    def __repr__(self) -> str:
        return (
            f"StandingQuery({self.expression!r}, {self.source!r} -> "
            f"{self.target!r}, refreshes={self.refreshes}, "
            f"skipped={self.skipped})"
        )
