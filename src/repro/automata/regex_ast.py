"""Abstract syntax trees for regular path query expressions.

The surface syntax (see :mod:`repro.automata.regex_parser`) supports
the usual operators plus RPQ conveniences; the AST mirrors it
one-to-one.  Constructions that only understand the *core* operators
(label / ε / wildcard / concatenation / union / star) first call
:func:`desugar`, which expands ``+``, ``?`` and ``{m,n}``.

Nodes are immutable value objects: they compare and hash structurally
and render back to parseable syntax via ``str()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional as Opt
from typing import Tuple

from repro.exceptions import RegexSyntaxError


class RegexNode:
    """Base class of all AST nodes."""

    #: Binding strength, used to place parentheses when pretty-printing.
    _precedence = 3

    def _wrap(self, child: "RegexNode") -> str:
        text = str(child)
        if child._precedence < self._precedence:
            return f"({text})"
        return text


@dataclass(frozen=True)
class Label(RegexNode):
    """A single label atom, e.g. ``h`` or ``'high value'``."""

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise RegexSyntaxError("empty label", 0)

    def __str__(self) -> str:
        if self.name.isidentifier() or (
            self.name.replace("-", "_").isidentifier()
        ):
            return self.name
        escaped = self.name.replace("\\", "\\\\").replace("'", "\\'")
        return f"'{escaped}'"


@dataclass(frozen=True)
class AnyAtom(RegexNode):
    """The wildcard ``.`` — matches any single database label."""

    def __str__(self) -> str:
        return "."


@dataclass(frozen=True)
class EpsilonAtom(RegexNode):
    """The empty word ``ε``."""

    def __str__(self) -> str:
        return "ε"


@dataclass(frozen=True)
class Concat(RegexNode):
    """Concatenation of two or more parts (juxtaposition)."""

    parts: Tuple[RegexNode, ...]
    _precedence = 2

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise RegexSyntaxError("concatenation needs >= 2 parts", 0)

    def __str__(self) -> str:
        return " ".join(self._wrap(p) for p in self.parts)


@dataclass(frozen=True)
class Union(RegexNode):
    """Alternation ``e1 | e2 | ...``."""

    parts: Tuple[RegexNode, ...]
    _precedence = 1

    def __post_init__(self) -> None:
        if len(self.parts) < 2:
            raise RegexSyntaxError("union needs >= 2 parts", 0)

    def __str__(self) -> str:
        return " | ".join(self._wrap(p) for p in self.parts)


@dataclass(frozen=True)
class Star(RegexNode):
    """Kleene star ``e*``."""

    child: RegexNode

    def __str__(self) -> str:
        return f"{self._wrap(self.child)}*"


@dataclass(frozen=True)
class Plus(RegexNode):
    """One-or-more ``e+`` (sugar for ``e e*``)."""

    child: RegexNode

    def __str__(self) -> str:
        return f"{self._wrap(self.child)}+"


@dataclass(frozen=True)
class Optional(RegexNode):
    """Zero-or-one ``e?`` (sugar for ``ε | e``)."""

    child: RegexNode

    def __str__(self) -> str:
        return f"{self._wrap(self.child)}?"


@dataclass(frozen=True)
class Repeat(RegexNode):
    """Bounded repetition ``e{lo,hi}``; ``hi=None`` means unbounded.

    ``e{3}`` abbreviates ``e{3,3}``; ``e{2,}`` abbreviates unbounded.
    Expansion multiplies the expression size — the classic trade-off,
    documented so users are not surprised by large automata.
    """

    child: RegexNode
    lo: int
    hi: Opt[int] = field(default=None)

    def __post_init__(self) -> None:
        if self.lo < 0:
            raise RegexSyntaxError("repetition lower bound must be >= 0", 0)
        if self.hi is not None and self.hi < self.lo:
            raise RegexSyntaxError("repetition bounds out of order", 0)

    def __str__(self) -> str:
        body = self._wrap(self.child)
        if self.hi is None:
            return f"{body}{{{self.lo},}}"
        if self.hi == self.lo:
            return f"{body}{{{self.lo}}}"
        return f"{body}{{{self.lo},{self.hi}}}"


def _concat(parts: Tuple[RegexNode, ...]) -> RegexNode:
    if not parts:
        return EpsilonAtom()
    if len(parts) == 1:
        return parts[0]
    return Concat(parts)


def desugar(node: RegexNode) -> RegexNode:
    """Expand ``+``, ``?`` and ``{m,n}`` into core operators.

    The result uses only :class:`Label`, :class:`AnyAtom`,
    :class:`EpsilonAtom`, :class:`Concat`, :class:`Union` and
    :class:`Star`.
    """
    if isinstance(node, (Label, AnyAtom, EpsilonAtom)):
        return node
    if isinstance(node, Concat):
        return _concat(tuple(desugar(p) for p in node.parts))
    if isinstance(node, Union):
        return Union(tuple(desugar(p) for p in node.parts))
    if isinstance(node, Star):
        return Star(desugar(node.child))
    if isinstance(node, Plus):
        child = desugar(node.child)
        return Concat((child, Star(child)))
    if isinstance(node, Optional):
        return Union((EpsilonAtom(), desugar(node.child)))
    if isinstance(node, Repeat):
        child = desugar(node.child)
        mandatory: Tuple[RegexNode, ...] = tuple([child] * node.lo)
        if node.hi is None:
            return _concat(mandatory + (Star(child),))
        optional: Tuple[RegexNode, ...] = tuple(
            Union((EpsilonAtom(), child)) for _ in range(node.hi - node.lo)
        )
        return _concat(mandatory + optional)
    raise TypeError(f"unknown regex node: {node!r}")


def ast_size(node: RegexNode) -> int:
    """|R| — number of atoms and operators, used in complexity bounds."""
    if isinstance(node, (Label, AnyAtom, EpsilonAtom)):
        return 1
    if isinstance(node, (Concat, Union)):
        return 1 + sum(ast_size(p) for p in node.parts)
    if isinstance(node, (Star, Plus, Optional)):
        return 1 + ast_size(node.child)
    if isinstance(node, Repeat):
        return 1 + ast_size(node.child)
    raise TypeError(f"unknown regex node: {node!r}")
