"""Closure of NFAs under the regular operations.

Query rewriting over RPQs needs to *combine* automata: union two user
queries, concatenate a prefix pattern with a suffix pattern, subtract
an exclusion list.  These combinators complement the regex→NFA
constructions (which build automata from syntax) by operating directly
on automata — and they compose with everything else in
:mod:`repro.automata`: the results can be minimized, compared with
:func:`~repro.automata.equivalence.equivalent`, or handed straight to
the shortest-walk engine.

Constructions are the standard ones: disjoint union with merged
initial/final sets, ε-gluing for concatenation and star (the engine
handles ε at no extra cost — paper, Section 5.1), subset construction
plus completion for complement.  ``intersect`` re-exports the
synchronous product of :mod:`repro.automata.ops`.

Complement and difference are relative to a concrete alphabet (the
operand's own by default): automata using the :data:`ANY` wildcard are
rejected — "everything except anything" needs a universe.
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.automata.determinize import determinize
from repro.automata.nfa import EPSILON, NFA
from repro.automata.ops import product, remove_epsilon
from repro.exceptions import AutomatonError


def _copy_into(target: NFA, source: NFA, offset: int) -> None:
    """Copy ``source``'s transitions into ``target`` at ``offset``."""
    for q, label, p in source.transitions():
        target.add_transition(q + offset, label, p + offset)


def union_nfa(left: NFA, right: NFA) -> NFA:
    """An NFA for ``L(left) ∪ L(right)`` (disjoint state union).

    No ε-transitions are introduced: |Q| = |Q₁|+|Q₂|, |Δ| = |Δ₁|+|Δ₂|.
    """
    result = NFA(left.n_states + right.n_states)
    _copy_into(result, left, 0)
    _copy_into(result, right, left.n_states)
    result.set_initial(*left.initial)
    result.set_initial(*(q + left.n_states for q in right.initial))
    result.set_final(*left.final)
    result.set_final(*(q + left.n_states for q in right.final))
    return result


def concat_nfa(left: NFA, right: NFA) -> NFA:
    """An NFA for ``L(left) · L(right)`` (ε-glue finals to initials)."""
    result = NFA(left.n_states + right.n_states)
    _copy_into(result, left, 0)
    _copy_into(result, right, left.n_states)
    for f in left.final:
        for i in right.initial:
            result.add_transition(f, EPSILON, i + left.n_states)
    result.set_initial(*left.initial)
    result.set_final(*(q + left.n_states for q in right.final))
    return result


def star_nfa(nfa: NFA) -> NFA:
    """An NFA for ``L(nfa)*`` (fresh ε-hub accepting ε and looping)."""
    result = NFA(nfa.n_states + 1)
    _copy_into(result, nfa, 0)
    hub = nfa.n_states
    for i in nfa.initial:
        result.add_transition(hub, EPSILON, i)
    for f in nfa.final:
        result.add_transition(f, EPSILON, hub)
    result.set_initial(hub)
    result.set_final(hub)
    return result


def plus_nfa(nfa: NFA) -> NFA:
    """An NFA for ``L(nfa)+`` = ``L(nfa) · L(nfa)*``."""
    return concat_nfa(nfa, star_nfa(nfa))


def option_nfa(nfa: NFA) -> NFA:
    """An NFA for ``L(nfa) ∪ {ε}`` (fresh accepting ε-entry)."""
    result = NFA(nfa.n_states + 1)
    _copy_into(result, nfa, 0)
    hub = nfa.n_states
    for i in nfa.initial:
        result.add_transition(hub, EPSILON, i)
    result.set_initial(hub)
    result.set_final(hub, *nfa.final)
    return result


def intersect_nfa(left: NFA, right: NFA) -> NFA:
    """An NFA for ``L(left) ∩ L(right)`` (synchronous product).

    ε-transitions are eliminated first; wildcards synchronize as in
    :func:`repro.automata.ops.product`.
    """
    if left.has_epsilon:
        left = remove_epsilon(left)
    if right.has_epsilon:
        right = remove_epsilon(right)
    return product(left, right)


def complement_nfa(
    nfa: NFA,
    alphabet: Optional[Iterable[str]] = None,
    max_states: int = 100_000,
) -> NFA:
    """A DFA for ``Σ* \\ L(nfa)``, with ``Σ`` = ``alphabet``.

    ``alphabet`` defaults to the automaton's own; it must cover it.
    The result is a *complete* DFA over ``Σ`` with inverted finals.
    Wildcard automata are rejected (complementing "matches any label"
    requires fixing a universe — pass an explicit alphabet after
    expanding the wildcard).
    """
    if nfa.uses_wildcard:
        raise AutomatonError(
            "cannot complement an automaton with the ANY wildcard; "
            "expand it over a concrete alphabet first"
        )
    sigma: Set[str] = set(alphabet) if alphabet is not None else nfa.alphabet()
    missing = nfa.alphabet() - sigma
    if missing:
        raise AutomatonError(
            f"complement alphabet must cover the automaton's; "
            f"missing {sorted(missing)}"
        )
    dfa = determinize(nfa, max_states=max_states)
    if not dfa.initial:  # determinize of an initial-less NFA.
        dfa = NFA(1)
        dfa.set_initial(0)

    # Complete over sigma with an explicit sink, then invert finals.
    result = NFA(dfa.n_states + 1)
    sink = dfa.n_states
    for q, label, p in dfa.transitions():
        result.add_transition(q, label, p)
    for q in range(dfa.n_states):
        for a in sigma:
            if not dfa.delta(q, a):
                result.add_transition(q, a, sink)
    for a in sigma:
        result.add_transition(sink, a, sink)
    result.set_initial(*dfa.initial)
    finals = set(dfa.final)
    result.set_final(
        *(q for q in range(dfa.n_states) if q not in finals), sink
    )
    return result


def difference_nfa(
    left: NFA,
    right: NFA,
    alphabet: Optional[Iterable[str]] = None,
    max_states: int = 100_000,
) -> NFA:
    """An NFA for ``L(left) \\ L(right)``.

    ``alphabet`` defaults to the *joint* alphabet, so that words of
    ``left`` using labels ``right`` never mentions are kept.
    """
    if alphabet is None:
        alphabet = left.alphabet() | right.alphabet()
    return intersect_nfa(
        left, complement_nfa(right, alphabet=alphabet, max_states=max_states)
    )
