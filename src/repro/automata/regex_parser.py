"""Parser for regular path query expressions.

Grammar (whitespace separates tokens; juxtaposition = concatenation)::

    expr    := term ('|' term)*
    term    := factor factor*
    factor  := atom postfix*
    postfix := '*' | '+' | '?' | '{' INT (',' INT?)? '}'
    atom    := LABEL | QUOTED | '.' | 'ε' | '(' expr ')'

    LABEL   := [A-Za-z_][A-Za-z0-9_-]*
    QUOTED  := '...'  or  "..."  with backslash escapes
    INT     := [0-9]+

Examples::

    h* s (h | s)*          # the paper's Example 9 query
    knows{2,4} worksAt
    'high value'+ .        # quoted label, then any label

The parser is a hand-written recursive descent with precise error
positions — a query front-end's error messages are user-facing.
"""

from __future__ import annotations

from typing import List, Optional as Opt

from repro.automata.regex_ast import (
    AnyAtom,
    Concat,
    EpsilonAtom,
    Label,
    Optional,
    Plus,
    RegexNode,
    Repeat,
    Star,
    Union,
)
from repro.exceptions import RegexSyntaxError

_PUNCT = {"|", "(", ")", "*", "+", "?", "{", "}", ",", "."}
_EPSILON_TOKENS = {"ε", "<eps>"}


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int) -> None:
        self.kind = kind  # 'label' | 'quoted' | 'int' | punctuation itself
        self.text = text
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.kind}, {self.text!r}, {self.pos})"


def _tokenize(source: str) -> List[_Token]:
    tokens: List[_Token] = []
    i, n = 0, len(source)
    while i < n:
        ch = source[i]
        if ch.isspace():
            i += 1
            continue
        if ch in _PUNCT:
            tokens.append(_Token(ch, ch, i))
            i += 1
            continue
        if ch in "'\"":
            quote, start = ch, i
            i += 1
            chars: List[str] = []
            while i < n and source[i] != quote:
                if source[i] == "\\" and i + 1 < n:
                    chars.append(source[i + 1])
                    i += 2
                else:
                    chars.append(source[i])
                    i += 1
            if i >= n:
                raise RegexSyntaxError("unterminated quoted label", start)
            i += 1  # closing quote
            if not chars:
                raise RegexSyntaxError("empty quoted label", start)
            tokens.append(_Token("quoted", "".join(chars), start))
            continue
        if ch.isdigit():
            start = i
            while i < n and source[i].isdigit():
                i += 1
            tokens.append(_Token("int", source[start:i], start))
            continue
        if ch == "ε":
            tokens.append(_Token("epsilon", ch, i))
            i += 1
            continue
        if source.startswith("<eps>", i):
            tokens.append(_Token("epsilon", "<eps>", i))
            i += 5
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (source[i].isalnum() or source[i] in "_-"):
                i += 1
            tokens.append(_Token("label", source[start:i], start))
            continue
        raise RegexSyntaxError(f"unexpected character {ch!r}", i)
    return tokens


class _Parser:
    def __init__(self, source: str) -> None:
        self._source = source
        self._tokens = _tokenize(source)
        self._index = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self) -> Opt[_Token]:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise RegexSyntaxError("unexpected end of expression", len(self._source))
        self._index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise RegexSyntaxError(
                f"expected {kind!r}, found {token.text!r}", token.pos
            )
        return token

    # -- grammar ---------------------------------------------------------------

    def parse(self) -> RegexNode:
        node = self._expr()
        leftover = self._peek()
        if leftover is not None:
            raise RegexSyntaxError(
                f"unexpected {leftover.text!r}", leftover.pos
            )
        return node

    def _expr(self) -> RegexNode:
        parts = [self._term()]
        while (token := self._peek()) is not None and token.kind == "|":
            self._next()
            parts.append(self._term())
        return parts[0] if len(parts) == 1 else Union(tuple(parts))

    _ATOM_STARTERS = {"label", "quoted", "epsilon", ".", "("}

    def _term(self) -> RegexNode:
        parts = [self._factor()]
        while (token := self._peek()) is not None and (
            token.kind in self._ATOM_STARTERS
        ):
            parts.append(self._factor())
        return parts[0] if len(parts) == 1 else Concat(tuple(parts))

    def _factor(self) -> RegexNode:
        node = self._atom()
        while (token := self._peek()) is not None:
            if token.kind == "*":
                self._next()
                node = Star(node)
            elif token.kind == "+":
                self._next()
                node = Plus(node)
            elif token.kind == "?":
                self._next()
                node = Optional(node)
            elif token.kind == "{":
                node = self._repeat(node)
            else:
                break
        return node

    def _repeat(self, node: RegexNode) -> RegexNode:
        open_token = self._expect("{")
        lo = int(self._expect("int").text)
        hi: Opt[int] = lo
        token = self._next()
        if token.kind == ",":
            nxt = self._next()
            if nxt.kind == "int":
                hi = int(nxt.text)
                self._expect("}")
            elif nxt.kind == "}":
                hi = None
            else:
                raise RegexSyntaxError(
                    f"expected count or '}}', found {nxt.text!r}", nxt.pos
                )
        elif token.kind != "}":
            raise RegexSyntaxError(
                f"expected ',' or '}}', found {token.text!r}", token.pos
            )
        try:
            return Repeat(node, lo, hi)
        except RegexSyntaxError as exc:
            raise RegexSyntaxError(str(exc).split(" (at")[0], open_token.pos)

    def _atom(self) -> RegexNode:
        token = self._next()
        if token.kind in ("label", "quoted"):
            return Label(token.text)
        if token.kind == "epsilon":
            return EpsilonAtom()
        if token.kind == ".":
            return AnyAtom()
        if token.kind == "(":
            node = self._expr()
            self._expect(")")
            return node
        raise RegexSyntaxError(f"unexpected {token.text!r}", token.pos)


def parse_rpq(source: str) -> RegexNode:
    """Parse a regular path query expression into an AST.

    Raises :class:`~repro.exceptions.RegexSyntaxError` with the offending
    position on malformed input.
    """
    if not source or not source.strip():
        raise RegexSyntaxError("empty expression", 0)
    return _Parser(source).parse()
