"""Automata substrate: NFAs, ε-NFAs, and regex→NFA constructions.

The paper's queries (Definition 6) are nondeterministic finite automata
over the database's label alphabet; Section 5 extends the algorithm to
ε-transitions and to queries given as regular expressions, via the
Thompson construction (Theorem 19) or the Glushkov construction.

Public entry points:

* :class:`~repro.automata.nfa.NFA` and the :data:`EPSILON` /
  :data:`ANY` label sentinels;
* :func:`~repro.automata.regex_parser.parse_rpq` — regular path query
  expressions to ASTs;
* :func:`~repro.automata.thompson.thompson_nfa` and
  :func:`~repro.automata.glushkov.glushkov_nfa`;
* :func:`regex_to_nfa` — one-stop compilation helper;
* :mod:`repro.automata.ops` — ε-elimination, reversal, trimming,
  product, unambiguity testing;
* :func:`~repro.automata.determinize.determinize` — subset
  construction;
* :mod:`repro.automata.minimize` — Hopcroft / Brzozowski minimization
  and canonical language keys;
* :mod:`repro.automata.equivalence` — language equivalence / inclusion
  with shortest counterexamples.
"""

from repro.automata.closure import (
    complement_nfa,
    concat_nfa,
    difference_nfa,
    intersect_nfa,
    option_nfa,
    plus_nfa,
    star_nfa,
    union_nfa,
)
from repro.automata.determinize import determinize, is_deterministic
from repro.automata.equivalence import (
    counterexample,
    equivalent,
    is_subset,
    subset_counterexample,
)
from repro.automata.glushkov import glushkov_nfa
from repro.automata.minimize import (
    language_key,
    minimize,
    minimize_brzozowski,
)
from repro.automata.nfa import ANY, EPSILON, NFA
from repro.automata.ops import (
    is_unambiguous,
    product,
    remove_epsilon,
    reverse,
    trim,
)
from repro.automata.regex_ast import (
    AnyAtom,
    Concat,
    EpsilonAtom,
    Label,
    Optional,
    Plus,
    Repeat,
    Star,
    Union,
    ast_size,
    desugar,
)
from repro.automata.regex_parser import parse_rpq
from repro.automata.thompson import thompson_nfa


def regex_to_nfa(expression, method: str = "thompson") -> NFA:
    """Compile a regular path query to an :class:`NFA`.

    ``expression`` may be a string (parsed with :func:`parse_rpq`) or an
    already-built AST node.  ``method`` selects the construction:

    * ``"thompson"`` — ε-NFA with O(|R|) states and transitions
      (Theorem 19); the default, as it preserves the paper's
      O(|R|·|D|) preprocessing bound (Corollary 20);
    * ``"glushkov"`` — ε-free NFA with |R|+1 states but up to O(|R|²)
      transitions.
    """
    ast = parse_rpq(expression) if isinstance(expression, str) else expression
    if method == "thompson":
        return thompson_nfa(ast)
    if method == "glushkov":
        return glushkov_nfa(ast)
    raise ValueError(f"unknown construction method: {method!r}")


__all__ = [
    "ANY",
    "EPSILON",
    "NFA",
    "AnyAtom",
    "Concat",
    "EpsilonAtom",
    "Label",
    "Optional",
    "Plus",
    "Repeat",
    "Star",
    "Union",
    "ast_size",
    "complement_nfa",
    "concat_nfa",
    "counterexample",
    "desugar",
    "determinize",
    "difference_nfa",
    "equivalent",
    "glushkov_nfa",
    "intersect_nfa",
    "option_nfa",
    "plus_nfa",
    "star_nfa",
    "union_nfa",
    "is_deterministic",
    "is_subset",
    "is_unambiguous",
    "language_key",
    "minimize",
    "minimize_brzozowski",
    "parse_rpq",
    "product",
    "regex_to_nfa",
    "remove_epsilon",
    "reverse",
    "subset_counterexample",
    "thompson_nfa",
    "trim",
]
