"""Language equivalence and inclusion tests, with counterexamples.

Used throughout the test suite to validate the regex→NFA pipelines
(Thompson and Glushkov must agree on every expression) and available to
library users for query rewriting ("is this cheaper automaton the same
query?").

The tests run a breadth-first product of the two automata's *subset*
simulations — determinization happens lazily, only for the reachable
pairs — and return the **shortest distinguishing word** when the
relation fails, which makes property-test failures actionable.

ε-transitions are handled by closure; the :data:`~repro.automata.nfa.ANY`
wildcard is summarized by one fresh symbol for "any label the automata
never mention" (sound: all such labels act identically).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.automata.nfa import NFA
from repro.automata.minimize import OTHER
from repro.exceptions import AutomatonError

_PairKey = Tuple[FrozenSet[int], FrozenSet[int]]


def _distinguish(
    a: NFA,
    b: NFA,
    accept_only_left: bool,
    max_pairs: int,
) -> Optional[Tuple[str, ...]]:
    """Shortest word violating the relation, or ``None``.

    With ``accept_only_left=False`` the relation is equivalence (a
    violation is a word accepted by exactly one automaton); with
    ``True`` it is inclusion L(a) ⊆ L(b) (a violation is accepted by
    ``a`` but not ``b``).

    The BFS alphabet is the *joint* concrete alphabet, plus the
    :data:`OTHER` stand-in when either automaton uses the ANY wildcard
    (``step`` fires only wildcard transitions on a symbol no transition
    mentions, which is exactly the behaviour of every unmentioned
    label).
    """
    alphabet: List[str] = sorted(a.alphabet() | b.alphabet())
    if a.uses_wildcard or b.uses_wildcard:
        alphabet.append(OTHER)

    start: _PairKey = (a.eps_closure(a.initial), b.eps_closure(b.initial))
    parents: Dict[_PairKey, Optional[Tuple[_PairKey, str]]] = {start: None}
    queue: deque = deque([start])

    def violates(sa: FrozenSet[int], sb: FrozenSet[int]) -> bool:
        in_a = bool(sa & a.final)
        in_b = bool(sb & b.final)
        if accept_only_left:
            return in_a and not in_b
        return in_a != in_b

    def word_to(pair: _PairKey) -> Tuple[str, ...]:
        word: List[str] = []
        cursor: Optional[Tuple[_PairKey, str]] = parents[pair]
        while cursor is not None:
            previous, symbol = cursor
            word.append(symbol)
            cursor = parents[previous]
        return tuple(reversed(word))

    while queue:
        pair = queue.popleft()
        sa, sb = pair
        if violates(sa, sb):
            return word_to(pair)
        for symbol in alphabet:
            nxt: _PairKey = (a.step(sa, symbol), b.step(sb, symbol))
            if nxt not in parents:
                if len(parents) >= max_pairs:
                    raise AutomatonError(
                        f"equivalence check exceeded {max_pairs} state pairs"
                    )
                parents[nxt] = (pair, symbol)
                queue.append(nxt)
    return None


def counterexample(
    a: NFA, b: NFA, max_pairs: int = 250_000
) -> Optional[Tuple[str, ...]]:
    """The shortest word in ``L(a) Δ L(b)``, or ``None`` when equal.

    A returned word may contain :data:`~repro.automata.minimize.OTHER`,
    which stands for any concrete label neither automaton mentions.
    """
    return _distinguish(a, b, accept_only_left=False, max_pairs=max_pairs)


def equivalent(a: NFA, b: NFA, max_pairs: int = 250_000) -> bool:
    """``L(a) == L(b)``?"""
    return counterexample(a, b, max_pairs=max_pairs) is None


def subset_counterexample(
    a: NFA, b: NFA, max_pairs: int = 250_000
) -> Optional[Tuple[str, ...]]:
    """The shortest word in ``L(a) \\ L(b)``, or ``None`` if L(a) ⊆ L(b)."""
    return _distinguish(a, b, accept_only_left=True, max_pairs=max_pairs)


def is_subset(a: NFA, b: NFA, max_pairs: int = 250_000) -> bool:
    """``L(a) ⊆ L(b)``?"""
    return subset_counterexample(a, b, max_pairs=max_pairs) is None
