"""DFA minimization (Hopcroft and Brzozowski) and language keys.

The paper's introduction stresses that translating a user query to a
*deterministic* automaton can blow up exponentially — which is why the
main algorithm works on NFAs directly.  Minimization is the flip side
of that coin: the tools here quantify how small the deterministic form
actually is, canonicalize regular languages for testing (two automata
accept the same language iff their minimal DFAs are isomorphic), and
let the benchmark suite report |DFA| next to |NFA| on the regex
catalog.

* :func:`minimize` — Hopcroft partition refinement, O(|Σ|·n·log n)
  over the determinized input;
* :func:`minimize_brzozowski` — reverse → determinize → reverse →
  determinize; elegant, worst-case exponential, used as a cross-check;
* :func:`language_key` — a hashable canonical form of L(A): equal keys
  ⇔ equal languages.  Built on the uniqueness of the minimal DFA.

All functions accept arbitrary NFAs (ε-transitions welcome) and
determinize internally when needed.  The :data:`~repro.automata.nfa.ANY`
wildcard is handled by treating "some label no transition mentions" as
one fresh alphabet symbol — sound because every concrete label beyond
the automaton's own alphabet behaves identically.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.automata.determinize import determinize, is_deterministic
from repro.automata.nfa import ANY, NFA
from repro.automata.ops import reverse

#: The stand-in symbol for "any label not otherwise mentioned".
OTHER = " other"


def _expand_wildcard(nfa: NFA) -> NFA:
    """Rewrite ANY transitions over ``alphabet(nfa) ∪ {OTHER}``.

    Over any concrete alphabet extending the automaton's own, all
    labels the automaton never names are interchangeable; one fresh
    symbol represents them all, preserving language (in)equality.
    """
    if not nfa.uses_wildcard:
        return nfa
    alphabet = sorted(nfa.alphabet()) + [OTHER]
    result = NFA(nfa.n_states)
    for q, label, p in nfa.transitions():
        if label is ANY:
            for a in alphabet:
                result.add_transition(q, a, p)
        else:
            result.add_transition(q, label, p)
    result.set_initial(*nfa.initial)
    result.set_final(*nfa.final)
    return result


def _as_dfa(nfa: NFA, max_states: int) -> NFA:
    """Determinize unless already deterministic and ε-free."""
    nfa = _expand_wildcard(nfa)
    if is_deterministic(nfa):
        return nfa
    return determinize(nfa, max_states=max_states)


def minimize(nfa: NFA, max_states: int = 100_000) -> NFA:
    """The minimal (partial) DFA accepting ``L(nfa)`` — Hopcroft.

    The result is deterministic, has no dead states (every state lies
    on a path from the initial state to a final state) and is unique
    up to state renaming.  An empty language yields the one-state
    automaton with no finals.  ``max_states`` bounds the intermediate
    determinization (:class:`~repro.exceptions.AutomatonError` beyond).
    """
    dfa = _as_dfa(nfa, max_states)
    if not dfa.initial:
        return _empty_language_dfa()
    initial = next(iter(dfa.initial))
    n = dfa.n_states
    alphabet = sorted(dfa.alphabet())
    trans: List[Dict[str, int]] = [
        {label: targets[0] for label, targets in dfa.transitions_from(q)
         if isinstance(label, str)}
        for q in range(n)
    ]

    classes = _hopcroft(n, trans, set(dfa.final), alphabet)

    # Identify the dead class: the class of the implicit sink (index n).
    dead_class = classes[n]
    if classes[initial] == dead_class:
        return _empty_language_dfa()

    # Quotient automaton over live classes reachable from the initial's.
    result = NFA()
    class_state: Dict[int, int] = {}

    def state_for(cls: int) -> int:
        if cls not in class_state:
            class_state[cls] = result.add_state()
        return class_state[cls]

    representatives: Dict[int, int] = {}
    for q in range(n):
        representatives.setdefault(classes[q], q)
    stack = [classes[initial]]
    seen = {classes[initial]}
    state_for(classes[initial])
    while stack:
        cls = stack.pop()
        rep = representatives[cls]
        for a in alphabet:
            target = trans[rep].get(a)
            if target is None:
                continue
            tcls = classes[target]
            if tcls == dead_class:
                continue
            result.add_transition(state_for(cls), a, state_for(tcls))
            if tcls not in seen:
                seen.add(tcls)
                stack.append(tcls)
    result.set_initial(state_for(classes[initial]))
    finals = set(dfa.final)
    for cls, sid in class_state.items():
        if representatives[cls] in finals:
            result.set_final(sid)
    return result


def _empty_language_dfa() -> NFA:
    dfa = NFA(1)
    dfa.set_initial(0)
    return dfa


def _hopcroft(
    n: int,
    trans: Sequence[Dict[str, int]],
    finals: Set[int],
    alphabet: Sequence[str],
) -> List[int]:
    """Partition refinement over states ``0..n`` (``n`` = implicit sink).

    Returns ``classes[q]`` — the equivalence-class index of each state,
    with missing transitions routed to the all-rejecting sink ``n``.
    """
    total = n + 1
    inverse: Dict[str, List[List[int]]] = {
        a: [[] for _ in range(total)] for a in alphabet
    }
    for q in range(n):
        tq = trans[q]
        for a in alphabet:
            inverse[a][tq.get(a, n)].append(q)
    for a in alphabet:
        inverse[a][n].append(n)  # The sink loops on every symbol.

    final_block = set(finals)
    other_block = set(range(total)) - final_block
    partition: List[Set[int]] = [b for b in (final_block, other_block) if b]
    worklist: List[Set[int]] = [set(b) for b in partition]

    while worklist:
        splitter = worklist.pop()
        for a in alphabet:
            inv_a = inverse[a]
            x = {q for t in splitter for q in inv_a[t]}
            if not x:
                continue
            next_partition: List[Set[int]] = []
            for block in partition:
                inter = block & x
                if not inter or len(inter) == len(block):
                    next_partition.append(block)
                    continue
                diff = block - x
                next_partition.append(inter)
                next_partition.append(diff)
                # Keep the worklist consistent: replace the split block
                # if queued, otherwise queue the smaller half.
                replaced = False
                for i, queued in enumerate(worklist):
                    if queued == block:
                        worklist[i] = inter
                        worklist.append(diff)
                        replaced = True
                        break
                if not replaced:
                    worklist.append(
                        inter if len(inter) <= len(diff) else diff
                    )
            partition = next_partition

    classes = [0] * total
    for idx, block in enumerate(partition):
        for q in block:
            classes[q] = idx
    return classes


def minimize_brzozowski(nfa: NFA, max_states: int = 100_000) -> NFA:
    """Brzozowski's minimization: d(r(d(r(A)))).

    Determinizing the reversal yields an automaton whose reachable part
    is co-deterministic; determinizing its reversal is the minimal DFA.
    Worst-case exponential (both determinizations can blow up), but a
    beautifully independent implementation used to cross-check
    :func:`minimize` in the test suite.

    The result keeps dead states out by construction (subset states are
    reachable, and co-reachability is inherited from the first pass)
    except for the empty language, which is normalized like
    :func:`minimize`.
    """
    nfa = _expand_wildcard(nfa)
    once = determinize(reverse(nfa), max_states=max_states)
    twice = determinize(reverse(once), max_states=max_states)
    if not twice.final:
        return _empty_language_dfa()
    return twice


def language_key(
    nfa: NFA, max_states: int = 100_000
) -> Tuple[int, Tuple[Tuple[int, str, int], ...], Tuple[int, ...]]:
    """A hashable canonical form of ``L(nfa)``.

    Two automata have equal keys **iff** they accept the same language:
    the key is the minimal DFA's transition table under a breadth-first
    canonical renumbering (unique because the DFA is deterministic and
    minimal).  Useful as a dictionary key for memoizing per-language
    computations, and heavily used by the test suite.

    Wildcards: a concrete symbol whose transition behaviour coincides
    with the generic "any unmentioned label" class (:data:`OTHER`)
    everywhere is folded into that class, so e.g. ``a | .`` and ``.``
    produce the same key even though their syntactic alphabets differ.
    """
    dfa = minimize(nfa, max_states=max_states)
    n = dfa.n_states
    trans: List[Dict[str, int]] = [
        {label: targets[0] for label, targets in dfa.transitions_from(q)
         if isinstance(label, str)}
        for q in range(n)
    ]

    def signature(symbol: str) -> Tuple[Optional[int], ...]:
        return tuple(trans[q].get(symbol) for q in range(n))

    other_sig = signature(OTHER)
    folded = {
        a
        for a in dfa.alphabet()
        if a != OTHER and signature(a) == other_sig
    }

    order: Dict[int, int] = {}
    queue: List[int] = []
    start = next(iter(dfa.initial))
    order[start] = 0
    queue.append(start)
    transitions: List[Tuple[int, str, int]] = []
    head = 0
    while head < len(queue):
        q = queue[head]
        head += 1
        for label in sorted(a for a in trans[q] if a not in folded):
            target = trans[q][label]
            if target not in order:
                order[target] = len(order)
                queue.append(target)
            transitions.append((order[q], label, order[target]))
    finals = tuple(sorted(order[q] for q in dfa.final))
    return len(order), tuple(transitions), finals
