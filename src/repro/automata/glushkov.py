"""Glushkov (position) construction: regex → ε-free NFA.

Produces an automaton with ``|positions| + 1`` states — one per label
occurrence plus a fresh initial state — and no ε-transitions, but up to
O(|R|²) transitions.  The paper (Section 5.2) notes that using Glushkov
instead of Thompson would degrade the bounds to O(|R|² × |D|)
preprocessing and O(λ × |R|²) delay; the benchmark suite quantifies
that trade-off (experiment EXP-C20).

Implementation: classical ``nullable`` / ``first`` / ``last`` /
``follow`` computation over the desugared AST.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Set, Union as TUnion

from repro.automata.nfa import ANY, NFA, _Sentinel
from repro.automata.regex_ast import (
    AnyAtom,
    Concat,
    EpsilonAtom,
    Label,
    RegexNode,
    Star,
    Union,
    desugar,
)

_PosLabel = TUnion[str, _Sentinel]


@dataclass
class _Facts:
    nullable: bool
    first: Set[int]
    last: Set[int]


def glushkov_nfa(ast: RegexNode) -> NFA:
    """Compile an AST (sugar allowed) into an ε-free position NFA."""
    core = desugar(ast)

    position_labels: List[_PosLabel] = []
    follow: Dict[int, Set[int]] = {}

    def analyze(node: RegexNode) -> _Facts:
        if isinstance(node, EpsilonAtom):
            return _Facts(True, set(), set())
        if isinstance(node, (Label, AnyAtom)):
            pos = len(position_labels)
            position_labels.append(
                node.name if isinstance(node, Label) else ANY
            )
            follow[pos] = set()
            return _Facts(False, {pos}, {pos})
        if isinstance(node, Concat):
            facts = analyze(node.parts[0])
            for part in node.parts[1:]:
                rhs = analyze(part)
                for p in facts.last:
                    follow[p] |= rhs.first
                facts = _Facts(
                    facts.nullable and rhs.nullable,
                    facts.first | (rhs.first if facts.nullable else set()),
                    rhs.last | (facts.last if rhs.nullable else set()),
                )
            return facts
        if isinstance(node, Union):
            parts = [analyze(p) for p in node.parts]
            return _Facts(
                any(f.nullable for f in parts),
                set().union(*(f.first for f in parts)),
                set().union(*(f.last for f in parts)),
            )
        if isinstance(node, Star):
            inner = analyze(node.child)
            for p in inner.last:
                follow[p] |= inner.first
            return _Facts(True, set(inner.first), set(inner.last))
        raise TypeError(f"unexpected core node: {node!r}")

    facts = analyze(core)

    nfa = NFA(len(position_labels) + 1)
    start = len(position_labels)  # Positions are 0..k-1; start is k.
    nfa.set_initial(start)
    for pos in facts.first:
        nfa.add_transition(start, position_labels[pos], pos)
    for pos, successors in follow.items():
        for nxt in successors:
            nfa.add_transition(pos, position_labels[nxt], nxt)
    for pos in facts.last:
        nfa.set_final(pos)
    if facts.nullable:
        nfa.set_final(start)
    return nfa
