"""Subset construction and determinism testing.

The paper's introduction contrasts the general algorithm with the
"simpler setting" of deterministic queries on single-labeled data,
where a product-BFS achieves O(λ) delay.  The planner
(:mod:`repro.query.plan`) uses :func:`is_deterministic` — a linear-time
check, as the paper notes — to detect that setting;
:func:`determinize` exists for tests, examples and the ablation
benchmarks that quantify the exponential price of determinization.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from repro.automata.nfa import ANY, EPSILON, NFA
from repro.exceptions import AutomatonError


def is_deterministic(nfa: NFA) -> bool:
    """Linear-time determinism check.

    Deterministic means: at most one initial state, no ε-transitions,
    and for every state at most one successor per label.  A state
    carrying both a wildcard transition and any other transition is
    nondeterministic (the wildcard overlaps every label).
    """
    if len(nfa.initial) > 1:
        return False
    for q in nfa.states():
        moves = dict(nfa.transitions_from(q))
        if EPSILON in moves:
            return False
        if ANY in moves and (len(moves) > 1 or len(moves[ANY]) > 1):
            return False
        for targets in moves.values():
            if len(targets) > 1:
                return False
    return True


def determinize(nfa: NFA, max_states: int = 100_000) -> NFA:
    """Subset construction; the result satisfies :func:`is_deterministic`.

    Wildcard transitions are not supported here (expand them against a
    concrete alphabet first); ε-transitions are handled by closure.
    ``max_states`` guards against the exponential blowup the paper
    warns about — an :class:`AutomatonError` is raised beyond it.
    """
    if nfa.uses_wildcard:
        raise AutomatonError(
            "determinize does not support the ANY wildcard; expand it first"
        )
    alphabet = sorted(nfa.alphabet())
    start = nfa.eps_closure(nfa.initial)
    result = NFA()
    index: Dict[FrozenSet[int], int] = {}

    def state_for(subset: FrozenSet[int]) -> int:
        if subset not in index:
            if len(index) >= max_states:
                raise AutomatonError(
                    f"determinization exceeded {max_states} states"
                )
            index[subset] = result.add_state()
        return index[subset]

    stack: List[FrozenSet[int]] = [start]
    state_for(start)
    explored = {start}
    while stack:
        subset = stack.pop()
        for symbol in alphabet:
            nxt = nfa.step(subset, symbol)
            if not nxt:
                continue
            result.add_transition(state_for(subset), symbol, state_for(nxt))
            if nxt not in explored:
                explored.add(nxt)
                stack.append(nxt)
    result.set_initial(state_for(start))
    finals = frozenset(nfa.final)
    for subset, sid in index.items():
        if subset & finals:
            result.set_final(sid)
    return result
