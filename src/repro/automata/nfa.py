"""Nondeterministic finite automata over label alphabets.

Definition 6 of the paper: an NFA is ``(Σ, Q, Δ, I, F)``.  States are
dense integers (as the paper's memory model assumes); transition labels
are either

* a concrete label name (a ``str``),
* :data:`EPSILON` — a spontaneous transition (Section 5.1), or
* :data:`ANY` — a wildcard that matches every label of the database the
  query is eventually run against (syntactic sugar used by the RPQ
  front-end; it is expanded at query-compile time and does not change
  the algorithm).

``Δ(q, a)`` is accessible in O(1) and is duplicate-free, exactly as the
paper assumes.
"""

from __future__ import annotations

from collections import deque
from typing import (
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Sequence,
    Set,
    Tuple,
    Union,
)

from repro.exceptions import AutomatonError


class _Sentinel:
    """Interned marker labels (ε and the wildcard)."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        self._name = name

    def __repr__(self) -> str:
        return self._name


#: The spontaneous-transition label (Section 5.1).
EPSILON = _Sentinel("ε")

#: The wildcard label: matches any database label.
ANY = _Sentinel("ANY")

TransitionLabel = Union[str, _Sentinel]


class NFA:
    """A mutable NFA; freeze-free by design ("we are all responsible users").

    >>> a = NFA()
    >>> q0, q1 = a.add_state(), a.add_state()
    >>> a.add_transition(q0, "h", q0)
    >>> a.add_transition(q0, "s", q1)
    >>> a.add_transition(q1, "h", q1)
    >>> a.add_transition(q1, "s", q1)
    >>> a.set_initial(q0); a.set_final(q1)
    >>> a.accepts(["h", "h", "s"])
    True
    >>> a.accepts(["h", "h"])
    False
    """

    __slots__ = ("_delta", "_delta_sets", "_initial", "_final")

    def __init__(self, n_states: int = 0) -> None:
        self._delta: List[Dict[TransitionLabel, List[int]]] = [
            {} for _ in range(n_states)
        ]
        # Shadow sets for O(1) duplicate suppression in add_transition.
        self._delta_sets: List[Dict[TransitionLabel, Set[int]]] = [
            {} for _ in range(n_states)
        ]
        self._initial: Set[int] = set()
        self._final: Set[int] = set()

    # -- construction ------------------------------------------------------

    def add_state(self) -> int:
        """Create a new state and return its id."""
        self._delta.append({})
        self._delta_sets.append({})
        return len(self._delta) - 1

    def add_states(self, count: int) -> List[int]:
        """Create ``count`` states; returns their ids."""
        return [self.add_state() for _ in range(count)]

    def _check_state(self, q: int) -> None:
        if not 0 <= q < len(self._delta):
            raise AutomatonError(f"unknown state: {q}")

    def add_transition(self, q: int, label: TransitionLabel, p: int) -> None:
        """Add ``(q, label, p)`` to Δ (idempotent)."""
        self._check_state(q)
        self._check_state(p)
        if isinstance(label, str) and not label:
            raise AutomatonError("transition labels must be non-empty")
        if not isinstance(label, (str, _Sentinel)):
            raise AutomatonError(f"bad transition label: {label!r}")
        bucket = self._delta_sets[q].setdefault(label, set())
        if p not in bucket:
            bucket.add(p)
            self._delta[q].setdefault(label, []).append(p)

    def set_initial(self, *states: int) -> None:
        """Mark states as initial."""
        for q in states:
            self._check_state(q)
            self._initial.add(q)

    def set_final(self, *states: int) -> None:
        """Mark states as final."""
        for q in states:
            self._check_state(q)
            self._final.add(q)

    # -- basic inspection ------------------------------------------------------

    @property
    def n_states(self) -> int:
        """|Q|."""
        return len(self._delta)

    @property
    def initial(self) -> FrozenSet[int]:
        """I."""
        return frozenset(self._initial)

    @property
    def final(self) -> FrozenSet[int]:
        """F."""
        return frozenset(self._final)

    def states(self) -> range:
        """All state ids."""
        return range(self.n_states)

    def delta(self, q: int, label: TransitionLabel) -> Tuple[int, ...]:
        """``Δ(q, label)`` as a duplicate-free tuple. O(1) lookup."""
        self._check_state(q)
        return tuple(self._delta[q].get(label, ()))

    def transitions_from(
        self, q: int
    ) -> Iterator[Tuple[TransitionLabel, Tuple[int, ...]]]:
        """Iterate ``(label, targets)`` pairs out of ``q``."""
        self._check_state(q)
        for label, targets in self._delta[q].items():
            yield label, tuple(targets)

    def transitions(self) -> Iterator[Tuple[int, TransitionLabel, int]]:
        """Iterate all transition triples ``(q, label, p)``."""
        for q in self.states():
            for label, targets in self._delta[q].items():
                for p in targets:
                    yield q, label, p

    def eps_successors(self, q: int) -> Tuple[int, ...]:
        """``Δ(q, ε)``."""
        return self.delta(q, EPSILON)

    @property
    def has_epsilon(self) -> bool:
        """True when Δ contains at least one ε-transition."""
        return any(EPSILON in d for d in self._delta)

    def alphabet(self) -> Set[str]:
        """Concrete labels appearing in Δ (excludes ε and the wildcard)."""
        labels: Set[str] = set()
        for d in self._delta:
            labels.update(a for a in d if isinstance(a, str))
        return labels

    @property
    def uses_wildcard(self) -> bool:
        """True when Δ contains an :data:`ANY` transition."""
        return any(ANY in d for d in self._delta)

    @property
    def transition_count(self) -> int:
        """|Δ| — total number of transition triples."""
        return sum(len(ts) for d in self._delta for ts in d.values())

    def size(self) -> int:
        """The paper's ``|A| = |Σ| + |Q| + |Δ|`` (with |I|,|F| ≤ |Q|)."""
        return len(self.alphabet()) + self.n_states + self.transition_count

    # -- semantics -----------------------------------------------------------------

    def eps_closure(self, states: Iterable[int]) -> FrozenSet[int]:
        """All states reachable from ``states`` via ε-transitions."""
        seen: Set[int] = set(states)
        stack = list(seen)
        while stack:
            q = stack.pop()
            for p in self._delta[q].get(EPSILON, ()):
                if p not in seen:
                    seen.add(p)
                    stack.append(p)
        return frozenset(seen)

    def step(self, states: Iterable[int], label: str) -> FrozenSet[int]:
        """One synchronous move on ``label`` (ANY fires too), ε-closed."""
        nxt: Set[int] = set()
        for q in states:
            nxt.update(self._delta[q].get(label, ()))
            nxt.update(self._delta[q].get(ANY, ()))
        return self.eps_closure(nxt)

    def accepts(self, word: Sequence[str]) -> bool:
        """Stateset simulation: is ``word`` in L(A)?"""
        current = self.eps_closure(self._initial)
        for symbol in word:
            current = self.step(current, symbol)
            if not current:
                return False
        return bool(current & self._final)

    def matches_label_sets(
        self, label_sets: Sequence[Iterable[str]]
    ) -> bool:
        """Does *some* word drawn from the label sets belong to L(A)?

        This is exactly the paper's matching condition for a walk
        (Definition 7): ``L(A) ∩ Lbl(w) ≠ ∅`` where ``Lbl(w)`` is the
        set of words obtained by picking one label per edge.  The
        stateset simulation evaluates it without enumerating the
        (exponentially many) words.
        """
        current: FrozenSet[int] = self.eps_closure(self._initial)
        for labels in label_sets:
            nxt: Set[int] = set()
            for symbol in labels:
                for q in current:
                    nxt.update(self._delta[q].get(symbol, ()))
            for q in current:
                nxt.update(self._delta[q].get(ANY, ()))
            current = self.eps_closure(nxt)
            if not current:
                return False
        return bool(current & self._final)

    def shortest_accepted_length(self) -> Union[int, None]:
        """Length of a shortest word in L(A), or ``None`` if L(A) = ∅.

        0-1 BFS: ε-transitions cost 0, labeled transitions cost 1.
        """
        dist: Dict[int, int] = {q: 0 for q in self._initial}
        queue: deque = deque(self._initial)
        best: Union[int, None] = None
        while queue:
            q = queue.popleft()
            d = dist[q]
            if best is not None and d >= best:
                continue
            if q in self._final:
                best = d if best is None else min(best, d)
                continue
            for label, targets in self._delta[q].items():
                step_cost = 0 if label is EPSILON else 1
                for p in targets:
                    nd = d + step_cost
                    if p not in dist or nd < dist[p]:
                        dist[p] = nd
                        if step_cost == 0:
                            queue.appendleft(p)
                        else:
                            queue.append(p)
        if best is not None:
            return best
        finals = self._final & set(dist)
        return min((dist[f] for f in finals), default=None)

    def is_empty_language(self) -> bool:
        """True iff L(A) = ∅."""
        return self.shortest_accepted_length() is None

    # -- misc --------------------------------------------------------------------------

    def copy(self) -> "NFA":
        """Deep copy."""
        clone = NFA(self.n_states)
        for q, label, p in self.transitions():
            clone.add_transition(q, label, p)
        clone.set_initial(*self._initial)
        clone.set_final(*self._final)
        return clone

    def validate(self) -> None:
        """Raise :class:`AutomatonError` on structural problems."""
        n = self.n_states
        for q in list(self._initial) + list(self._final):
            if not 0 <= q < n:
                raise AutomatonError(f"initial/final state out of range: {q}")
        for q, label, p in self.transitions():
            if not 0 <= p < n:
                raise AutomatonError(f"transition target out of range: {p}")
            if isinstance(label, str) and not label:
                raise AutomatonError("empty transition label")

    def to_dot(self) -> str:
        """GraphViz rendering, for documentation and debugging."""
        lines = ["digraph nfa {", "  rankdir=LR;", '  node [shape=circle];']
        for q in self._final:
            lines.append(f"  {q} [shape=doublecircle];")
        for i, q in enumerate(sorted(self._initial)):
            lines.append(f'  __start{i} [shape=point, style=invis];')
            lines.append(f"  __start{i} -> {q};")
        for q, label, p in self.transitions():
            text = "ε" if label is EPSILON else ("." if label is ANY else str(label))
            lines.append(f'  {q} -> {p} [label="{text}"];')
        lines.append("}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"NFA(|Q|={self.n_states}, |Δ|={self.transition_count}, "
            f"I={sorted(self._initial)}, F={sorted(self._final)})"
        )
