"""Automaton operations: ε-elimination, reversal, trimming, product,
unambiguity testing.

These are the standard constructions the paper leans on:

* Section 5.1 handles ε-transitions on the fly, but multiplicity
  counting (Section 5.3) is defined on ε-free automata, so
  :func:`remove_epsilon` provides the canonical elimination;
* related work ([11, 17] in the paper) assumes *unambiguous* automata —
  :func:`is_unambiguous` implements the classical self-product test so
  that the planner can detect that setting.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.automata.nfa import ANY, EPSILON, NFA


def remove_epsilon(nfa: NFA) -> NFA:
    """Equivalent ε-free NFA (canonical forward-closure elimination).

    New automaton: ``I' = closure(I)``, ``Δ'(q, a) = closure(Δ(q, a))``
    for concrete labels, ``F' = F``.  Language is preserved; state set
    is unchanged (no renumbering), so unreachable states may remain —
    compose with :func:`trim` when a tight automaton is needed.
    """
    result = NFA(nfa.n_states)
    for q in nfa.states():
        for label, targets in nfa.transitions_from(q):
            if label is EPSILON:
                continue
            for p in nfa.eps_closure(targets):
                result.add_transition(q, label, p)
    result.set_initial(*nfa.eps_closure(nfa.initial))
    result.set_final(*nfa.final)
    return result


def reverse(nfa: NFA) -> NFA:
    """Mirror automaton: recognizes the reversal of L(A)."""
    result = NFA(nfa.n_states)
    for q, label, p in nfa.transitions():
        result.add_transition(p, label, q)
    result.set_initial(*nfa.final)
    result.set_final(*nfa.initial)
    return result


def _forward_reachable(nfa: NFA) -> Set[int]:
    seen: Set[int] = set(nfa.initial)
    stack = list(seen)
    while stack:
        q = stack.pop()
        for _, targets in nfa.transitions_from(q):
            for p in targets:
                if p not in seen:
                    seen.add(p)
                    stack.append(p)
    return seen


def trim(nfa: NFA) -> Tuple[NFA, Dict[int, int]]:
    """Keep only *useful* states (reachable and co-reachable).

    Returns the trimmed automaton plus the mapping from old state ids
    to new ones.  If the language is empty the result has no states.
    """
    reachable = _forward_reachable(nfa)
    co_reachable = _forward_reachable(reverse(nfa))
    useful = sorted(reachable & co_reachable)
    mapping = {old: new for new, old in enumerate(useful)}
    result = NFA(len(useful))
    for q, label, p in nfa.transitions():
        if q in mapping and p in mapping:
            result.add_transition(mapping[q], label, mapping[p])
    result.set_initial(*(mapping[q] for q in nfa.initial if q in mapping))
    result.set_final(*(mapping[q] for q in nfa.final if q in mapping))
    return result, mapping


def product(left: NFA, right: NFA) -> NFA:
    """Synchronous product recognizing ``L(left) ∩ L(right)``.

    Both inputs must be ε-free (apply :func:`remove_epsilon` first);
    :data:`ANY` wildcards synchronize with any concrete label of the
    other automaton and with each other.
    """
    for nfa in (left, right):
        if nfa.has_epsilon:
            raise ValueError("product requires ε-free automata")
    # Lazily explore reachable pairs only.
    result = NFA()
    index: Dict[Tuple[int, int], int] = {}

    def state_for(pair: Tuple[int, int]) -> int:
        if pair not in index:
            index[pair] = result.add_state()
        return index[pair]

    stack: List[Tuple[int, int]] = []
    for i in left.initial:
        for j in right.initial:
            pair = (i, j)
            state_for(pair)
            stack.append(pair)
    explored: Set[Tuple[int, int]] = set(stack)
    while stack:
        (q1, q2) = stack.pop()
        moves1 = dict(left.transitions_from(q1))
        moves2 = dict(right.transitions_from(q2))
        labels1 = set(moves1) - {ANY}
        labels2 = set(moves2) - {ANY}
        shared = (labels1 & labels2) | ({ANY} if ANY in moves1 and ANY in moves2 else set())
        # Wildcards also pair with the other side's concrete labels.
        if ANY in moves1:
            shared |= labels2
        if ANY in moves2:
            shared |= labels1
        for label in shared:
            targets1 = list(moves1.get(label, ())) + (
                list(moves1.get(ANY, ())) if label is not ANY else []
            )
            targets2 = list(moves2.get(label, ())) + (
                list(moves2.get(ANY, ())) if label is not ANY else []
            )
            for p1 in targets1:
                for p2 in targets2:
                    pair = (p1, p2)
                    result.add_transition(
                        state_for((q1, q2)), label, state_for(pair)
                    )
                    if pair not in explored:
                        explored.add(pair)
                        stack.append(pair)
    for (q1, q2), s in index.items():
        if q1 in left.initial and q2 in right.initial:
            result.set_initial(s)
        if q1 in left.final and q2 in right.final:
            result.set_final(s)
    return result


def is_unambiguous(nfa: NFA) -> bool:
    """Does every accepted word have exactly one accepting run?

    Classical self-product test: take the ε-free trimmed automaton,
    build the pair graph over runs reading the *same* word, restrict to
    useful pairs (reachable from ``I×I`` and co-reachable to ``F×F``);
    the automaton is unambiguous iff every useful pair is diagonal.

    Note: for automata using :data:`ANY`, distinct wildcard/concrete
    transitions that can fire on the same symbol are treated as
    distinct, which errs on the side of reporting ambiguity — safe for
    the planner (it only uses *unambiguous* as a fast-path license).
    """
    base = remove_epsilon(nfa) if nfa.has_epsilon else nfa
    trimmed, _ = trim(base)
    if trimmed.n_states == 0:
        return True  # Empty language: vacuously unambiguous.

    pairs: Set[Tuple[int, int]] = {
        (i, j) for i in trimmed.initial for j in trimmed.initial
    }
    stack = list(pairs)
    while stack:
        (q1, q2) = stack.pop()
        moves1 = dict(trimmed.transitions_from(q1))
        moves2 = dict(trimmed.transitions_from(q2))
        for label in set(moves1) & set(moves2):
            for p1 in moves1[label]:
                for p2 in moves2[label]:
                    pair = (p1, p2)
                    if pair not in pairs:
                        pairs.add(pair)
                        stack.append(pair)
        # A wildcard can fire together with any concrete label.
        for wild_side, other in ((moves1, moves2), (moves2, moves1)):
            if ANY not in wild_side:
                continue
            for label, targets in other.items():
                if label is ANY:
                    continue
                for p_wild in wild_side[ANY]:
                    for p_other in targets:
                        pair = (
                            (p_wild, p_other)
                            if wild_side is moves1
                            else (p_other, p_wild)
                        )
                        if pair not in pairs:
                            pairs.add(pair)
                            stack.append(pair)

    # Co-reachability of pairs to F×F, via backward closure.
    final_pairs = {
        (q1, q2)
        for (q1, q2) in pairs
        if q1 in trimmed.final and q2 in trimmed.final
    }
    # Build reverse adjacency over the discovered pair graph.
    back: Dict[Tuple[int, int], Set[Tuple[int, int]]] = {}
    for (q1, q2) in pairs:
        moves1 = dict(trimmed.transitions_from(q1))
        moves2 = dict(trimmed.transitions_from(q2))
        successor_pairs: Set[Tuple[int, int]] = set()
        for label in set(moves1) & set(moves2):
            for p1 in moves1[label]:
                for p2 in moves2[label]:
                    successor_pairs.add((p1, p2))
        for wild_side, other in ((moves1, moves2), (moves2, moves1)):
            if ANY not in wild_side:
                continue
            for label, targets in other.items():
                if label is ANY:
                    continue
                for p_wild in wild_side[ANY]:
                    for p_other in targets:
                        successor_pairs.add(
                            (p_wild, p_other)
                            if wild_side is moves1
                            else (p_other, p_wild)
                        )
        for succ in successor_pairs & pairs:
            back.setdefault(succ, set()).add((q1, q2))

    useful: Set[Tuple[int, int]] = set(final_pairs)
    stack = list(final_pairs)
    while stack:
        pair = stack.pop()
        for pred in back.get(pair, ()):
            if pred not in useful:
                useful.add(pred)
                stack.append(pred)

    return all(q1 == q2 for (q1, q2) in useful)
