"""Thompson construction (Theorem 19): regex → ε-NFA in linear time.

Given an expression of size ``|R|``, the produced automaton has
O(|R|) states and O(|R|) transitions.  Because the paper's algorithm
handles ε-transitions at no additional cost (Section 5.1), Thompson is
the construction that yields Corollary 20's bounds —
O(|R| × |D|) preprocessing and O(λ × |R|) delay.

The construction is the classical one: every sub-expression compiles to
a fragment with a single entry and a single exit state.
"""

from __future__ import annotations

from typing import Tuple

from repro.automata.nfa import ANY, EPSILON, NFA
from repro.automata.regex_ast import (
    AnyAtom,
    Concat,
    EpsilonAtom,
    Label,
    RegexNode,
    Star,
    Union,
    desugar,
)


def thompson_nfa(ast: RegexNode) -> NFA:
    """Compile an AST (sugar allowed) into an ε-NFA.

    The result has exactly one initial and one final state.
    """
    core = desugar(ast)
    nfa = NFA()

    def build(node: RegexNode) -> Tuple[int, int]:
        """Return the (entry, exit) states of the fragment for ``node``."""
        if isinstance(node, Label):
            entry, exit_ = nfa.add_state(), nfa.add_state()
            nfa.add_transition(entry, node.name, exit_)
            return entry, exit_
        if isinstance(node, AnyAtom):
            entry, exit_ = nfa.add_state(), nfa.add_state()
            nfa.add_transition(entry, ANY, exit_)
            return entry, exit_
        if isinstance(node, EpsilonAtom):
            entry, exit_ = nfa.add_state(), nfa.add_state()
            nfa.add_transition(entry, EPSILON, exit_)
            return entry, exit_
        if isinstance(node, Concat):
            first_entry, previous_exit = build(node.parts[0])
            for part in node.parts[1:]:
                entry, part_exit = build(part)
                nfa.add_transition(previous_exit, EPSILON, entry)
                previous_exit = part_exit
            return first_entry, previous_exit
        if isinstance(node, Union):
            entry, exit_ = nfa.add_state(), nfa.add_state()
            for part in node.parts:
                part_entry, part_exit = build(part)
                nfa.add_transition(entry, EPSILON, part_entry)
                nfa.add_transition(part_exit, EPSILON, exit_)
            return entry, exit_
        if isinstance(node, Star):
            entry, exit_ = nfa.add_state(), nfa.add_state()
            child_entry, child_exit = build(node.child)
            nfa.add_transition(entry, EPSILON, child_entry)
            nfa.add_transition(child_exit, EPSILON, exit_)
            nfa.add_transition(entry, EPSILON, exit_)
            nfa.add_transition(child_exit, EPSILON, child_entry)
            return entry, exit_
        raise TypeError(f"unexpected core node: {node!r}")

    entry, exit_ = build(core)
    nfa.set_initial(entry)
    nfa.set_final(exit_)
    return nfa
