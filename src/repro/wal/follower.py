"""Read-only follower: tail a leader's WAL, serve the unmodified API.

:class:`FollowerDatabase` recovers a WAL directory and then keeps
**tailing** ``wal.log``: each :meth:`catch_up` reads the bytes past
its position and applies every *complete* frame through the ordinary
:meth:`LiveGraph.apply` / :meth:`LiveGraph.compact` — the same replay
determinism recovery relies on, so the follower's edge ids match what
the leader had at each LSN.  A partial frame at the tail (the leader
is mid-write, or mid-group-commit) is simply retried on the next
poll: the read position only ever advances past valid frames, so a
torn tail can delay the follower but never desynchronize it.

Reads go through an internal, completely ordinary
:class:`repro.api.Database` — the follower registers its
:class:`LiveGraph` like any caller would, which means the façade's
plan/annotation caches and their fine-grained footprint invalidation
work unchanged: every applied record flows through the change feed,
and cached annotations untouched by a batch's labels stay warm across
catch-ups.

No write path: the follower attaches no WAL hook and owns no writer.
Mutating it directly would fork it from the leader — don't.
"""

from __future__ import annotations

import os
import time
from typing import Any, Optional

from repro.api.database import Database
from repro.exceptions import WalError
from repro.live.delta import ops_from_dicts
from repro.wal.frames import KINDS, RECORD_VERSION, iter_frames
from repro.wal.recovery import recover
from repro.wal.writer import LOG_NAME


class FollowerDatabase:
    """Tails a WAL directory; serves reads via :mod:`repro.api`.

    ``poll_interval`` / ``max_backoff`` (seconds) bound the sleep
    between empty polls in :meth:`wait_for` and :meth:`run`: the
    interval doubles while the log is quiet and resets on progress.
    """

    def __init__(
        self,
        wal_dir: str,
        *,
        name: str = "default",
        poll_interval: float = 0.02,
        max_backoff: float = 1.0,
        **db_kwargs: Any,
    ) -> None:
        state = recover(wal_dir)
        self.wal_dir = wal_dir
        self.name = name
        self.poll_interval = poll_interval
        self.max_backoff = max_backoff
        self._path = os.path.join(wal_dir, LOG_NAME)
        self._live = state.graph
        self._lsn = state.last_lsn
        self._offset = state.valid_offset
        self.db = Database(**db_kwargs)
        self.db.register(name, self._live)

    # -- position -----------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """LSN of the last record this follower has applied."""
        return self._lsn

    @property
    def offset(self) -> int:
        """Byte position in ``wal.log`` the next poll reads from."""
        return self._offset

    # -- tailing ------------------------------------------------------

    def catch_up(self) -> int:
        """Apply every complete frame past the current position.

        Returns the number of records applied.  Stops (without
        advancing) at the first incomplete or invalid frame — the
        leader may still be writing it, so it is retried on the next
        call rather than treated as corruption.  A complete frame with
        the wrong next LSN, however, raises
        :class:`~repro.exceptions.WalError`: the log was rewritten
        underneath the follower.
        """
        try:
            with open(self._path, "rb") as fh:
                fh.seek(self._offset)
                data = fh.read()
        except FileNotFoundError:
            return 0
        applied = 0
        base = self._offset  # iter_frames offsets are data-relative.
        for record, end in iter_frames(data):
            lsn = record["lsn"]
            if lsn != self._lsn + 1:
                raise WalError(
                    f"follower at lsn {self._lsn} read record lsn "
                    f"{lsn}; the log no longer continues this replica "
                    f"(was the WAL directory replaced?)"
                )
            kind = record.get("kind")
            if kind == "batch":
                self._live.apply(ops_from_dicts(record.get("ops", [])))
            elif kind == "compact":
                self._live.compact()
            elif record.get("v", 1) > RECORD_VERSION:
                raise WalError(
                    f"record lsn {lsn} has kind {kind!r} from a newer "
                    f"WAL schema; upgrade this follower"
                )
            else:
                raise WalError(
                    f"record lsn {lsn} has unknown kind {kind!r}; "
                    f"expected one of {', '.join(KINDS)}"
                )
            self._lsn = lsn
            self._offset = base + end
            applied += 1
        return applied

    def wait_for(self, lsn: int, *, timeout: float = 5.0) -> bool:
        """Poll (with backoff) until ``last_lsn >= lsn`` or timeout."""
        deadline = time.monotonic() + timeout
        backoff = self.poll_interval
        while self._lsn < lsn:
            if self.catch_up():
                backoff = self.poll_interval
                continue
            if time.monotonic() >= deadline:
                return False
            time.sleep(min(backoff, max(deadline - time.monotonic(), 0)))
            backoff = min(backoff * 2, self.max_backoff)
        return True

    def run(
        self,
        *,
        duration: Optional[float] = None,
        max_records: Optional[int] = None,
    ) -> int:
        """Tail until ``duration`` seconds elapse (or ``max_records``).

        Returns the number of records applied.  With neither bound the
        loop runs forever — the ``repro follow`` CLI mode.
        """
        deadline = (
            time.monotonic() + duration if duration is not None else None
        )
        total = 0
        backoff = self.poll_interval
        while True:
            applied = self.catch_up()
            total += applied
            if applied:
                backoff = self.poll_interval
            if max_records is not None and total >= max_records:
                return total
            if deadline is not None and time.monotonic() >= deadline:
                return total
            if not applied:
                sleep = backoff
                if deadline is not None:
                    sleep = min(sleep, max(deadline - time.monotonic(), 0))
                time.sleep(sleep)
                backoff = min(backoff * 2, self.max_backoff)

    # -- read façade --------------------------------------------------

    def query(self, query):
        """Start a façade query (see :meth:`repro.api.Database.query`)."""
        return self.db.query(query)

    @property
    def graph(self):
        """The follower's :class:`LiveGraph` replica (read it, don't
        mutate it — writes belong on the leader)."""
        return self._live

    def __repr__(self) -> str:
        return (
            f"FollowerDatabase({self.wal_dir!r}, lsn={self._lsn}, "
            f"offset={self._offset})"
        )
