"""The append side of the WAL: framing, fsync policy, snapshots.

:class:`WalWriter` owns the log file ``wal.log`` inside a WAL
directory.  It implements the duck-typed hook protocol of
:meth:`repro.live.LiveGraph.attach_wal` — ``log_batch(ops)`` /
``log_compaction(new_graph)`` — which the live graph invokes *inside
its apply lock, after validation, before any state change*: a batch is
durable (or at least queued per the sync policy) before it is visible,
and a writer failure aborts the batch with the graph untouched.

Sync policies (``sync=``):

``"always"``
    ``flush`` + ``fsync`` after every record — one batch, one disk
    barrier; maximum durability, maximum cost.
``"group"`` (default)
    group commit: every record is flushed to the OS, but ``fsync``
    runs at most once per ``group_window_ms`` — batches inside one
    window share a barrier.  A crash can lose at most the last
    window's worth of *acknowledged* batches; it can never corrupt
    the log (torn tails are detected and truncated by recovery).
``"none"``
    flush only; durability left to the OS.  For tests and bulk loads.
"""

from __future__ import annotations

import os
import time
from typing import Any, Optional, Sequence

from repro.exceptions import WalError
from repro.live.delta import AddEdge, AddVertex, Delta, op_to_dict
from repro.wal.frames import RECORD_VERSION, encode_frame
from repro.wal.snapshot import (
    _fsync_dir,
    check_wire_name,
    list_snapshots,
    write_snapshot,
)

LOG_NAME = "wal.log"

_SYNC_MODES = ("always", "group", "none")

_null_registry = None


def _disabled_registry():
    """Shared disabled registry: null instruments for metrics=None."""
    global _null_registry
    if _null_registry is None:
        from repro.obs.metrics import MetricsRegistry

        _null_registry = MetricsRegistry(enabled=False)
    return _null_registry


def _check_ops_wire_safe(ops: Sequence[Delta]) -> None:
    """Fail a batch *before* logging when it would not round-trip.

    Vertex names reach the log through JSON; a tuple name would come
    back as a list after recovery — accept only JSON scalars, and
    reject at commit time rather than at (much later) replay time.
    """
    for op in ops:
        if isinstance(op, AddVertex):
            check_wire_name(op.name)
        elif isinstance(op, AddEdge):
            check_wire_name(op.src)
            check_wire_name(op.tgt)


class WalWriter:
    """Appends framed records to ``<wal_dir>/wal.log``.

    ``start_lsn`` is the LSN of the last record already in the log and
    ``start_offset`` the byte length of its valid prefix (both come
    from recovery); the file is truncated to ``start_offset`` on open
    so a torn tail left by a crash never precedes fresh records.
    """

    def __init__(
        self,
        wal_dir: str,
        *,
        sync: str = "group",
        group_window_ms: float = 50.0,
        start_lsn: int = 0,
        start_offset: int = 0,
        metrics: Optional[Any] = None,
    ) -> None:
        if sync not in _SYNC_MODES:
            raise WalError(
                f"unknown sync mode {sync!r}; expected one of "
                f"{', '.join(_SYNC_MODES)}"
            )
        # Instruments resolve before the file opens: the torn-tail
        # truncation below already fsyncs.  With metrics=None these
        # are the shared null instruments (no-op methods).
        registry = metrics if metrics is not None else _disabled_registry()
        self._h_fsync = registry.histogram("wal.fsync_seconds")
        self._h_batch = registry.histogram(
            "wal.group_batch_size", bounds=(1, 2, 4, 8, 16, 32, 64, 128)
        )
        self._c_torn = registry.counter("wal.torn_tail_truncations")
        self._records_since_sync = 0
        os.makedirs(wal_dir, exist_ok=True)
        self.wal_dir = wal_dir
        self.path = os.path.join(wal_dir, LOG_NAME)
        self.sync = sync
        self.group_window = max(group_window_ms, 0.0) / 1000.0
        self._fh = open(self.path, "ab")
        size = self._fh.tell()
        if size < start_offset:
            self._fh.close()
            raise WalError(
                f"WAL file {self.path} is {size} bytes, shorter than "
                f"its recovered valid prefix ({start_offset}) — the "
                f"log was modified behind recovery's back"
            )
        if size > start_offset:
            # Drop the torn tail (or any bytes past the valid prefix)
            # before appending, so the log stays a clean frame stream.
            self._c_torn.inc()
            self._fh.truncate(start_offset)
            self._fh.seek(start_offset)
            self._fsync()
        # A snapshot whose watermark is AHEAD of the log head belongs
        # to a timeline a truncation discarded.  It must go before any
        # append: new records will reuse those LSNs for a *different*
        # history, and a later recovery would otherwise trust the
        # stale snapshot at its (now colliding) watermark.
        stale = [
            path for lsn, path in list_snapshots(wal_dir) if lsn > start_lsn
        ]
        for path in stale:
            try:
                os.unlink(path)
            except OSError:
                pass
        if stale:
            _fsync_dir(wal_dir)
        self._last_lsn = start_lsn
        self._last_fsync = time.monotonic()
        self._pending_sync = False
        self._closed = False

    # -- introspection ------------------------------------------------

    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended (or recovered) record."""
        return self._last_lsn

    @property
    def closed(self) -> bool:
        return self._closed

    # -- appending ----------------------------------------------------

    def _append(self, record: dict) -> int:
        if self._closed:
            raise WalError("WAL writer is closed")
        frame = encode_frame(record)
        self._fh.write(frame)
        self._commit()
        self._last_lsn = record["lsn"]
        return self._last_lsn

    def _commit(self) -> None:
        self._records_since_sync += 1
        self._fh.flush()
        if self.sync == "always":
            self._fsync()
        elif self.sync == "group":
            now = time.monotonic()
            if now - self._last_fsync >= self.group_window:
                self._fsync()
            else:
                self._pending_sync = True

    def _fsync(self) -> None:
        t0 = time.perf_counter()
        os.fsync(self._fh.fileno())
        self._h_fsync.observe(time.perf_counter() - t0)
        if self._records_since_sync:
            # Records sharing this barrier — the group-commit batch.
            self._h_batch.observe(self._records_since_sync)
            self._records_since_sync = 0
        self._last_fsync = time.monotonic()
        self._pending_sync = False

    def append_batch(self, ops: Sequence[Delta]) -> int:
        """Log one atomic batch; returns its LSN."""
        ops = tuple(ops)
        _check_ops_wire_safe(ops)
        return self._append(
            {
                "v": RECORD_VERSION,
                "lsn": self._last_lsn + 1,
                "kind": "batch",
                "ops": [op_to_dict(op) for op in ops],
            }
        )

    def append_compaction(self, graph: Optional[Any] = None) -> int:
        """Log a compaction point; returns its LSN.

        When ``graph`` (the already-compacted state, i.e.
        ``LiveGraph.to_graph()``) is provided, a snapshot at this LSN
        is written too — the record goes first and is fsync'd
        unconditionally, so the snapshot's watermark always refers to
        a durable log position.
        """
        lsn = self._append(
            {"v": RECORD_VERSION, "lsn": self._last_lsn + 1, "kind": "compact"}
        )
        self._fsync()
        if graph is not None:
            write_snapshot(self.wal_dir, graph, lsn)
        return lsn

    # -- the LiveGraph hook protocol ----------------------------------

    def log_batch(self, ops: Sequence[Delta]) -> None:
        self.append_batch(ops)

    def log_compaction(self, new_graph: Any) -> None:
        self.append_compaction(new_graph)

    # -- lifecycle ----------------------------------------------------

    def sync_now(self) -> None:
        """Force an fsync (drains a pending group-commit window)."""
        if not self._closed:
            self._fh.flush()
            self._fsync()

    def close(self) -> None:
        """Flush, fsync and close the log file (idempotent)."""
        if self._closed:
            return
        try:
            self._fh.flush()
            if self.sync != "none" or self._pending_sync:
                os.fsync(self._fh.fileno())
        finally:
            self._closed = True
            self._fh.close()

    def __enter__(self) -> "WalWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
