"""On-disk snapshot codec for durable graphs.

A snapshot captures the *compacted* state of a graph at a specific WAL
position: the file ``snapshot-<lsn 12 digits>.json`` inside the WAL
directory holds

.. code-block:: json

    {"format": "repro-wal-snapshot", "v": 1, "lsn": 42,
     "vertices": ["v0", 7, "v2"], "labels": ["a", "b"],
     "edges": [{"src": 0, "tgt": 1, "labels": [0], "cost": 3}],
     "counts": {"vertices": 3, "edges": 1, "labels": 2},
     "crc": "0b1f9a3c"}

``lsn`` is the **watermark**: the snapshot equals the graph after
applying WAL records 1..lsn, so recovery replays the tail starting at
exactly ``lsn + 1`` (and refuses — loudly — a log that cannot provide
that record; an off-by-one would silently double-apply a batch).

Unlike :func:`repro.graph.io.graph_to_dict`, vertex names are stored
as their JSON scalar selves (an ``int`` name stays an ``int``), so a
snapshot round-trips names exactly; the durable layer restricts names
to JSON scalars at commit time for the same reason.  ``crc`` covers
the canonical (sorted-keys, compact) JSON of the body so a partially
written or bit-flipped snapshot is detected and skipped —
:func:`load_latest_snapshot` falls back to the newest older snapshot
that validates.

Writes are atomic and durable: the document goes to a ``*.tmp`` file
that is flushed and fsync'd, then :func:`os.replace`-d into place, and
the directory entry is fsync'd too — a crash leaves either the old
snapshot set or the old set plus one complete new file, never a torn
snapshot under the final name.
"""

from __future__ import annotations

import json
import os
import re
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.exceptions import WalError
from repro.graph.database import Graph

SNAPSHOT_FORMAT = "repro-wal-snapshot"
SNAPSHOT_VERSION = 1

_SNAPSHOT_RE = re.compile(r"^snapshot-(\d{12})\.json$")

#: Vertex-name types that survive the JSON wire form unchanged.
SCALAR_TYPES = (str, int, float, bool, type(None))


def snapshot_name(lsn: int) -> str:
    """File name of the snapshot at watermark ``lsn``."""
    return f"snapshot-{lsn:012d}.json"


def check_wire_name(name: Any) -> None:
    """Reject vertex names that would not round-trip through JSON.

    Called at commit time (append/snapshot) so the failure is loud and
    immediate — a tuple name would silently come back as a list after
    recovery, which is exactly the class of corruption a WAL must not
    introduce.
    """
    if not isinstance(name, SCALAR_TYPES):
        raise WalError(
            f"durable graphs require JSON-scalar vertex names "
            f"(str/int/float/bool/None); got {type(name).__name__}: "
            f"{name!r}"
        )


def _body(graph: Graph, lsn: int) -> Dict[str, Any]:
    edges: List[Dict[str, Any]] = []
    for e in graph.edges():
        edge: Dict[str, Any] = {
            "src": graph.src(e),
            "tgt": graph.tgt(e),
            "labels": list(graph.labels(e)),
        }
        if graph.has_costs:
            edge["cost"] = graph.cost(e)
        edges.append(edge)
    vertices = []
    for v in graph.vertices():
        name = graph.vertex_name(v)
        check_wire_name(name)
        vertices.append(name)
    return {
        "format": SNAPSHOT_FORMAT,
        "v": SNAPSHOT_VERSION,
        "lsn": lsn,
        "vertices": vertices,
        "labels": list(graph.alphabet),
        "edges": edges,
        "counts": {
            "vertices": graph.vertex_count,
            "edges": graph.edge_count,
            "labels": graph.label_count,
        },
    }


def _body_crc(body: Dict[str, Any]) -> str:
    canonical = json.dumps(
        body, separators=(",", ":"), sort_keys=True
    ).encode("utf-8")
    return f"{zlib.crc32(canonical):08x}"


def write_snapshot(wal_dir: str, graph: Graph, lsn: int) -> str:
    """Atomically write ``graph`` as the snapshot at watermark ``lsn``.

    Returns the final path.  The graph must be compacted (edge ids
    dense, no tombstones) — callers snapshot either a base
    :class:`Graph` or the output of ``LiveGraph.to_graph()``.
    """
    body = _body(graph, lsn)
    document = dict(body)
    document["crc"] = _body_crc(body)
    path = os.path.join(wal_dir, snapshot_name(lsn))
    tmp = path + ".tmp"
    data = json.dumps(document, separators=(",", ":"), sort_keys=True)
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(wal_dir)
    return path


def _fsync_dir(path: str) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # Platforms without directory fds.
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def _load_document(path: str) -> Optional[Dict[str, Any]]:
    """Parse + CRC-check one snapshot file; ``None`` when invalid."""
    try:
        with open(path, "r", encoding="utf-8") as fh:
            document = json.load(fh)
    except (OSError, ValueError, UnicodeDecodeError):
        return None
    if not isinstance(document, dict):
        return None
    if document.get("format") != SNAPSHOT_FORMAT:
        return None
    crc = document.get("crc")
    body = {k: v for k, v in document.items() if k != "crc"}
    if crc != _body_crc(body):
        return None
    lsn = document.get("lsn")
    if not isinstance(lsn, int) or isinstance(lsn, bool) or lsn < 0:
        return None
    return document


def _graph_from_document(document: Dict[str, Any]) -> Graph:
    edges = document["edges"]
    any_cost = any("cost" in e for e in edges)
    return Graph(
        vertex_names=document["vertices"],
        label_names=document["labels"],
        src=[e["src"] for e in edges],
        tgt=[e["tgt"] for e in edges],
        labels=[tuple(e["labels"]) for e in edges],
        costs=[e.get("cost", 1) for e in edges] if any_cost else None,
    )


@dataclass
class SnapshotLoad:
    """A decoded snapshot: the graph state after WAL records 1..lsn."""

    graph: Graph
    lsn: int
    path: str


def list_snapshots(wal_dir: str) -> List[Tuple[int, str]]:
    """``(lsn, path)`` of every snapshot-named file, newest first."""
    found: List[Tuple[int, str]] = []
    try:
        entries = os.listdir(wal_dir)
    except FileNotFoundError:
        return []
    for entry in entries:
        match = _SNAPSHOT_RE.match(entry)
        if match:
            found.append((int(match.group(1)), os.path.join(wal_dir, entry)))
    found.sort(reverse=True)
    return found


def load_latest_snapshot(wal_dir: str) -> Optional[SnapshotLoad]:
    """The newest snapshot that validates, or ``None``.

    Corrupt or torn snapshot files are skipped (the WAL tail can
    replay through the older watermark), so a crash during
    :func:`write_snapshot` — or a damaged newest file — degrades to a
    longer replay, never to a failed recovery.
    """
    for lsn, path in list_snapshots(wal_dir):
        document = _load_document(path)
        if document is None:
            continue
        try:
            graph = _graph_from_document(document)
        except Exception:
            continue  # Structurally broken body: fall back further.
        if document["lsn"] != lsn:
            continue  # Renamed file lying about its watermark.
        return SnapshotLoad(graph=graph, lsn=lsn, path=path)
    return None
