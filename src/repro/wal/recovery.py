"""Crash recovery: latest valid snapshot + WAL tail replay.

:func:`recover` rebuilds the graph state a WAL directory describes:

1. scan ``wal.log`` for its valid frame prefix (stopping at the first
   torn/corrupt frame — never at a valid one — and remembering the
   byte offset of the cut);
2. pick the newest snapshot that validates **and** whose watermark the
   scanned log can actually continue from (a snapshot ahead of the
   log's last valid LSN is skipped: the log is the source of truth for
   what committed);
3. replay the records after the watermark, in LSN order, through the
   ordinary :meth:`LiveGraph.apply` / :meth:`LiveGraph.compact` — the
   same code paths that produced them, so replay is deterministic down
   to edge-id renumbering at compaction points.

The watermark contiguity assert (step 3's precondition) is the guard
against the silent double-apply hazard: the first replayed record
must carry exactly ``snapshot.lsn + 1``.  Off-by-one here would
re-apply a batch the snapshot already contains (or skip one), so a
mismatch raises :class:`~repro.exceptions.WalError` instead of
guessing.

The returned :class:`RecoveredState` carries everything a writer
needs to *continue* the log safely — ``last_lsn`` to number the next
record and ``valid_offset`` to truncate a torn tail before appending.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.exceptions import ReproError, WalError
from repro.live.delta import ops_from_dicts
from repro.live.live_graph import LiveGraph
from repro.wal.frames import WalScan, scan_file
from repro.wal.snapshot import (
    SnapshotLoad,
    _graph_from_document,
    _load_document,
    list_snapshots,
)
from repro.wal.writer import LOG_NAME


@dataclass
class RecoveredState:
    """Outcome of :func:`recover` — a live graph plus log geometry."""

    #: The recovered graph (base = snapshot, overlay = replayed tail).
    graph: LiveGraph
    #: LSN of the last valid record (0 for an empty log, no snapshot).
    last_lsn: int
    #: Watermark of the snapshot recovery started from (0 = none/empty).
    snapshot_lsn: int
    #: Batch records replayed after the snapshot.
    replayed_batches: int
    #: Compaction records replayed after the snapshot.
    replayed_compactions: int
    #: Byte offset right after the last valid frame in ``wal.log``.
    valid_offset: int
    #: True when invalid bytes (a torn tail) follow ``valid_offset``.
    torn_tail: bool


def _pick_snapshot(wal_dir: str, scan: WalScan) -> Optional[SnapshotLoad]:
    """Newest valid snapshot the scanned log can replay from.

    Beyond CRC validity (handled per file), the snapshot's watermark
    must not exceed the log's last valid LSN: a snapshot *ahead* of
    the log (possible when the log was truncated by a fault after the
    snapshot was written) cannot be trusted to match any committed
    prefix, so recovery falls back to an older snapshot — or to empty
    + full replay.
    """
    for lsn, path in list_snapshots(wal_dir):
        if lsn > scan.last_lsn:
            continue
        document = _load_document(path)
        if document is None or document["lsn"] != lsn:
            continue
        try:
            graph = _graph_from_document(document)
        except Exception:
            continue
        return SnapshotLoad(graph=graph, lsn=lsn, path=path)
    return None


def recover(wal_dir: str) -> RecoveredState:
    """Rebuild the state of ``wal_dir`` (see module docstring).

    Raises :class:`~repro.exceptions.WalError` for structural damage
    recovery must not paper over (non-contiguous LSNs, a watermark the
    log cannot continue from, a record that fails to replay); torn or
    corrupt *tail* frames are tolerated by construction.
    """
    if not os.path.isdir(wal_dir):
        raise WalError(f"not a WAL directory: {wal_dir!r}")
    scan = scan_file(os.path.join(wal_dir, LOG_NAME))
    snapshot = _pick_snapshot(wal_dir, scan)

    if snapshot is not None:
        live = LiveGraph(snapshot.graph)
        watermark = snapshot.lsn
    else:
        if any(lsn == 0 for lsn, _ in list_snapshots(wal_dir)):
            # A bootstrap snapshot exists but nothing validates: the
            # state the database was seeded with predates the log, so
            # "empty + full replay" would silently drop it.  Loud.
            raise WalError(
                f"no snapshot in {wal_dir!r} validates, and the "
                f"bootstrap snapshot (lsn 0) cannot be reconstructed "
                f"from the log — refusing to recover a partial state"
            )
        live = LiveGraph()
        watermark = 0

    tail = [r for r in scan.records if r["lsn"] > watermark]
    if tail and tail[0]["lsn"] != watermark + 1:
        # The double-apply guard (scan contiguity makes this
        # unreachable for a log starting at LSN 1, but a trimmed or
        # hand-edited log must fail loudly, not replay off by one).
        raise WalError(
            f"snapshot watermark is {watermark} but the first WAL "
            f"record past it has lsn {tail[0]['lsn']}; replay must "
            f"start at exactly {watermark + 1}"
        )

    batches = compactions = 0
    for record in tail:
        try:
            if record["kind"] == "batch":
                live.apply(ops_from_dicts(record.get("ops", [])))
                batches += 1
            else:  # "compact" — scan_bytes rejected every other kind.
                live.compact()
                compactions += 1
        except WalError:
            raise
        except ReproError as exc:
            raise WalError(
                f"WAL record lsn {record['lsn']} failed to replay: {exc}"
            ) from exc

    return RecoveredState(
        graph=live,
        last_lsn=scan.last_lsn,
        snapshot_lsn=watermark,
        replayed_batches=batches,
        replayed_compactions=compactions,
        valid_offset=scan.valid_offset,
        torn_tail=scan.torn,
    )
