"""Record framing for the write-ahead log.

The WAL is a JSONL file of **framed** records: one record per line,

    <len>:<crc>:<payload>\\n

where ``payload`` is the record's compact JSON (no raw newlines — the
JSON encoder escapes them), ``len`` its byte length in decimal and
``crc`` the ``zlib.crc32`` of the payload bytes as 8 hex digits.  A
frame is *valid* only when the line is newline-terminated, the header
parses, the declared length matches the payload and the CRC checks
out — so a torn write (partial line at the tail), a truncation mid
frame and a flipped byte are all detected, and the scanner stops at
the **first invalid frame, never at a valid one**.

Record payloads are dictionaries carrying

* ``v`` — the WAL record schema version (:data:`RECORD_VERSION`);
  unknown fields on records stamped with a newer version are ignored,
  mirroring the tolerant op reader of :mod:`repro.live.delta`;
* ``lsn`` — the record's log sequence number (monotonic, gap-free,
  starting at 1; contiguity is checked by the consumers — recovery
  and the follower — because a valid-CRC frame with a hole in the LSN
  sequence means log surgery, not a torn write, and must be loud);
* ``kind`` — ``"batch"`` (``ops`` holds the wire-form mutation ops of
  one atomic :class:`~repro.live.delta.Delta` batch) or ``"compact"``
  (the graph's edge ids renumbered at this point; replay must run
  :meth:`~repro.live.live_graph.LiveGraph.compact`, which renumbers
  deterministically, so later id-addressed ops keep meaning the same
  edges).
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Tuple

from repro.exceptions import WalError

#: WAL record schema version (independent of the op wire version).
RECORD_VERSION = 1

#: The record kinds this reader knows how to replay.
KINDS = ("batch", "compact")


def encode_frame(record: Dict[str, Any]) -> bytes:
    """One framed line for ``record`` (raises ``WalError`` when the
    record does not survive JSON — a non-serializable value would
    otherwise poison the log for every later reader)."""
    try:
        payload = json.dumps(
            record, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise WalError(f"record is not JSON-serializable: {exc}") from None
    return b"%d:%08x:%s\n" % (len(payload), zlib.crc32(payload), payload)


def _parse_frame(line: bytes) -> Dict[str, Any]:
    """The record of one complete line, or ``None`` when invalid."""
    head, sep, rest = line.partition(b":")
    if not sep or not head.isdigit():
        return None
    crc_hex, sep, payload = rest.partition(b":")
    if not sep or len(crc_hex) != 8:
        return None
    try:
        declared_len = int(head)
        declared_crc = int(crc_hex, 16)
    except ValueError:
        return None
    if len(payload) != declared_len:
        return None
    if zlib.crc32(payload) != declared_crc:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    lsn = record.get("lsn")
    if not isinstance(lsn, int) or isinstance(lsn, bool) or lsn < 1:
        return None
    version = record.get("v")
    if not isinstance(version, int) or isinstance(version, bool) or (
        version < 1
    ):
        return None
    return record


def iter_frames(
    data: bytes, offset: int = 0
) -> Iterator[Tuple[Dict[str, Any], int]]:
    """Yield ``(record, end_offset)`` for every valid frame in order.

    Stops silently at the first invalid or incomplete frame (torn
    tail); ``end_offset`` is the byte position right after the frame's
    newline — the resume point for a tailing reader.
    """
    while True:
        newline = data.find(b"\n", offset)
        if newline < 0:
            return
        record = _parse_frame(data[offset:newline])
        if record is None:
            return
        offset = newline + 1
        yield record, offset


@dataclass
class WalScan:
    """Outcome of scanning one WAL file."""

    #: Every valid record, in log order.
    records: List[Dict[str, Any]]
    #: Byte offset right after the last valid frame.
    valid_offset: int
    #: True when bytes (torn/corrupt frames) follow ``valid_offset``.
    torn: bool

    @property
    def last_lsn(self) -> int:
        return self.records[-1]["lsn"] if self.records else 0


def scan_bytes(data: bytes, *, start_lsn: int = 0) -> WalScan:
    """Scan a WAL byte string, checking LSN contiguity.

    ``start_lsn`` is the LSN the log is expected to continue from
    (records at or below it would be duplicates).  The first record
    must carry ``start_lsn + 1`` and every later one the predecessor's
    LSN + 1 — a valid frame out of sequence raises
    :class:`~repro.exceptions.WalError` (CRC-valid frames do not
    appear out of order by accident).
    """
    records: List[Dict[str, Any]] = []
    valid_offset = 0
    expected = start_lsn + 1
    for record, end in iter_frames(data):
        lsn = record["lsn"]
        if lsn != expected:
            raise WalError(
                f"WAL record at byte {valid_offset} has lsn {lsn}, "
                f"expected {expected} — log sequence is not contiguous"
            )
        kind = record.get("kind")
        if kind not in KINDS:
            if record.get("v", 1) > RECORD_VERSION:
                raise WalError(
                    f"WAL record lsn {lsn} has kind {kind!r} from a "
                    f"newer schema (v={record.get('v')}); this reader "
                    f"cannot replay it"
                )
            raise WalError(
                f"WAL record lsn {lsn} has unknown kind {kind!r}"
            )
        records.append(record)
        valid_offset = end
        expected = lsn + 1
    return WalScan(
        records=records,
        valid_offset=valid_offset,
        torn=valid_offset < len(data),
    )


def scan_file(path, *, start_lsn: int = 0) -> WalScan:
    """:func:`scan_bytes` over a file; a missing file is an empty log."""
    try:
        with open(path, "rb") as fh:
            data = fh.read()
    except FileNotFoundError:
        return WalScan(records=[], valid_offset=0, torn=False)
    return scan_bytes(data, start_lsn=start_lsn)
