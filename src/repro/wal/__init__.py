""":mod:`repro.wal` — durability: write-ahead log, snapshots, recovery, followers.

Why
---

:mod:`repro.live` (PR 4) made the graph mutable: atomic ``Delta``
batches, wire-serializable ops, a change feed — a write-ahead log in
all but name, except that a process death lost every applied batch.
This package closes that gap and adds the first multi-process story:
mutations survive crashes, and read replicas can tail the log.

Architecture
------------

::

    Database.mutate / LiveGraph.apply ── attach_wal hook ──┐
                                                           ▼
         wal_dir/wal.log         ◄── WalWriter (writer.py)
           <len>:<crc32>:<json>\\n      fsync policy: always | group | none
         wal_dir/snapshot-<lsn>.json ◄── written at each compaction
                                                           │
         recover() (recovery.py) = latest valid snapshot   │
             + replay of the WAL tail (frames.py scanner) ◄┘
                                                           │
         FollowerDatabase (follower.py) = recover + tail ──┘

**Logging before applying.**  :meth:`LiveGraph.attach_wal` installs a
duck-typed hook that :meth:`LiveGraph.apply` invokes inside its lock,
after batch validation, *before* the first state change: LSN order
equals apply order, only valid batches are logged, and a writer
failure aborts the batch with the graph untouched.  Compactions are
themselves WAL records — ``compact()`` renumbers edge ids
deterministically (ascending old-id order), so a replayer that
compacts at the same LSN resolves every later id-addressed op to the
same edge.  The compaction record is also where snapshots happen: the
record is fsync'd first, then the already-merged graph is written as
``snapshot-<lsn>.json`` (atomic tmp + fsync + rename + dir fsync),
so a snapshot's watermark always names a durable log position.

**Framing** (:mod:`repro.wal.frames`).  One record per line,
``<len>:<crc32-hex>:<compact json>\\n``.  A frame is valid only if
newline-terminated with matching length and CRC — torn writes,
truncations and bit flips at the tail are all detected, and the
scanner stops at the first invalid frame, never at a valid one.  A
*valid* frame with a non-contiguous LSN is different: that is log
surgery, not a crash artifact, and raises
:class:`~repro.exceptions.WalError`.

**Recovery** (:mod:`repro.wal.recovery`).  Load the newest snapshot
that validates *and* whose watermark the scanned log can continue
from (corrupt or too-new snapshots fall back to older ones, then to
empty + full replay); assert the first replayed record carries
exactly ``watermark + 1`` (the double-apply guard); replay batches
and compactions through the ordinary live-graph code paths.  The
result carries ``last_lsn`` and ``valid_offset`` so a writer can
truncate the torn tail and continue the log — which is exactly what
:meth:`repro.api.Database.open` does on restart.

**Followers** (:mod:`repro.wal.follower`).  A
:class:`FollowerDatabase` recovers once, then polls the log tail with
backoff, applying complete frames and retrying partial ones without
advancing.  Reads are served by an unmodified
:class:`repro.api.Database` over the replica's ``LiveGraph``, so the
façade's caches — including fine-grained footprint invalidation —
stay warm and coherent across catch-ups for free.

Entry points
------------

* ``Database.open(wal_dir, graph=...)`` — durable database (existing
  state wins over the bootstrap graph).
* ``Database.recover(wal_dir)`` — one-shot recovery, no writer.
* ``FollowerDatabase(wal_dir)`` — tailing read replica.
* CLI: ``repro batch/mutate --wal-dir``, ``repro recover``,
  ``repro follow``.

The fault-injection property suite (``tests/wal/test_crash_fuzz.py``,
env knobs ``WAL_FUZZ_SEED_BASE`` / ``WAL_FUZZ_CASES``) kills the log
at random byte offsets and diffs recovery against a
rebuild-from-scratch oracle, across all four query modes.
"""

from repro.wal.follower import FollowerDatabase
from repro.wal.frames import (
    RECORD_VERSION,
    WalScan,
    encode_frame,
    iter_frames,
    scan_bytes,
    scan_file,
)
from repro.wal.recovery import RecoveredState, recover
from repro.wal.snapshot import (
    SnapshotLoad,
    list_snapshots,
    load_latest_snapshot,
    snapshot_name,
    write_snapshot,
)
from repro.wal.writer import LOG_NAME, WalWriter

__all__ = [
    "FollowerDatabase",
    "LOG_NAME",
    "RECORD_VERSION",
    "RecoveredState",
    "SnapshotLoad",
    "WalScan",
    "WalWriter",
    "encode_frame",
    "iter_frames",
    "list_snapshots",
    "load_latest_snapshot",
    "recover",
    "scan_bytes",
    "scan_file",
    "snapshot_name",
    "write_snapshot",
]
