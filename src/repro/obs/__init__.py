"""repro.obs — unified observability: metrics, tracing, slow-query log.

Architecture
============

Three layers, one bundle:

* :mod:`repro.obs.metrics` — a thread-safe :class:`MetricsRegistry` of
  counters, gauges and fixed-bucket latency histograms (p50/p95/p99 by
  bucket interpolation, no numpy).  A disabled registry hands out
  shared null instruments whose methods are empty, so instrumented
  code pays one no-op call per event.  Snapshots are JSON-ready dicts;
  :func:`merge_snapshots` rolls worker snapshots up (sum counters, max
  gauges, add histogram buckets) and :func:`render_prometheus` emits
  the text exposition served by ``repro serve --metrics``.

* :mod:`repro.obs.trace` — span-based phase tracing.  The executor
  activates a :class:`Trace` per request in a :mod:`contextvars`
  variable; pipeline code opens spans with the module-level
  :func:`span` (``parse → compile → annotate → trim → enumerate``,
  tagged ``cached=True/False``) without any handle threading.  With no
  active trace, :func:`span` returns a shared null context manager —
  the disabled fast path.

* :mod:`repro.obs.slowlog` — a bounded ring of slow-request records
  (span tree + explain payload); with threshold 0 it doubles as a
  recent-requests trace buffer.

:class:`Observability` bundles one registry + one slow log + the
threshold, and is what :class:`repro.service.QueryService` (and every
serve worker) owns.  Who instruments what:

====================  ===============================================
subsystem             instruments
====================  ===============================================
``service``           ``service.requests/errors/timeouts/...``
                      counters, ``service.request_seconds`` (+
                      enumerate/annotate) histograms, the slow log
``api.Database``      cache hit/miss/eviction collector, per-footprint
                      eviction counters, the per-request ``Trace``
``wal.WalWriter``     ``wal.fsync_seconds``, ``wal.group_batch_size``,
                      ``wal.torn_tail_truncations``
``live.LiveGraph``    ``live.overlay_edges``/``live.tombstones``
                      gauges, ``live.compact_seconds``,
                      mutation/compaction counters
``serve.ServeServer`` dispatcher collector (``serve.requests`` ...),
                      cross-worker aggregation over the control pipe
====================  ===============================================

The serve tier answers a ``{"stats": {}}`` JSONL admin request by
snapshotting every worker over the existing control pipe, merging, and
labeling unreachable workers rather than blocking on them.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_COUNTER,
    NULL_GAUGE,
    NULL_HISTOGRAM,
    histogram_quantile,
    merge_snapshots,
    render_prometheus,
)
from repro.obs.slowlog import SlowLog
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Trace,
    activate,
    add_span,
    current_trace,
    deactivate,
    span,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "NULL_SPAN",
    "Observability",
    "SlowLog",
    "Span",
    "Trace",
    "activate",
    "add_span",
    "current_trace",
    "deactivate",
    "histogram_quantile",
    "merge_snapshots",
    "render_prometheus",
    "span",
]


class Observability:
    """One registry + one slow log + the slow threshold.

    ``slow_ms=0`` records *every* request into the (bounded) slow log,
    turning it into a recent-requests trace buffer; raise it in
    production to keep only genuinely slow span trees.
    """

    def __init__(
        self,
        *,
        enabled: bool = True,
        slow_ms: float = 0.0,
        slowlog_capacity: int = 64,
    ) -> None:
        self.enabled = enabled
        self.slow_ms = float(slow_ms)
        self.registry = MetricsRegistry(enabled=enabled)
        self.slowlog = SlowLog(capacity=slowlog_capacity)

    @classmethod
    def disabled(cls) -> "Observability":
        return cls(enabled=False)

    def should_log(self, total_s: float) -> bool:
        return self.enabled and total_s * 1000.0 >= self.slow_ms

    def snapshot(self) -> Dict[str, Any]:
        return {
            "metrics": self.registry.snapshot(),
            "slowlog": self.slowlog.entries(),
        }


def resolve(obs: Optional[Observability]) -> Observability:
    """``None`` → a shared disabled bundle (null instruments)."""
    return obs if obs is not None else _DISABLED


_DISABLED = Observability.disabled()
