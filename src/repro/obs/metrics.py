"""Thread-safe metrics: counters, gauges, fixed-bucket histograms.

Three instrument kinds, one registry:

* :class:`Counter` — monotone float/int accumulator (``inc``);
* :class:`Gauge` — last-write-wins level (``set``), e.g. overlay size;
* :class:`Histogram` — fixed log-spaced latency buckets with a
  Prometheus-compatible cumulative rendering and p50/p95/p99 readable
  by linear interpolation inside the landing bucket — no numpy.

A **disabled** registry hands out the shared ``NULL_*`` singletons
whose methods are empty — instrumented code keeps one attribute load
and one no-op call per event, so the disabled cost is a function call,
not a lock.  Instrument handles are meant to be resolved once (at
subsystem construction) and kept, not looked up per event.

Snapshots are plain JSON-ready dicts so they survive the serving
tier's pickle pipe and the JSONL wire unchanged; fleet-wide roll-up is
:func:`merge_snapshots` (sum counters, max gauges, add histogram
buckets) and text exposition is :func:`render_prometheus`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): log-spaced 100 µs → 10 s, the
#: range of one request phase on this engine (sub-ms warm hits up to
#: multi-second cold saturating builds); observations past the last
#: bound land in the +inf overflow bucket.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class Counter:
    """A monotone accumulator; ``inc`` accepts ints and floats."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Gauge:
    """A level: last ``set`` wins (merge takes the max across workers)."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        return self._value


class Histogram:
    """Fixed-bucket histogram with interpolated quantiles.

    ``bounds`` are the inclusive upper edges of the finite buckets
    (Prometheus ``le`` semantics: an observation lands in the first
    bucket whose bound is ≥ the value); one overflow bucket catches
    everything past the last bound.
    """

    __slots__ = ("name", "bounds", "_counts", "_count", "_sum", "_max",
                 "_lock")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS
    ) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError(
                f"histogram bounds must be non-empty and strictly "
                f"increasing, got {bounds!r}"
            )
        self.name = name
        self.bounds = bounds
        self._counts = [0] * (len(bounds) + 1)
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, value: float) -> None:
        idx = bisect_left(self.bounds, value)
        with self._lock:
            self._counts[idx] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Interpolated q-quantile (0 < q ≤ 1); 0.0 when empty."""
        return histogram_quantile(self.snapshot(), q)

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "buckets": list(self.bounds),
                "counts": list(self._counts),
                "count": self._count,
                "sum": self._sum,
                "max": self._max,
            }


class NullCounter:
    """Shared no-op counter handed out by a disabled registry."""

    __slots__ = ()
    name = ""
    value = 0.0

    def inc(self, n: float = 1.0) -> None:
        pass


class NullGauge:
    __slots__ = ()
    name = ""
    value = 0.0

    def set(self, value: float) -> None:
        pass

    def inc(self, n: float = 1.0) -> None:
        pass


class NullHistogram:
    __slots__ = ()
    name = ""
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return 0.0

    def snapshot(self) -> Dict[str, Any]:
        return {"buckets": [], "counts": [], "count": 0, "sum": 0.0,
                "max": 0.0}


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class MetricsRegistry:
    """Names → instruments, plus pull-style collectors.

    ``counter``/``gauge``/``histogram`` create-or-return by name
    (thread-safe); on a disabled registry they return the shared null
    singletons and record nothing.  ``register_collector`` adds a
    zero-argument callable returning ``{"counters": {...}, "gauges":
    {...}}`` partial snapshots — how subsystems that already keep
    their own counters (the LRU caches, the serve dispatcher) export
    without double-counting writes.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._collectors: List[Callable[[], Dict[str, Dict[str, float]]]] = []

    # -- instrument factories ------------------------------------------

    def counter(self, name: str) -> Counter:
        if not self.enabled:
            return NULL_COUNTER
        with self._lock:
            inst = self._counters.get(name)
            if inst is None:
                inst = self._counters[name] = Counter(name)
            return inst

    def gauge(self, name: str) -> Gauge:
        if not self.enabled:
            return NULL_GAUGE
        with self._lock:
            inst = self._gauges.get(name)
            if inst is None:
                inst = self._gauges[name] = Gauge(name)
            return inst

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM
        with self._lock:
            inst = self._histograms.get(name)
            if inst is None:
                inst = self._histograms[name] = Histogram(name, bounds)
            return inst

    def register_collector(
        self, fn: Callable[[], Dict[str, Dict[str, float]]]
    ) -> None:
        if not self.enabled:
            return
        with self._lock:
            self._collectors.append(fn)

    # -- reads ---------------------------------------------------------

    def counter_value(self, name: str) -> float:
        with self._lock:
            inst = self._counters.get(name)
        return inst.value if inst is not None else 0.0

    def histogram_sum(self, name: str) -> float:
        with self._lock:
            inst = self._histograms.get(name)
        return inst.sum if inst is not None else 0.0

    def snapshot(self) -> Dict[str, Any]:
        """One JSON-ready view: counters, gauges, histograms (+quantiles).

        Collector outputs are merged in (collectors win ties — they
        export authoritative subsystem counters, e.g. cache stats).
        """
        with self._lock:
            counters = {n: c.value for n, c in self._counters.items()}
            gauges = {n: g.value for n, g in self._gauges.items()}
            histograms = {
                n: h.snapshot() for n, h in self._histograms.items()
            }
            collectors = list(self._collectors)
        for fn in collectors:
            try:
                part = fn()
            except Exception:  # noqa: BLE001 — a collector racing its
                continue  # subsystem's teardown must not kill the snapshot
            counters.update(part.get("counters", {}))
            gauges.update(part.get("gauges", {}))
        for snap in histograms.values():
            _annotate_quantiles(snap)
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def _annotate_quantiles(snap: Dict[str, Any]) -> None:
    for label, q in (("p50", 0.5), ("p95", 0.95), ("p99", 0.99)):
        snap[label] = round(histogram_quantile(snap, q), 6)


def histogram_quantile(snap: Dict[str, Any], q: float) -> float:
    """Interpolated quantile of a histogram *snapshot* dict.

    Walks the cumulative counts to the landing bucket and linearly
    interpolates between its lower and upper edges; the overflow
    bucket interpolates up to the recorded ``max``.
    """
    if not 0.0 < q <= 1.0:
        raise ValueError(f"quantile must be in (0, 1], got {q!r}")
    total = snap.get("count", 0)
    if not total:
        return 0.0
    bounds = snap["buckets"]
    counts = snap["counts"]
    rank = q * total
    cumulative = 0
    for idx, bucket_count in enumerate(counts):
        if not bucket_count:
            continue
        cumulative += bucket_count
        if cumulative >= rank:
            lo = bounds[idx - 1] if idx > 0 else 0.0
            hi = (
                bounds[idx]
                if idx < len(bounds)
                else max(snap.get("max", 0.0), lo)
            )
            frac = (rank - (cumulative - bucket_count)) / bucket_count
            return lo + (hi - lo) * frac
    return snap.get("max", 0.0)  # pragma: no cover - counts drifted


def merge_snapshots(
    snaps: Sequence[Optional[Dict[str, Any]]]
) -> Dict[str, Any]:
    """Roll worker snapshots up into one: sum / max / bucket-add.

    Counters sum (per-worker monotone totals), gauges take the max
    (levels: the hottest worker is the story), histograms add bucket
    counts element-wise when the bucket layouts agree (differing
    layouts keep the first seen — a version-skew guard, not a merge
    error).  ``None`` entries (dead workers) are skipped.
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, Dict[str, Any]] = {}
    for snap in snaps:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snap.get("gauges", {}).items():
            gauges[name] = max(gauges.get(name, value), value)
        for name, hist in snap.get("histograms", {}).items():
            into = histograms.get(name)
            if into is None:
                histograms[name] = {
                    "buckets": list(hist["buckets"]),
                    "counts": list(hist["counts"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "max": hist["max"],
                }
            elif into["buckets"] == hist["buckets"]:
                into["counts"] = [
                    a + b for a, b in zip(into["counts"], hist["counts"])
                ]
                into["count"] += hist["count"]
                into["sum"] += hist["sum"]
                into["max"] = max(into["max"], hist["max"])
    for snap in histograms.values():
        _annotate_quantiles(snap)
    return {
        "counters": counters,
        "gauges": gauges,
        "histograms": histograms,
    }


def _prom_name(name: str, prefix: str) -> str:
    safe = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    return f"{prefix}_{safe}" if prefix else safe


def render_prometheus(
    snapshot: Dict[str, Any], prefix: str = "repro"
) -> str:
    """Prometheus text exposition (format 0.0.4) of one snapshot.

    Dots in metric names become underscores under a ``repro_`` prefix;
    histograms render the cumulative ``_bucket{le=...}`` series plus
    ``_sum``/``_count``.
    """
    lines: List[str] = []
    for name in sorted(snapshot.get("counters", {})):
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {snapshot['counters'][name]:g}")
    for name in sorted(snapshot.get("gauges", {})):
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {snapshot['gauges'][name]:g}")
    for name in sorted(snapshot.get("histograms", {})):
        hist = snapshot["histograms"][name]
        prom = _prom_name(name, prefix)
        lines.append(f"# TYPE {prom} histogram")
        cumulative = 0
        for bound, bucket_count in zip(hist["buckets"], hist["counts"]):
            cumulative += bucket_count
            lines.append(f'{prom}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{prom}_bucket{{le="+Inf"}} {hist["count"]}')
        lines.append(f"{prom}_sum {hist['sum']:g}")
        lines.append(f"{prom}_count {hist['count']}")
    return "\n".join(lines) + "\n"
