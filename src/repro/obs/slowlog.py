"""Bounded ring buffer of slow-request records.

Entries are plain JSON-ready dicts (span tree + explain payload,
written by :class:`repro.service.QueryService`); the deque's ``maxlen``
caps memory, so with ``slow_ms=0`` the log doubles as a
recent-requests trace buffer — which is how the serve tier makes a
single query's span tree retrievable through the stats request.

An entry may also be a zero-argument callable returning the dict:
rendering then happens on the (rare) read path instead of per
request, which keeps the ``slow_ms=0`` record cost to one deque
append on the serving hot path.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Callable, Dict, List, Union

Entry = Union[Dict[str, Any], Callable[[], Dict[str, Any]]]


class SlowLog:
    """Thread-safe fixed-capacity record ring (oldest evicted first)."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self.capacity = capacity
        self._entries: deque = deque(maxlen=capacity)
        self._lock = threading.Lock()

    def record(self, entry: Entry) -> None:
        with self._lock:
            self._entries.append(entry)

    def entries(self) -> List[Dict[str, Any]]:
        with self._lock:
            return [e() if callable(e) else e for e in self._entries]

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
