"""Span-based phase tracing with context-local propagation.

A :class:`Trace` is a tree of named, timed :class:`Span`\\ s recording
how one request decomposed into pipeline phases (``parse → compile →
annotate → trim → enumerate``), each carrying tags such as
``cached=True``.  The active trace travels in a :mod:`contextvars`
variable, so deep pipeline code (the compiler, the annotator) opens
spans with the module-level :func:`span` without threading a handle
through every signature::

    with span("annotate", cached=False):
        ...

When no trace is active — the facade used directly with observability
off — :func:`span` returns a shared null context manager and the cost
is one ContextVar read, which is what keeps disabled-mode overhead
within the bench_obs bar.  :func:`add_span` attaches an
already-measured duration post hoc (used when a cache hit replaces the
real work, so the tree still shows the phase with ``cached=True``).

Traces are deliberately per-thread: one request is prepared entirely on
one thread, and the single-flight cache builder publishes its spans to
whichever request thread ran the build.
"""

from __future__ import annotations

import time
from contextvars import ContextVar
from typing import Any, Dict, List, Optional


class Span:
    """One named, timed phase; children are sub-phases."""

    __slots__ = ("name", "duration_s", "tags", "children")

    def __init__(self, name: str, **tags: Any) -> None:
        self.name = name
        self.duration_s = 0.0
        self.tags: Dict[str, Any] = tags
        self.children: List[Span] = []

    def tag(self, **tags: Any) -> "Span":
        self.tags.update(tags)
        return self

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "duration_ms": round(self.duration_s * 1000.0, 3),
        }
        if self.tags:
            out["tags"] = dict(self.tags)
        if self.children:
            out["children"] = [c.to_dict() for c in self.children]
        return out


class _NullSpan:
    """Absorbs ``tag`` calls when tracing is off."""

    __slots__ = ()
    name = ""
    duration_s = 0.0
    tags: Dict[str, Any] = {}
    children: List[Span] = []

    def tag(self, **tags: Any) -> "_NullSpan":
        return self


NULL_SPAN = _NullSpan()


class _SpanCtx:
    """Context manager that opens a span on a trace's stack."""

    __slots__ = ("_trace", "_span", "_t0")

    def __init__(self, trace: "Trace", span_: Span) -> None:
        self._trace = trace
        self._span = span_
        self._t0 = 0.0

    def __enter__(self) -> Span:
        trace = self._trace
        parent = trace._stack[-1] if trace._stack else None
        if parent is not None:
            parent.children.append(self._span)
        else:
            trace.spans.append(self._span)
        trace._stack.append(self._span)
        self._t0 = time.perf_counter()
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.duration_s = time.perf_counter() - self._t0
        self._trace._stack.pop()


class _NullCtx:
    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_CTX = _NullCtx()


class Trace:
    """The span tree for one request (single-threaded by design)."""

    __slots__ = ("spans", "_stack")

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self._stack: List[Span] = []

    def span(self, name: str, **tags: Any) -> _SpanCtx:
        return _SpanCtx(self, Span(name, **tags))

    def add_span(self, name: str, duration_s: float, **tags: Any) -> Span:
        """Attach an already-measured phase (e.g. a cache hit)."""
        span_ = Span(name, **tags)
        span_.duration_s = duration_s
        parent = self._stack[-1] if self._stack else None
        if parent is not None:
            parent.children.append(span_)
        else:
            self.spans.append(span_)
        return span_

    def timings(self) -> Dict[str, float]:
        """Top-level durations summed by span name (seconds)."""
        out: Dict[str, float] = {}
        for span_ in self.spans:
            out[span_.name] = out.get(span_.name, 0.0) + span_.duration_s
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {"spans": [s.to_dict() for s in self.spans]}


_current: ContextVar[Optional[Trace]] = ContextVar(
    "repro_trace", default=None
)


def current_trace() -> Optional[Trace]:
    return _current.get()


def activate(trace: Trace):
    """Make ``trace`` current; returns a token for :func:`deactivate`."""
    return _current.set(trace)


def deactivate(token) -> None:
    _current.reset(token)


def span(name: str, **tags: Any):
    """Open a span on the current trace, or a shared no-op when none."""
    trace = _current.get()
    if trace is None:
        return _NULL_CTX
    return trace.span(name, **tags)


def add_span(name: str, duration_s: float, **tags: Any) -> None:
    """Post-hoc attach to the current trace; silent no-op when none."""
    trace = _current.get()
    if trace is not None:
        trace.add_span(name, duration_s, **tags)
