""":class:`Database` — the cache-backed home of every façade query.

One ``Database`` owns

* a **graph registry** with monotone version bumps (re-registering a
  name invalidates every cached artifact of the old graph — the same
  scheme the batch service introduced, now shared with it);
* the **plan cache** (query text → parsed RPQ + graph-aligned
  :class:`~repro.core.compile.CompiledQuery`) and the **annotation
  cache** ((query, source) → saturated
  :class:`~repro.core.multi_target.MultiTargetShortestWalks`) — both
  thread-safe, single-flight :class:`~repro.service.cache.LRUCache`
  instances, so *interactive* callers get the same 2.6–3.3× repeat
  speedup the JSONL batch path measured;
* the **executor** behind :class:`~repro.api.query.Query`'s terminal
  methods: endpoint-shape resolution (pair / one-to-all / multi-source
  / all-pairs), per-bucket enumeration in the requested engine mode,
  cursor seeking, multiplicity annotation and DP counting.

The batched :class:`~repro.service.QueryService` and the classic
:class:`~repro.query.rpq.RPQ` convenience methods both delegate here,
so every entry point shares one execution path and one cache.

>>> from repro.api import Database
>>> from repro.workloads.fraud import example9_graph
>>> db = Database(example9_graph())
>>> rs = db.query("h* s (h | s)*").from_("Alix").to("Bob").run()
>>> rs.lam, len(rs.all())
(3, 4)
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.query import Query
from repro.api.result import ResultSet
from repro.api.rows import Cursor, Row
from repro.automata.ops import remove_epsilon
from repro.core.anywalk import any_walk_search
from repro.core.compile import compile_query
from repro.core.engine import DistinctShortestWalks
from repro.core.enumerate import enumerate_walks_recursive
from repro.core.multi_target import MultiTargetShortestWalks
from repro.core.restricted import (
    fallback_walks,
    restricted_filter,
    restricted_lam,
)
from repro.core.multiplicity import count_accepting_runs
from repro.core.simple import simple_eligible
from repro.core.walks import Walk
from repro.exceptions import QueryError
from repro.graph.database import Graph
from repro.live.delta import Delta, MutationBatch, ops_from_dicts
from repro.live.live_graph import LiveGraph, query_label_footprint
from repro.obs import Observability, Trace
from repro.obs import trace as obs_trace
from repro.query.plan import QueryPlan, analyze
from repro.query.rpq import RPQ
from repro.service.cache import LRUCache

_CONCRETE_MODES = ("iterative", "recursive", "memoryless")

#: Shared per-graph databases backing the classic one-shot entry
#: points (``RPQ.shortest_walks`` and friends): repeat interactive
#: calls on the same graph object hit the same caches.  The map is a
#: small LRU keyed by graph identity — a Database keeps its graph
#: alive, so an unbounded (or weak-keyed) map would retain every
#: graph ever queried; evicted graphs simply rebuild their caches on
#: the next convenience-API call.  Identity keys are safe because the
#: entry pins the graph: ids are unique among live objects.
_SHARED_CAPACITY = 16
_shared_lock = threading.Lock()
_shared: "OrderedDict[int, Tuple[Graph, Database]]" = OrderedDict()


@dataclass
class _GraphHandle:
    """A registered graph plus its monotonically increasing version."""

    name: str
    graph: Graph
    version: int
    #: Change-feed detach hook (LiveGraph entries only).
    unsubscribe: Any = None
    #: ``(plans, annotations)`` evicted by the last mutation batch —
    #: written by the database's own feed subscriber, read by
    #: :meth:`Database.mutate` for its result receipt.
    last_evictions: Tuple[int, int] = (0, 0)


@dataclass
class _Plan:
    """A plan-cache value: the compiled form of one query text."""

    rpq: RPQ
    compiled: Any  # CompiledQuery for the handle's graph.
    build_s: float
    #: ε-free compiled form for multiplicity counting, built lazily on
    #: the first ``with_multiplicity`` execution (benign write race:
    #: every thread computes the same value).
    count_compiled: Any = None
    #: ``(mentioned label names, uses_any)`` — what fine-grained
    #: invalidation intersects with a mutation batch's *new* labels
    #: (compilation drops transitions on labels absent from the
    #: alphabet it saw, and expands wildcards over that alphabet, so
    #: only label-universe growth can stale a plan).
    footprint: Any = None


@dataclass
class MutationResult:
    """Outcome of one :meth:`Database.mutate` call."""

    #: Receipt of the applied batch (op/label details).
    batch: MutationBatch
    #: Graph version after the call (bumped only by promote/compact).
    version: int
    #: True when this call promoted a plain ``Graph`` to a
    #: :class:`~repro.live.live_graph.LiveGraph` (full cache purge).
    promoted: bool = False
    #: True when the overlay was compacted (full cache purge).
    compacted: bool = False
    #: Cache entries evicted by fine-grained label intersection.
    evicted_plans: int = 0
    evicted_annotations: int = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            **self.batch.summary(),
            "version": self.version,
            "promoted": self.promoted,
            "compacted": self.compacted,
            "evicted_plans": self.evicted_plans,
            "evicted_annotations": self.evicted_annotations,
        }


@dataclass
class _Bucket:
    """One (source, target) cell of a shaped result stream."""

    source_input: Hashable  # Original designator (for name-resolving APIs).
    source_id: int
    source_name: Hashable
    target_id: int
    target_name: Hashable
    mt: MultiTargetShortestWalks
    lam: int
    states: Any  # FrozenSet[int] — the target's start-state certificate.
    #: Restricted-semantics extras (trails/simple only): the
    #: unrestricted walk λ (``lam`` is then rλ) and the execution
    #: regime — ``"filter"`` (λ-walk stream + predicate) or
    #: ``"fallback"`` (guided product-DFS at rλ > λ).
    walk_lam: Optional[int] = None
    rkind: Optional[str] = None


class Database:
    """A graph registry + shared caches + the façade query executor.

    ``Database(graph)`` registers ``graph`` under ``name`` (default
    ``"default"``); more graphs can be added with :meth:`register` and
    selected per query via :meth:`~repro.api.query.Query.on`.

    ``annotation_cache_size=0`` turns the database cold: pair-shaped
    shortest queries fall back to the early-stopping single-pair
    engine (whose ``auto`` mode includes the paper's simple-setting
    fast path) and nothing is retained between calls — the
    configuration the service benchmark compares against.
    """

    def __init__(
        self,
        graph: Optional[Graph] = None,
        *,
        name: str = "default",
        plan_cache_size: int = 256,
        annotation_cache_size: int = 128,
        default_mode: str = "memoryless",
        warm: bool = True,
        obs: Optional["Observability"] = None,
    ) -> None:
        if default_mode not in _CONCRETE_MODES:
            raise QueryError(
                f"default_mode must be a concrete engine mode, "
                f"got {default_mode!r}"
            )
        #: Observability bundle.  ``None`` (the default for direct
        #: façade use) means fully off: no registry writes, no trace
        #: activation — the uninstrumented baseline bench_obs measures.
        self._obs = obs
        self._metrics = (
            obs.registry if (obs is not None and obs.enabled) else None
        )
        if self._metrics is not None:
            self._metrics.register_collector(self._cache_collector)
            self._c_evicted_plans = self._metrics.counter(
                "cache.plan_cache.footprint_evictions"
            )
            self._c_evicted_annotations = self._metrics.counter(
                "cache.annotation_cache.footprint_evictions"
            )
        self._graphs: Dict[str, _GraphHandle] = {}
        self._graphs_lock = threading.Lock()
        # Per-name WAL writers (durable entries only; see
        # register_durable).  Guarded by _graphs_lock.
        self._wal_writers: Dict[str, Any] = {}
        # Database-wide monotone version counter — never reset, not
        # even across unregister/register cycles, so a stale in-flight
        # cache build can never collide with a fresh key.
        self._next_version = 0
        self._plan_cache: LRUCache[Tuple, _Plan] = LRUCache(plan_cache_size)
        self._annotation_cache: LRUCache[
            Tuple, MultiTargetShortestWalks
        ] = LRUCache(annotation_cache_size)
        self.default_mode = default_mode
        self._build_lock = threading.Lock()
        self._plan_build_s = 0.0
        self._annotation_build_s = 0.0
        if graph is not None:
            self.register(name, graph, warm=warm)

    @classmethod
    def for_graph(cls, graph: Graph) -> "Database":
        """The shared database of ``graph`` (created on first use).

        This is what makes the classic one-shot entry points cache
        across calls: every façade-routed query on the same graph
        object lands in the same plan/annotation caches.
        """
        key = id(graph)
        with _shared_lock:
            entry = _shared.get(key)
            if entry is not None and entry[0] is graph:
                _shared.move_to_end(key)
                return entry[1]
        # Construct outside the lock — registration warms the graph's
        # O(|D|) CSR indexes, which must not serialize lookups for
        # unrelated graphs.  A racing thread may build a duplicate;
        # the double-check below keeps exactly one.
        db = cls(graph)
        with _shared_lock:
            entry = _shared.get(key)
            if entry is not None and entry[0] is graph:
                _shared.move_to_end(key)
                return entry[1]
            _shared[key] = (graph, db)
            _shared.move_to_end(key)
            while len(_shared) > _SHARED_CAPACITY:
                _shared.popitem(last=False)
            return db

    # -- graph registry ------------------------------------------------------

    def register(
        self,
        name: str,
        graph: Union[Graph, LiveGraph],
        warm: bool = True,
    ) -> int:
        """Register (or replace) a graph under ``name``; returns its
        version.  Replacing bumps the version, which invalidates every
        cached plan and annotation of the old graph.  With
        ``warm=True`` the graph's lazy CSR indexes are built now, on
        the caller's thread.  Registering a
        :class:`~repro.live.live_graph.LiveGraph` makes the entry
        mutable through :meth:`mutate` without the one-time promotion
        purge; the database subscribes to the graph's change feed, so
        even direct ``LiveGraph.apply`` calls keep these caches
        coherent (the eviction subscriber is registered before any
        standing query can be, and feed delivery is in subscription
        order)."""
        stale_writer = None
        with self._graphs_lock:
            self._next_version += 1
            version = self._next_version
            old = self._graphs.get(name)
            replacing = old is not None
            # A durable entry keeps its writer across *re*-registration
            # of the same LiveGraph object (the compaction path in
            # _on_mutation does exactly that); replacing the name with
            # a different graph orphans the old log — close it.
            if old is not None and old.graph is not graph:
                stale_writer = self._wal_writers.pop(name, None)
            handle = _GraphHandle(name, graph, version)
            self._graphs[name] = handle
            # Swap the feed subscription inside the registry lock so
            # two interleaved re-registers cannot leave a stale
            # handle's eviction subscriber attached forever (lock
            # order is registry → graph feed; nothing takes them in
            # reverse).  front=True keeps eviction ahead of user-level
            # subscribers even across compaction re-registrations.
            if old is not None and old.unsubscribe is not None:
                old.unsubscribe()
            if isinstance(graph, LiveGraph):
                handle.unsubscribe = graph.subscribe(
                    lambda batch: self._on_mutation(handle, batch),
                    front=True,
                )
                if self._metrics is not None:
                    # Idempotent across compaction re-registration of
                    # the same LiveGraph object.
                    graph.attach_metrics(self._metrics)
        if stale_writer is not None:
            if isinstance(old.graph, LiveGraph):
                old.graph.detach_wal()
            stale_writer.close()
        if replacing:
            # Purge entries of every *older* version of this graph — a
            # racing query may already have inserted entries for the
            # new version, and those are valid.
            def stale(key) -> bool:
                return key[0] == name and key[1] != version

            self._plan_cache.drop_where(stale)
            self._annotation_cache.drop_where(stale)
        if warm:
            graph.warm_indexes()
        return version

    def unregister(self, name: str) -> None:
        """Remove a graph and purge its cached artifacts.

        A durable entry's WAL writer is flushed, fsync'd and closed
        (its hook detached), so the log ends on a clean frame.
        """
        with self._graphs_lock:
            handle = self._graphs.get(name)
            if handle is None:
                raise QueryError(f"unknown graph {name!r}")
            del self._graphs[name]
            if handle.unsubscribe is not None:
                handle.unsubscribe()
            writer = self._wal_writers.pop(name, None)
        if writer is not None:
            if isinstance(handle.graph, LiveGraph):
                handle.graph.detach_wal()
            writer.close()
        self._plan_cache.drop_where(lambda k: k[0] == name)
        self._annotation_cache.drop_where(lambda k: k[0] == name)

    # -- durability (repro.wal) ---------------------------------------------

    def register_durable(
        self,
        name: str,
        wal_dir: str,
        *,
        graph: Optional[Graph] = None,
        sync: str = "group",
        group_window_ms: float = 50.0,
        warm: bool = True,
    ) -> int:
        """Register a WAL-backed :class:`LiveGraph` under ``name``.

        ``wal_dir`` is this graph's durability home (one directory per
        graph).  When it already holds durable state, that state
        **wins**: it is recovered (latest valid snapshot + tail
        replay, torn tail truncated) and ``graph`` is ignored — so a
        restarted process can pass its bootstrap graph unconditionally
        and still resume where the log left off.  A fresh directory is
        seeded from ``graph`` (a snapshot at LSN 0; ``None`` starts
        empty).  Vertex names of a durable graph must be JSON scalars
        (str/int/float/bool/None) — anything else raises
        :class:`~repro.exceptions.WalError` at commit time.

        Every later mutation — :meth:`mutate`, direct
        ``LiveGraph.apply``/``compact`` — is appended to the log
        *before* it is applied (see :meth:`LiveGraph.attach_wal`);
        compactions also write a snapshot at their LSN.  ``sync`` and
        ``group_window_ms`` select the fsync policy (see
        :class:`repro.wal.WalWriter`).
        """
        from repro.wal.recovery import recover as _recover
        from repro.wal.snapshot import list_snapshots, write_snapshot
        from repro.wal.writer import LOG_NAME, WalWriter

        import os

        os.makedirs(wal_dir, exist_ok=True)
        fresh = not list_snapshots(wal_dir) and not os.path.exists(
            os.path.join(wal_dir, LOG_NAME)
        )
        if fresh:
            if isinstance(graph, LiveGraph):
                from repro.exceptions import WalError

                raise WalError(
                    "bootstrap a durable entry from an immutable Graph "
                    "(LiveGraph.to_graph()), not a LiveGraph — the "
                    "overlay's edge-id history is not reconstructible "
                    "from a snapshot"
                )
            base = graph if graph is not None else Graph((), (), (), (), ())
            # Seed the directory so recovery (and followers) see the
            # bootstrap state; this also validates the vertex names.
            write_snapshot(wal_dir, base, 0)
            live = LiveGraph(base)
            start_lsn, start_offset = 0, 0
        else:
            state = _recover(wal_dir)
            live = state.graph
            start_lsn, start_offset = state.last_lsn, state.valid_offset
        writer = WalWriter(
            wal_dir,
            sync=sync,
            group_window_ms=group_window_ms,
            start_lsn=start_lsn,
            start_offset=start_offset,
            metrics=self._metrics,
        )
        live.attach_wal(writer)
        version = self.register(name, live, warm=warm)
        with self._graphs_lock:
            self._wal_writers[name] = writer
        return version

    @classmethod
    def open(
        cls,
        wal_dir: str,
        *,
        graph: Optional[Graph] = None,
        name: str = "default",
        sync: str = "group",
        group_window_ms: float = 50.0,
        plan_cache_size: int = 256,
        annotation_cache_size: int = 128,
        default_mode: str = "memoryless",
        warm: bool = True,
    ) -> "Database":
        """A database whose ``name`` graph is durable in ``wal_dir``.

        Shorthand for ``Database()`` + :meth:`register_durable` — the
        durable analogue of ``Database(graph)``.  Existing durable
        state in ``wal_dir`` wins over ``graph`` (see
        :meth:`register_durable`); close with :meth:`close` (or rely
        on recovery: the log is crash-consistent at every moment).
        """
        db = cls(
            plan_cache_size=plan_cache_size,
            annotation_cache_size=annotation_cache_size,
            default_mode=default_mode,
        )
        db.register_durable(
            name,
            wal_dir,
            graph=graph,
            sync=sync,
            group_window_ms=group_window_ms,
            warm=warm,
        )
        return db

    @classmethod
    def recover(
        cls,
        wal_dir: str,
        *,
        name: str = "default",
        plan_cache_size: int = 256,
        annotation_cache_size: int = 128,
        default_mode: str = "memoryless",
        warm: bool = True,
    ) -> "Database":
        """Recover ``wal_dir`` into a database **without** a writer.

        Read-only with respect to durability: the recovered graph is
        queryable (and even mutable in memory), but nothing new is
        logged — use :meth:`open` to recover *and* continue the log.
        The recovery geometry is exposed as ``db.last_recovery``
        (a :class:`repro.wal.RecoveredState`).
        """
        from repro.wal.recovery import recover as _recover

        state = _recover(wal_dir)
        db = cls(
            plan_cache_size=plan_cache_size,
            annotation_cache_size=annotation_cache_size,
            default_mode=default_mode,
        )
        db.register(name, state.graph, warm=warm)
        db.last_recovery = state
        return db

    def wal_writer(self, name: Optional[str] = None):
        """The WAL writer of a durable entry, or ``None``."""
        handle = self._handle(name)
        with self._graphs_lock:
            return self._wal_writers.get(handle.name)

    def close(self) -> None:
        """Flush, fsync and close every durable entry's WAL writer.

        Idempotent.  The database stays usable for reads; further
        mutations on a previously durable graph raise
        :class:`~repro.exceptions.WalError` (the attached hook's
        writer is closed) rather than silently going undurable.
        """
        with self._graphs_lock:
            writers = list(self._wal_writers.values())
            self._wal_writers = {}
        for writer in writers:
            writer.close()

    def _on_mutation(
        self, handle: _GraphHandle, batch: MutationBatch
    ) -> None:
        """Change-feed subscriber: fine-grained label-footprint eviction.

        Runs synchronously inside every ``LiveGraph.apply`` (and
        ``compact``) on the registered graph — before user-level
        subscribers such as standing queries, which therefore always
        observe a coherent cache.  A cached *plan* is stale only when
        the batch grew the label universe into labels the plan's
        automaton mentions (or the plan compiled a wildcard over the
        old alphabet); a cached *annotation* is stale whenever its
        automaton can fire on any label the batch touched.  A
        **compaction** receipt renumbers edge ids, where label
        reasoning does not apply: it answers with a re-registration —
        version bump, full purge of this graph's entries — so even a
        direct ``LiveGraph.compact()`` call (outside
        :meth:`Database.mutate`) keeps the caches coherent.
        """
        graph_name = handle.name
        if batch.compaction:
            self.register(graph_name, handle.graph, warm=False)
            handle.last_evictions = (0, 0)
            return

        def plan_affected(key, plan: _Plan) -> bool:
            if key[0] != graph_name:
                return False
            if plan.footprint is None:  # Unknown footprint: be safe.
                return True
            names, uses_any = plan.footprint
            if uses_any:
                return bool(batch.new_labels)
            return bool(names & batch.new_labels)

        def annotation_affected(key, mt: MultiTargetShortestWalks) -> bool:
            if key[0] != graph_name:
                return False
            fp = getattr(mt, "_live_footprint", None)
            if fp is None:
                fp = query_label_footprint(mt.automaton)
                mt._live_footprint = fp
            names, uses_any = fp
            if uses_any:
                return bool(batch.touched_labels)
            return bool(names & batch.touched_labels)

        plans = self._plan_cache.drop_where_item(plan_affected)
        annotations = self._annotation_cache.drop_where_item(
            annotation_affected
        )
        handle.last_evictions = (plans, annotations)
        if self._metrics is not None:
            if plans:
                self._c_evicted_plans.inc(plans)
            if annotations:
                self._c_evicted_annotations.inc(annotations)

    # -- incremental mutation (repro.live) -----------------------------------

    def live(self, name: Optional[str] = None) -> LiveGraph:
        """The :class:`LiveGraph` registered under ``name``.

        Raises :class:`~repro.exceptions.QueryError` when the entry is
        a plain immutable :class:`Graph` (call :meth:`mutate` once, or
        register a ``LiveGraph``, to make it mutable).
        """
        graph = self._handle(name).graph
        if not isinstance(graph, LiveGraph):
            raise QueryError(
                f"graph {name or 'default'!r} is immutable; register a "
                "LiveGraph or call mutate() to promote it"
            )
        return graph

    def mutate(
        self,
        name_or_ops,
        ops: Optional[Sequence] = None,
        *,
        compact: Any = "auto",
    ) -> MutationResult:
        """Apply a mutation batch with fine-grained cache invalidation.

        Call as ``mutate(ops)`` (sole-graph databases) or
        ``mutate(name, ops)``.  ``ops`` is a sequence of
        :mod:`repro.live.delta` op objects and/or their wire-form
        dictionaries (``{"op": "add_edge", ...}``).

        A plain immutable graph is *promoted* to a
        :class:`~repro.live.live_graph.LiveGraph` in place on first
        mutation — a version bump, so that first call purges the
        graph's cached artifacts wholesale.  Every later batch evicts
        **only** the cached plans and annotations whose label
        footprint intersects the batch's labels: writes on unrelated
        labels keep the annotation cache warm (the no-reindexing
        invariant of :mod:`repro.live` is what makes the retained
        entries remain valid).

        ``compact`` — ``"auto"`` (default) compacts the overlay when
        its :attr:`~repro.live.live_graph.LiveGraph.delta_ratio`
        crosses the graph's threshold, ``True`` forces it, ``False``
        suppresses it.  Compaction renumbers edge ids, so it also
        bumps the version and purges the graph's entries (and
        invalidates outstanding cursors).

        Concurrency model: mutations are atomic per batch, but reads
        racing a batch on other threads are **not** isolated — a query
        mid-flight while ``mutate`` commits may capture flat views
        from both epochs (the hot loops read several array properties,
        each materialized independently), and an annotation *build*
        racing the batch may land in the cache after the eviction
        pass.  The sanctioned concurrent usage is the service's
        barrier batches (reads before a mutation finish first) or any
        other external read/write serialization; a compaction
        additionally invalidates outstanding pagination cursors, which
        clients must discard — the cursor shape checks catch most
        stale resumes as :class:`~repro.exceptions.QueryError`, but a
        renumbered cursor that happens to stay shape-valid is not
        detected.
        """
        if ops is None:
            name, op_seq = None, name_or_ops
        else:
            name, op_seq = name_or_ops, ops
        # Accept the JSONL wire vocabulary as aliases so Python
        # callers can copy documented request values verbatim; reject
        # anything else rather than silently never compacting.
        if compact == "always":
            compact = True
        elif compact == "never":
            compact = False
        if not (compact is True or compact is False or compact == "auto"):
            raise QueryError(
                f"compact must be True/False/'auto' (or the wire "
                f"aliases 'always'/'never'), got {compact!r}"
            )
        parsed: List[Delta] = [
            op if not isinstance(op, dict) else ops_from_dicts([op])[0]
            for op in op_seq
        ]
        handle = self._handle(name)
        promoted = False
        if not isinstance(handle.graph, LiveGraph):
            live = LiveGraph(handle.graph)
            # Promotion is re-registration: version bump + full purge.
            # (Cached plans hold a CompiledQuery whose graph identity
            # is the old immutable object — they cannot be reused.)
            self.register(handle.name, live, warm=False)
            handle = self._handle(handle.name)
            promoted = True
        live = handle.graph
        graph_name = handle.name
        # The registered feed subscriber (:meth:`_on_mutation`) evicts
        # synchronously inside apply() and records the counts.
        batch = live.apply(parsed)
        evicted_plans, evicted_annotations = handle.last_evictions

        compacted = False
        if compact is True or (
            compact == "auto"
            and live.delta_ratio >= live.compact_threshold
        ):
            # The compaction receipt routes through the change feed:
            # _on_mutation answers with the version-bump purge and
            # re-registration, exactly as for a direct compact() call.
            live.compact()
            live.warm_indexes()
            handle = self._handle(graph_name)
            compacted = True

        return MutationResult(
            batch=batch,
            version=handle.version,
            promoted=promoted,
            compacted=compacted,
            evicted_plans=evicted_plans,
            evicted_annotations=evicted_annotations,
        )

    def version(self, name: str) -> int:
        """Current version of a registered graph."""
        return self._handle(name).version

    def graphs(self) -> Dict[str, int]:
        """Registered graph names and their versions."""
        with self._graphs_lock:
            return {
                name: handle.version
                for name, handle in self._graphs.items()
            }

    def _handle(self, name: Optional[str]) -> _GraphHandle:
        with self._graphs_lock:
            if name is None:
                if len(self._graphs) == 1:
                    return next(iter(self._graphs.values()))
                raise QueryError(
                    "query names no graph and the database has "
                    f"{len(self._graphs)} registered; select one with "
                    "'on'"
                )
            handle = self._graphs.get(name)
            if handle is None:
                raise QueryError(f"unknown graph {name!r}")
            return handle

    # -- the fluent entry point ----------------------------------------------

    def query(self, query: Union[str, RPQ]) -> Query:
        """Start building a query from an expression or compiled RPQ."""
        if isinstance(query, RPQ):
            return Query(self, query.expression, rpq=query)
        if not isinstance(query, str) or not query.strip():
            raise QueryError("query must be a non-empty RPQ expression")
        return Query(self, query)

    def multi_target(
        self,
        query: Union[str, RPQ],
        source: Hashable,
        *,
        cheapest: bool = False,
        graph_name: Optional[str] = None,
    ) -> MultiTargetShortestWalks:
        """A *fresh* multi-target engine for ``(query, source)``.

        The returned :class:`~repro.core.multi_target
        .MultiTargetShortestWalks` reuses the cached compiled plan but
        is an independent instance — unlike the annotation-cache entry
        the executor shares internally, its default eager
        ``walks_to`` (which mutates shared cursors) needs no
        coordination with other callers.  This is the sanctioned
        accessor for code that wants the saturated structures
        directly; everything else should go through :meth:`query`.
        """
        handle = self._handle(graph_name)
        if isinstance(query, RPQ):
            expression, construction, prebuilt = (
                query.expression, query.method, query,
            )
        else:
            expression, construction, prebuilt = query, "thompson", None
        plan, _ = self._plan_for(handle, construction, expression, prebuilt)
        return MultiTargetShortestWalks(
            handle.graph,
            plan.rpq.automaton,
            source,
            cheapest=cheapest,
            compiled=plan.compiled,
        )

    # -- cache plumbing ------------------------------------------------------

    def _plan_for(
        self,
        handle: _GraphHandle,
        construction: str,
        expression: str,
        prebuilt: Optional[RPQ] = None,
        restriction: str = "walks",
    ) -> Tuple[_Plan, bool]:
        # The restriction rides at the END of the key (the eviction
        # predicates pattern-match on key[0]=name / key[1]=version): a
        # cached plan never serves a different semantics, per-semantics
        # entries hit independently, and every invalidation path —
        # re-register, unregister, footprint eviction — covers all
        # semantics of a graph unchanged.
        key = (handle.name, handle.version, construction, expression,
               restriction)
        hit = True

        def build() -> _Plan:
            nonlocal hit
            hit = False
            t0 = time.perf_counter()
            with obs_trace.span("parse", construction=construction):
                rpq_obj = (
                    prebuilt
                    if prebuilt is not None
                    else RPQ(expression, method=construction)
                )
            with obs_trace.span("compile"):
                cq = compile_query(handle.graph, rpq_obj.automaton)
            build_s = time.perf_counter() - t0
            with self._build_lock:
                self._plan_build_s += build_s
            return _Plan(
                rpq=rpq_obj,
                compiled=cq,
                build_s=build_s,
                footprint=query_label_footprint(rpq_obj.automaton),
            )

        return self._plan_cache.get_or_create(key, build), hit

    def _annotation_for(
        self,
        handle: _GraphHandle,
        construction: str,
        expression: str,
        plan: _Plan,
        source_input: Hashable,
        source_id: int,
        cheapest: bool,
        restriction: str = "walks",
    ) -> Tuple[MultiTargetShortestWalks, bool]:
        """The saturated (query, source) annotation, cached.

        The cached object carries the CSR-packed annotation arrays and
        the shared trim cells (see :mod:`repro.datastructures.packed`):
        every cache hit serves per-target reads off the flat ``dist``
        array and enumerations off the packed cells — eager snapshots
        copy one cursor array, the memoryless mode shares the arrays
        read-only — with no per-hit dict materialization anywhere.

        The restriction suffixes the key (same rationale as
        :meth:`_plan_for`): a trails entry and a walks entry of the
        same (query, source) are separate cache lines, each carrying
        its own label footprint for mutation-time eviction, and a
        cached restricted result can never be served to a different
        semantics.
        """
        key = (
            handle.name,
            handle.version,
            construction,
            expression,
            source_id,
            cheapest,
            restriction,
        )
        hit = True

        def build() -> MultiTargetShortestWalks:
            nonlocal hit
            hit = False
            t0 = time.perf_counter()
            # The caller's original source designator, not the
            # resolved id: the constructor resolves names itself, and
            # on graphs with integer vertex *names* an id would
            # resolve differently.
            mt = MultiTargetShortestWalks(
                handle.graph,
                plan.rpq.automaton,
                source_input,
                cheapest=cheapest,
                compiled=plan.compiled,
            ).preprocess()
            build_s = time.perf_counter() - t0
            with self._build_lock:
                self._annotation_build_s += build_s
            return mt

        return self._annotation_cache.get_or_create(key, build), hit

    def _count_cq(self, plan: _Plan, graph: Graph):
        cq = plan.count_compiled
        if cq is None:
            automaton = plan.rpq.automaton
            if automaton.has_epsilon:
                automaton = remove_epsilon(automaton)
            cq = compile_query(graph, automaton)
            plan.count_compiled = cq
        return cq

    # -- statistics ----------------------------------------------------------

    def cache_stats(self) -> Dict[str, Any]:
        """Hit/miss/eviction counters and sizes of both caches."""
        return {
            "plan_cache": {
                "capacity": self._plan_cache.capacity,
                "entries": len(self._plan_cache),
                **self._plan_cache.stats.as_dict(),
            },
            "annotation_cache": {
                "capacity": self._annotation_cache.capacity,
                "entries": len(self._annotation_cache),
                **self._annotation_cache.stats.as_dict(),
            },
        }

    def _cache_collector(self) -> Dict[str, Dict[str, float]]:
        """Pull-style metrics export of both caches (hit/miss/eviction).

        Registered with the metrics registry at construction; the LRU
        caches keep their own counters, so exporting on snapshot
        avoids double-writing every cache touch.
        """
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        for label, cache in (
            ("plan_cache", self._plan_cache),
            ("annotation_cache", self._annotation_cache),
        ):
            stats = cache.stats.as_dict()
            counters[f"cache.{label}.hits"] = stats["hits"]
            counters[f"cache.{label}.misses"] = stats["misses"]
            counters[f"cache.{label}.evictions"] = stats["evictions"]
            gauges[f"cache.{label}.entries"] = len(cache)
            gauges[f"cache.{label}.capacity"] = cache.capacity
        return {"counters": counters, "gauges": gauges}

    def build_seconds(self) -> Tuple[float, float]:
        """Cumulative (plan, annotation) cache-miss build time."""
        with self._build_lock:
            return self._plan_build_s, self._annotation_build_s

    def stats(self) -> Dict[str, Any]:
        """Cache statistics, build times and the graph registry."""
        plan_s, ann_s = self.build_seconds()
        return {
            **self.cache_stats(),
            "plan_build_s": round(plan_s, 6),
            "annotation_build_s": round(ann_s, 6),
            "graphs": self.graphs(),
        }

    # -- execution -----------------------------------------------------------

    def _resolve_mode(self, mode: str, cheapest: bool) -> str:
        resolved = self.default_mode if mode == "auto" else mode
        if cheapest and resolved == "recursive":
            raise QueryError(
                "cheapest semantics does not support mode='recursive' "
                "(the recursive enumerator is length-budgeted only); "
                "use 'auto', 'iterative' or 'memoryless'"
            )
        return resolved

    def _run(self, q: Query) -> ResultSet:
        # The deadline is anchored *before* preprocessing: a request
        # whose plan/annotation build consumes the budget times out on
        # its first pagination check instead of getting a fresh full
        # budget for the enumeration.
        deadline = (
            time.perf_counter() + q._timeout_ms / 1000.0
            if q._timeout_ms is not None
            else None
        )
        handle = self._handle(q._graph_name)
        if self._metrics is not None:
            # One trace per request: preprocessing spans (parse,
            # compile, annotate, trim) open against the contextvar
            # inside _prepare; the enumerate span is attached post hoc
            # by ResultSet when pagination finishes (enumeration is
            # lazy, so it happens after this frame returns).
            trace = Trace()
            token = obs_trace.activate(trace)
            try:
                rows, lam, stats = self._prepare(q, handle)
            finally:
                obs_trace.deactivate(token)
            stats["trace"] = trace
        else:
            rows, lam, stats = self._prepare(q, handle)
        return ResultSet(
            rows,
            lam=lam,
            stats=stats,
            limit=q._limit,
            offset=q._offset,
            deadline=deadline,
            fallback_cursor=q._cursor,
        )

    def _prepare(
        self, q: Query, handle: _GraphHandle
    ) -> Tuple[Iterator[Tuple[Row, Cursor]], Optional[int], Dict[str, Any]]:
        shape = q._shape()
        graph = handle.graph
        cheapest = q._semantics == "cheapest"
        restriction = q._restriction
        if cheapest and restriction != "walks":
            raise QueryError(
                "cheapest semantics supports the unrestricted 'walks' "
                f"form only, not {restriction!r} (cost-minimal trails/"
                "simple paths are a different problem; any-walk is "
                "length-based)"
            )
        plan, plan_hit = self._plan_for(
            handle, q._construction, q._expression, q._rpq, restriction
        )
        cached: Dict[str, bool] = {"plan": plan_hit}
        timings: Dict[str, float] = {}
        stats: Dict[str, Any] = {"cached": cached, "timings": timings}
        count_cq = (
            self._count_cq(plan, graph) if q._multiplicity else None
        )

        if restriction == "any":
            rows, lam = self._prepare_any(
                q, handle, plan, shape, count_cq, cached, timings
            )
            return rows, lam, stats

        if shape[0] == "pair":
            rows, lam = self._prepare_pair(
                q, handle, plan, shape[1], shape[2], cheapest, count_cq,
                cached, timings, restriction,
            )
            return rows, lam, stats

        mode = self._resolve_mode(q._mode, cheapest)
        buckets, lam = self._buckets(
            q, handle, plan, shape, cheapest, cached, timings, restriction
        )
        rows = self._bucketed_rows(
            q, handle, plan, buckets, mode, cheapest, count_cq, restriction
        )
        return rows, lam, stats

    # -- pair shape ----------------------------------------------------------

    def _prepare_pair(
        self,
        q: Query,
        handle: _GraphHandle,
        plan: _Plan,
        source: Hashable,
        target: Hashable,
        cheapest: bool,
        count_cq: Any,
        cached: Dict[str, bool],
        timings: Dict[str, float],
        restriction: str = "walks",
    ) -> Tuple[Iterator[Tuple[Row, Cursor]], Optional[int]]:
        graph = handle.graph
        source_id = graph.resolve_vertex(source)
        target_id = graph.resolve_vertex(target)
        cursor = q._cursor
        if cursor is not None:
            _check_cursor_edges(graph, cursor.edges, target_id)
        resume = cursor.edges if cursor is not None else None
        restricted = restriction != "walks"

        if not cheapest and self._annotation_cache.capacity == 0:
            # Cold per-request execution: the ordinary single-pair
            # engine, early-stopping Annotate and all ("auto" here is
            # the engine's own auto, including fast-path detection).
            # The compiled plan is still injected when the plan cache
            # has one.  Cursors resume by replaying the prefix.
            t0 = time.perf_counter()
            engine = DistinctShortestWalks(
                graph,
                plan.rpq.automaton,
                source,
                target,
                mode=q._mode,
                compiled=plan.compiled,
            )
            lam = engine.lam  # Triggers preprocessing.
            timings["annotate"] = time.perf_counter() - t0
            cached["annotation"] = False
            if lam is None:
                return iter(()), None
            walk_lam, rkind = lam, None
            if restricted:
                # enumerate() is re-callable, so the probe's partial
                # consumption does not disturb the stream built below.
                info = restricted_lam(
                    graph, plan.compiled, source_id, target_id, lam,
                    restriction, engine.enumerate,
                )
                if info is None:
                    return iter(()), None
                lam, rkind = info
            _check_cursor_budget(graph, cursor, lam, cheapest)
            if rkind == "fallback":
                walks = _skip_past_cursor(
                    fallback_walks(
                        graph, plan.compiled, source_id, target_id,
                        restriction, lam,
                    ),
                    resume,
                )
            else:
                walks = _skip_past_cursor(engine.enumerate(), resume)
                if rkind == "filter":
                    # rλ == λ: every restricted output is itself an
                    # unrestricted output, so the underlying resume
                    # (and the budget check above) stay valid.
                    walks = restricted_filter(
                        graph, restriction, source_id, walks
                    )
        else:
            mode = self._resolve_mode(q._mode, cheapest)
            t0 = time.perf_counter()
            mt, ann_hit = self._annotation_for(
                handle, q._construction, q._expression, plan,
                source, source_id, cheapest, restriction,
            )
            # From this query's perspective: build time on a miss,
            # single-flight wait time when another thread is building.
            timings["annotate"] = time.perf_counter() - t0
            cached["annotation"] = ann_hit
            if ann_hit:
                # The real annotate/trim spans were traced on the
                # building thread; a hit still shows the phase, tagged.
                obs_trace.add_span(
                    "annotate", timings["annotate"], cached=True
                )
            lam, states = mt.annotation.target_info(target_id)
            if lam is None:
                return iter(()), None
            walk_lam, rkind = lam, None
            if restricted:
                info = restricted_lam(
                    graph, plan.compiled, source_id, target_id, lam,
                    restriction,
                    lambda: mt.walks_to(target, memoryless=True),
                )
                if info is None:
                    return iter(()), None
                lam, rkind = info
            _check_cursor_budget(graph, cursor, lam, cheapest)
            if rkind == "fallback":
                walks = _skip_past_cursor(
                    fallback_walks(
                        graph, plan.compiled, source_id, target_id,
                        restriction, lam,
                    ),
                    resume,
                )
            else:
                walks = self._bucket_walks(
                    graph, mt, target, target_id, walk_lam, states, mode,
                    resume,
                )
                if rkind == "filter":
                    walks = restricted_filter(
                        graph, restriction, source_id, walks
                    )

        source_name = graph.vertex_name(source_id)
        target_name = graph.vertex_name(target_id)
        rows = _rows_of(
            walks, source_name, target_name, lam, False, count_cq
        )
        return rows, lam

    # -- any-walk shape ------------------------------------------------------

    def _prepare_any(
        self,
        q: Query,
        handle: _GraphHandle,
        plan: _Plan,
        shape: Tuple,
        count_cq: Any,
        cached: Dict[str, bool],
        timings: Dict[str, float],
    ) -> Tuple[Iterator[Tuple[Row, Cursor]], Optional[int]]:
        """The ``any`` semantics: one witness walk per (source, target).

        A plain early-exit BFS over the product (see
        :mod:`repro.core.anywalk`) — no trim/enumerate machinery, no
        annotation-cache entry (nothing worth retaining: the search is
        cheaper than a saturating annotation build), and the engine
        ``mode`` is irrelevant (there is nothing to enumerate).  Shapes
        mirror the shortest-walk semantics: per-target witnesses for
        the ``to_all`` forms, the super-source view (one row from the
        first caller-order source achieving the global minimum) for
        ``many_to_one``/``many_to_all``.  Pagination still works — a
        bucket's "stream" is its single witness — and cursors follow
        the same shape rules as the bucketed executor.
        """
        graph = handle.graph
        cq = plan.compiled
        cursor = q._cursor
        cached["annotation"] = False
        kind = shape[0]
        t0 = time.perf_counter()

        if kind == "pair":
            sid = graph.resolve_vertex(shape[1])
            tid = graph.resolve_vertex(shape[2])
            if cursor is not None:
                _check_cursor_edges(graph, cursor.edges, tid)
            hit = any_walk_search(cq, sid, (tid,)).get(tid)
            timings["annotate"] = time.perf_counter() - t0
            obs_trace.add_span(
                "annotate", timings["annotate"],
                semantics="any", cached=False,
            )
            if hit is None:
                return iter(()), None
            lam, edges = hit
            _check_cursor_budget(graph, cursor, lam, False)
            walks = _skip_past_cursor(
                iter((Walk.from_edges_unchecked(graph, edges, sid),)),
                cursor.edges if cursor is not None else None,
            )
            rows = _rows_of(
                walks, graph.vertex_name(sid), graph.vertex_name(tid),
                lam, False, count_cq,
            )
            return rows, lam

        #: Ordered (source_id, target_id, λ, edges) witness cells.
        entries: List[Tuple[int, int, int, Tuple[int, ...]]] = []
        global_lam: Optional[int] = None

        if kind == "one_to_all":
            sid = graph.resolve_vertex(shape[1])
            hits = any_walk_search(cq, sid)  # Saturating.
            entries = [
                (sid, t, hits[t][0], hits[t][1]) for t in sorted(hits)
            ]
        else:
            sources: List[int] = []
            seen_ids = set()
            if kind == "all_pairs":
                sources = list(graph.vertices())
            else:
                for s in shape[1]:
                    s_id = graph.resolve_vertex(s)
                    if s_id not in seen_ids:  # Dedupe, caller order.
                        seen_ids.add(s_id)
                        sources.append(s_id)

            if kind == "many_to_one":
                tid = graph.resolve_vertex(shape[2])
                best: Optional[Tuple[int, int, int, Tuple[int, ...]]] = None
                for s_id in sources:
                    hit = any_walk_search(cq, s_id, (tid,)).get(tid)
                    if hit is not None and (
                        best is None or hit[0] < best[2]
                    ):
                        best = (s_id, tid, hit[0], hit[1])
                if best is not None:
                    entries = [best]
                    global_lam = best[2]
            else:  # many_to_all / all_pairs: per-source saturation.
                results = [
                    (s_id, any_walk_search(cq, s_id)) for s_id in sources
                ]
                if kind == "many_to_all":
                    # Super-source view: per target, the first
                    # caller-order source achieving the minimal λ.
                    for t in sorted({t for _, h in results for t in h}):
                        best = None
                        for s_id, h in results:
                            if t in h and (
                                best is None or h[t][0] < best[2]
                            ):
                                best = (s_id, t, h[t][0], h[t][1])
                        entries.append(best)
                else:  # all_pairs: every reached pair, source-major.
                    for s_id, h in results:
                        entries.extend(
                            (s_id, t, h[t][0], h[t][1]) for t in sorted(h)
                        )
        timings["annotate"] = time.perf_counter() - t0
        obs_trace.add_span(
            "annotate", timings["annotate"], semantics="any", cached=False
        )

        cursor_sid = cursor_tid = None
        if cursor is not None:
            if cursor.target is None:
                raise QueryError(
                    "a cursor for a multi-bucket query must carry the "
                    "'target' (and, for multi-source shapes, 'source') "
                    "of the walk it points at"
                )
            cursor_tid = graph.resolve_vertex(cursor.target)
            if cursor.source is not None:
                cursor_sid = graph.resolve_vertex(cursor.source)
            _check_cursor_edges(graph, cursor.edges, cursor_tid)

        def gen() -> Iterator[Tuple[Row, Cursor]]:
            seeking = cursor is not None
            for s_id, t_id, lam_t, edges in entries:
                if seeking:
                    if t_id != cursor_tid or (
                        cursor_sid is not None and s_id != cursor_sid
                    ):
                        continue
                    seeking = False
                    _check_cursor_budget(graph, cursor, lam_t, False)
                    resume = cursor.edges
                else:
                    resume = None
                walks = _skip_past_cursor(
                    iter((Walk.from_edges_unchecked(graph, edges, s_id),)),
                    resume,
                )
                yield from _rows_of(
                    walks, graph.vertex_name(s_id),
                    graph.vertex_name(t_id), lam_t, True, count_cq,
                )
            if seeking:
                raise QueryError(
                    "cursor does not match any result bucket of this "
                    "query"
                )

        return gen(), global_lam

    # -- bucketed shapes -----------------------------------------------------

    def _buckets(
        self,
        q: Query,
        handle: _GraphHandle,
        plan: _Plan,
        shape: Tuple,
        cheapest: bool,
        cached: Dict[str, bool],
        timings: Dict[str, float],
        restriction: str = "walks",
    ) -> Tuple[Iterator[_Bucket], Optional[int]]:
        """Resolve a non-pair shape into its ordered bucket stream.

        Returns ``(buckets, lam)`` where ``lam`` is the global answer
        length for ``many_to_one`` (the virtual super-source λ) and
        ``None`` for the per-bucket shapes.  Under a trails/simple
        restriction every bucket carries rλ in ``lam`` (with the walk
        λ in ``walk_lam``); buckets whose pair admits *no* restricted
        walk vanish from the stream, and the ``many_to_one`` /
        ``many_to_all`` minima are taken over rλ — the walk-λ
        pre-filter would be unsound there, since the source with the
        shortest walk need not have the shortest trail.
        """
        graph = handle.graph
        cached["annotation"] = True
        restricted = restriction != "walks"

        def mt_for(source_input: Hashable, source_id: int):
            t0 = time.perf_counter()
            mt, hit = self._annotation_for(
                handle, q._construction, q._expression, plan,
                source_input, source_id, cheapest, restriction,
            )
            dt = time.perf_counter() - t0
            timings["annotate"] = timings.get("annotate", 0.0) + dt
            if not hit:
                cached["annotation"] = False
            else:
                obs_trace.add_span("annotate", dt, cached=True)
            return mt

        def bucket(source_input, source_id, mt, target_id) -> Optional[_Bucket]:
            lam_t, states = mt.annotation.target_info(target_id)
            if lam_t is None:
                return None
            walk_lam = rkind = None
            if restricted:
                info = restricted_lam(
                    graph, plan.compiled, source_id, target_id, lam_t,
                    restriction,
                    lambda: mt.walks_to(
                        graph.vertex_name(target_id), memoryless=True
                    ),
                )
                if info is None:
                    return None
                walk_lam = lam_t
                lam_t, rkind = info
            return _Bucket(
                source_input=source_input,
                source_id=source_id,
                source_name=graph.vertex_name(source_id),
                target_id=target_id,
                target_name=graph.vertex_name(target_id),
                mt=mt,
                lam=lam_t,
                states=states,
                walk_lam=walk_lam,
                rkind=rkind,
            )

        kind = shape[0]
        if kind == "one_to_all":
            source = shape[1]
            source_id = graph.resolve_vertex(source)
            mt = mt_for(source, source_id)
            buckets = (
                b
                for t in mt.reached_targets()
                if (b := bucket(source, source_id, mt, t)) is not None
            )
            return buckets, None

        if kind in ("many_to_one", "many_to_all"):
            sources: List[Tuple[Hashable, int]] = []
            seen_ids = set()
            for s in shape[1]:
                sid = graph.resolve_vertex(s)
                if sid not in seen_ids:  # Dedupe, keeping caller order.
                    seen_ids.add(sid)
                    sources.append((s, sid))
            mts = [(s, sid, mt_for(s, sid)) for s, sid in sources]

            if kind == "many_to_one":
                target_id = graph.resolve_vertex(shape[2])
                if restricted:
                    bs = [
                        b
                        for s, sid, mt in mts
                        if (b := bucket(s, sid, mt, target_id)) is not None
                    ]
                    if not bs:
                        return iter(()), None
                    global_lam = min(b.lam for b in bs)
                    return (
                        iter([b for b in bs if b.lam == global_lam]),
                        global_lam,
                    )
                lams = [
                    mt.annotation.target_info(target_id)[0]
                    for _, _, mt in mts
                ]
                reached = [lam for lam in lams if lam is not None]
                if not reached:
                    return iter(()), None
                global_lam = min(reached)
                buckets = (
                    b
                    for (s, sid, mt), lam_s in zip(mts, lams)
                    if lam_s == global_lam
                    if (b := bucket(s, sid, mt, target_id)) is not None
                )
                return buckets, global_lam

            # many_to_all: per target, only the sources achieving the
            # target's global minimum contribute (super-source view).
            all_targets = sorted(
                {t for _, _, mt in mts for t in mt.reached_targets()}
            )

            if restricted:

                def gen_restricted() -> Iterator[_Bucket]:
                    for t in all_targets:
                        bs = [
                            b
                            for s, sid, mt in mts
                            if (b := bucket(s, sid, mt, t)) is not None
                        ]
                        if not bs:
                            continue
                        lam_t = min(b.lam for b in bs)
                        for b in bs:
                            if b.lam == lam_t:
                                yield b

                return gen_restricted(), None

            def gen() -> Iterator[_Bucket]:
                for t in all_targets:
                    lams = [
                        mt.annotation.target_info(t)[0] for _, _, mt in mts
                    ]
                    lam_t = min(
                        (lam for lam in lams if lam is not None),
                        default=None,
                    )
                    if lam_t is None:
                        continue
                    for (s, sid, mt), lam_s in zip(mts, lams):
                        if lam_s == lam_t:
                            b = bucket(s, sid, mt, t)
                            if b is not None:
                                yield b

            return gen(), None

        assert kind == "all_pairs"
        cursor = q._cursor
        # Sources strictly before the cursor's bucket never contribute
        # to a resumed stream — skip them without building annotations.
        skip_below = -1
        if cursor is not None and cursor.source is not None:
            skip_below = graph.resolve_vertex(cursor.source)
        # Annotations are built eagerly (like the other shapes) so the
        # result set's cache/timing stats are valid before the stream
        # is consumed; the per-source structures land in the
        # annotation cache anyway under the default configuration.
        source_mts = [
            (graph.vertex_name(sid), sid)
            for sid in graph.vertices()
            if sid >= skip_below
        ]
        source_mts = [
            (name, sid, mt_for(name, sid)) for name, sid in source_mts
        ]

        def gen_all() -> Iterator[_Bucket]:
            for name, sid, mt in source_mts:
                for t in mt.reached_targets():
                    b = bucket(name, sid, mt, t)
                    if b is not None:
                        yield b

        return gen_all(), None

    def _bucketed_rows(
        self,
        q: Query,
        handle: _GraphHandle,
        plan: _Plan,
        buckets: Iterator[_Bucket],
        mode: str,
        cheapest: bool,
        count_cq: Any,
        restriction: str = "walks",
    ) -> Iterator[Tuple[Row, Cursor]]:
        graph = handle.graph
        cursor = q._cursor
        cursor_sid = cursor_tid = None
        if cursor is not None:
            if cursor.target is None:
                raise QueryError(
                    "a cursor for a multi-bucket query must carry the "
                    "'target' (and, for multi-source shapes, 'source') "
                    "of the walk it points at"
                )
            cursor_tid = graph.resolve_vertex(cursor.target)
            if cursor.source is not None:
                cursor_sid = graph.resolve_vertex(cursor.source)
            _check_cursor_edges(graph, cursor.edges, cursor_tid)

        def gen() -> Iterator[Tuple[Row, Cursor]]:
            seeking = cursor is not None
            for b in buckets:
                if seeking:
                    if b.target_id != cursor_tid or (
                        cursor_sid is not None
                        and b.source_id != cursor_sid
                    ):
                        continue
                    seeking = False
                    _check_cursor_budget(graph, cursor, b.lam, cheapest)
                    resume = cursor.edges
                else:
                    resume = None
                if b.rkind == "fallback":
                    walks = _skip_past_cursor(
                        fallback_walks(
                            graph, plan.compiled, b.source_id,
                            b.target_id, restriction, b.lam,
                        ),
                        resume,
                    )
                else:
                    walks = self._bucket_walks(
                        graph, b.mt, b.target_name, b.target_id,
                        b.walk_lam if b.rkind is not None else b.lam,
                        b.states, mode, resume,
                    )
                    if b.rkind == "filter":
                        walks = restricted_filter(
                            graph, restriction, b.source_id, walks
                        )
                yield from _rows_of(
                    walks, b.source_name, b.target_name, b.lam, True,
                    count_cq,
                )
            if seeking:
                raise QueryError(
                    "cursor does not match any result bucket of this "
                    "query"
                )

        return gen()

    def _bucket_walks(
        self,
        graph: Graph,
        mt: MultiTargetShortestWalks,
        target_input: Hashable,
        target_id: int,
        lam_t: int,
        states: Any,
        mode: str,
        resume: Optional[Tuple[int, ...]],
    ) -> Iterator[Walk]:
        """One bucket's walk stream in the requested engine mode.

        Memoryless seeks in O(λ) via ``NextOutput``; the eager modes
        replay the prefix (same DFS order, so tokens are portable
        across modes).
        """
        if mode == "memoryless":
            return mt.walks_to(
                target_input, memoryless=True, resume_after=resume
            )
        if mode == "recursive":
            iterator = enumerate_walks_recursive(
                graph, mt.trimmed.snapshot(), lam_t, target_id, states
            )
            return _skip_past_cursor(iterator, resume)
        iterator = mt.walks_to(target_input, snapshot=True)
        return _skip_past_cursor(iterator, resume)

    # -- non-enumerating terminals -------------------------------------------

    def _count(self, q: Query, method: str) -> int:
        if method not in ("enumerate", "dp"):
            raise QueryError(
                f"unknown count method {method!r}; "
                "expected 'enumerate' or 'dp'"
            )
        if method == "dp" and q._restriction != "walks":
            raise QueryError(
                "count(method='dp') applies to the 'walks' semantics "
                f"only, not {q._restriction!r}: Remark 17's memoized DP "
                "counts distinct shortest walks; restricted/any answer "
                "sets are counted by enumeration (method='enumerate')"
            )
        base = q.limit(None).offset(0).cursor(None).timeout_ms(None)
        if method == "enumerate":
            return sum(1 for _ in base.run())

        from repro.core.count import count_distinct_shortest

        handle = self._handle(base._graph_name)
        graph = handle.graph
        shape = base._shape()
        cheapest = base._semantics == "cheapest"
        plan, _ = self._plan_for(
            handle, base._construction, base._expression, base._rpq
        )
        cost_arr = graph.cost_array if cheapest else None
        cost_of = (lambda e: cost_arr[e]) if cost_arr is not None else None

        if (
            shape[0] == "pair"
            and not cheapest
            and self._annotation_cache.capacity == 0
        ):
            engine = DistinctShortestWalks(
                graph, plan.rpq.automaton, shape[1], shape[2],
                mode=base._mode, compiled=plan.compiled,
            )
            return engine.count(method="dp")

        cached: Dict[str, bool] = {}
        timings: Dict[str, float] = {}
        if shape[0] == "pair":
            source_id = graph.resolve_vertex(shape[1])
            target_id = graph.resolve_vertex(shape[2])
            mt, _ = self._annotation_for(
                handle, base._construction, base._expression, plan,
                shape[1], source_id, cheapest,
            )
            lam_t, states = mt.annotation.target_info(target_id)
            if lam_t is None:
                return 0
            return count_distinct_shortest(
                graph, mt.annotation, lam_t, target_id, states,
                cost_of=cost_of,
            )
        buckets, _ = self._buckets(
            base, handle, plan, shape, cheapest, cached, timings
        )
        return sum(
            count_distinct_shortest(
                graph, b.mt.annotation, b.lam, b.target_id, b.states,
                cost_of=cost_of,
            )
            for b in buckets
        )

    def _targets(self, q: Query) -> List[Tuple[Hashable, int]]:
        shape = q._shape()
        if shape[0] not in ("one_to_all", "many_to_all"):
            raise QueryError(
                "targets() applies to to_all() queries only; "
                f"this query's shape is {shape[0]!r}"
            )
        handle = self._handle(q._graph_name)
        cheapest = q._semantics == "cheapest"
        restriction = q._restriction
        if cheapest and restriction != "walks":
            raise QueryError(
                "cheapest semantics supports the unrestricted 'walks' "
                f"form only, not {restriction!r}"
            )
        plan, _ = self._plan_for(
            handle, q._construction, q._expression, q._rpq, restriction
        )
        if restriction == "any":
            # Witness λ per target equals the walk λ — saturating
            # any-walk searches, minimized over sources for to-all.
            graph = handle.graph
            if shape[0] == "one_to_all":
                sids = [graph.resolve_vertex(shape[1])]
            else:
                seen_ids: set = set()
                sids = []
                for s in shape[1]:
                    sid = graph.resolve_vertex(s)
                    if sid not in seen_ids:
                        seen_ids.add(sid)
                        sids.append(sid)
            best: Dict[int, int] = {}
            for sid in sids:
                for t, (lam_t, _) in any_walk_search(
                    plan.compiled, sid
                ).items():
                    if t not in best or lam_t < best[t]:
                        best[t] = lam_t
            return [
                (graph.vertex_name(t), best[t]) for t in sorted(best)
            ]
        buckets, _ = self._buckets(
            q, handle, plan, shape, cheapest, {}, {}, restriction
        )
        out: List[Tuple[Hashable, int]] = []
        for b in buckets:
            if not out or out[-1][0] != b.target_name:
                out.append((b.target_name, b.lam))
        return out

    def _explain(self, q: Query) -> QueryPlan:
        handle = self._handle(q._graph_name)
        shape = q._shape()
        cheapest = q._semantics == "cheapest"
        plan, plan_hit = self._plan_for(
            handle, q._construction, q._expression, q._rpq, q._restriction
        )
        qp = analyze(handle.graph, plan.rpq.automaton)
        cold_pair = (
            shape[0] == "pair"
            and not cheapest
            and self._annotation_cache.capacity == 0
        )
        if q._restriction == "any":
            resolved = "early-exit BFS"
            route = "any-walk witness search (annotation cache bypassed)"
        elif cold_pair:
            if q._mode == "auto" and simple_eligible(
                handle.graph, plan.rpq.automaton
            ):
                resolved = "auto (simple-setting fast path)"
            else:
                resolved = (
                    "auto (general engine)" if q._mode == "auto" else q._mode
                )
            route = "cold single-pair engine (annotation cache disabled)"
        else:
            resolved = self._resolve_mode(q._mode, cheapest)
            route = "cached multi-target annotation"
        if q._restriction in ("trails", "simple"):
            route += (
                "; restricted filter over the λ-walk stream, guided "
                "product-DFS fallback when rλ > λ"
            )
        qp.reasons.append(
            f"façade: shape {shape[0]!r}, semantics {q._semantics!r}"
            + (
                f", restriction {q._restriction!r}"
                if q._restriction != "walks"
                else ""
            )
            + (" + multiplicity" if q._multiplicity else "")
            + f", mode {q._mode!r} → {resolved}, via {route}"
        )
        qp.reasons.append(
            f"façade: plan cache {'hit' if plan_hit else 'miss'}; "
            f"annotation cache capacity "
            f"{self._annotation_cache.capacity}"
        )
        return qp

    def __repr__(self) -> str:
        return f"Database(graphs={self.graphs()!r})"


# -- module helpers ----------------------------------------------------------


def _rows_of(
    walks: Iterator[Walk],
    source_name: Hashable,
    target_name: Hashable,
    lam: int,
    bucketed: bool,
    count_cq: Any,
) -> Iterator[Tuple[Row, Cursor]]:
    for walk in walks:
        multiplicity = (
            count_accepting_runs(count_cq, walk.edges)
            if count_cq is not None
            else None
        )
        row = Row(
            source=source_name,
            target=target_name,
            walk=walk,
            lam=lam,
            multiplicity=multiplicity,
        )
        yield row, row.cursor(bucketed)


def _check_cursor_edges(
    graph: Graph, edges: Tuple[int, ...], target_id: int
) -> None:
    """Reject cursors that cannot be a previous output of this graph.

    Edge ids must exist, concatenate into a walk (checked by the
    :class:`Walk` constructor) and end at the stated target; a
    λ-budget check follows once λ is known.  This keeps a stale or
    corrupted client cursor a clean :class:`QueryError` instead of an
    IndexError inside the enumerators.
    """
    if not edges:
        return
    for e in edges:
        if not 0 <= e < graph.edge_count:
            raise QueryError(f"cursor contains unknown edge id {e}")
    walk = Walk(graph, edges)  # GraphError if edges do not concatenate.
    if walk.tgt != target_id:
        raise QueryError("cursor walk does not end at the target")


def _check_cursor_budget(
    graph: Graph, cursor: Optional[Cursor], lam: int, cheapest: bool
) -> None:
    if cursor is None:
        return
    if cheapest:
        cost = sum(graph.cost(e) for e in cursor.edges)
        if cost != lam:
            raise QueryError(
                f"cursor walk cost {cost} differs from λ={lam} — stale "
                "cursor from another query or graph version?"
            )
    elif len(cursor.edges) != lam:
        raise QueryError(
            f"cursor length {len(cursor.edges)} differs from λ={lam} "
            "— stale cursor from another query or graph version?"
        )


def _skip_past_cursor(
    iterator: Iterator[Walk], cursor: Optional[Sequence[int]]
) -> Iterator[Walk]:
    """Drop outputs up to and including the cursor walk.

    The eager enumerators cannot seek, so resuming them replays the
    prefix — O(position) rather than the memoryless mode's O(λ).  The
    output *order* is identical across the general modes (the paper's
    DFS order), so a cursor handed out by one mode is valid in
    another.  A cursor that matches no output (it passed the shape
    checks but was never an answer of this enumeration) is an error,
    not a silent empty page claiming exhaustion.
    """
    if cursor is None:
        yield from iterator
        return
    cursor = tuple(cursor)
    seen = False
    for walk in iterator:
        if seen:
            yield walk
        elif walk.edges == cursor:
            seen = True
    if not seen:
        raise QueryError(
            "cursor does not match any output of this enumeration"
        )
