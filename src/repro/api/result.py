"""Streaming :class:`ResultSet` — pagination over a row stream.

The executor (:mod:`repro.api.database`) hands the result set a lazy
``(row, cursor)`` stream whose cursor seeking has already happened at
the bucket level; the result set applies the *page* knobs on top —
``offset``, ``limit`` and the wall-clock deadline — with exactly the
semantics of the batch service's paginator:

* ``offset`` rows are consumed and counted in :attr:`skipped`;
* once ``limit`` rows are out, one more row is peeked: if it exists,
  :attr:`next_cursor` points at the last *emitted* row (resuming there
  yields the peeked row first) and the stream closes;
* the deadline is checked between rows — by the paper's delay bound
  the overshoot is O(λ×|A|); on expiry :attr:`timed_out` is set and
  :attr:`next_cursor` resumes after the last row consumed (skipped or
  emitted), falling back to the request's own cursor when nothing was
  consumed yet;
* an exhausted stream leaves :attr:`next_cursor` as ``None``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.api.rows import Cursor, Row
from repro.core.walks import Walk


class ResultSet:
    """A single-use, lazily evaluated stream of :class:`Row` answers.

    Iterate it (or call :meth:`all`) to consume the page; the
    pagination attributes (:attr:`next_cursor`, :attr:`skipped`,
    :attr:`timed_out`) are finalized once iteration stops.  The
    preprocessing phases have already run by the time the result set
    exists, so :attr:`lam` and :attr:`stats` are valid immediately.
    """

    def __init__(
        self,
        rows: Iterator[Tuple[Row, Cursor]],
        *,
        lam: Optional[int],
        stats: Dict[str, Any],
        limit: Optional[int] = None,
        offset: int = 0,
        deadline: Optional[float] = None,
        fallback_cursor: Optional[Cursor] = None,
    ) -> None:
        #: λ of the query: the answer length for a pair query, the
        #: global minimum for ``from_any(...).to(...)``; ``None`` when
        #: no walk matches — or for the per-bucket shapes (``to_all``,
        #: ``all_pairs``), whose λ varies per row (see ``Row.lam``).
        self.lam = lam
        #: ``{"cached": {...}, "timings": {...}}`` — cache-hit flags
        #: and wall-clock seconds per preprocessing phase; the
        #: ``enumerate`` timing accrues as the stream is consumed.
        self.stats = stats
        self.next_cursor: Optional[Cursor] = None
        self.skipped = 0
        self.timed_out = False
        self._gen = self._paginate(rows, limit, offset, deadline, fallback_cursor)

    # -- consumption ---------------------------------------------------------

    def __iter__(self) -> Iterator[Row]:
        return self._gen

    def _paginate(
        self,
        rows: Iterator[Tuple[Row, Cursor]],
        limit: Optional[int],
        offset: int,
        deadline: Optional[float],
        fallback: Optional[Cursor],
    ) -> Iterator[Row]:
        emitted = 0
        #: Cursor of the last row consumed (skipped or emitted) — the
        #: anchor a resume token points at.
        last: Optional[Cursor] = fallback
        timings = self.stats["timings"]
        try:
            while True:
                t0 = time.perf_counter()
                try:
                    row, cursor = next(rows)
                except StopIteration:
                    return
                finally:
                    timings["enumerate"] = (
                        timings.get("enumerate", 0.0)
                        + time.perf_counter()
                        - t0
                    )
                if self.skipped < offset:
                    self.skipped += 1
                elif limit is None or emitted < limit:
                    emitted += 1
                    yield row
                else:
                    # One row past the page: the enumeration has more.
                    self.next_cursor = last
                    return
                last = cursor
                if deadline is not None and time.perf_counter() > deadline:
                    self.timed_out = True
                    self.next_cursor = last
                    return
        finally:
            close = getattr(rows, "close", None)
            if close is not None:
                close()
            trace = self.stats.get("trace")
            if trace is not None:
                # Enumeration is lazy (it ran after the executor's
                # trace deactivated), so the span attaches post hoc
                # from the accrued timing when the page finishes.
                trace.add_span(
                    "enumerate", timings.get("enumerate", 0.0)
                )

    # -- conveniences --------------------------------------------------------

    def all(self) -> List[Row]:
        """Materialize the (remaining) page."""
        return list(self._gen)

    def first(self) -> Optional[Row]:
        """The next row, or ``None`` when the page is exhausted."""
        return next(self._gen, None)

    def walks(self) -> Iterator[Walk]:
        """Iterate bare walks (the pre-façade result shape)."""
        return (row.walk for row in self._gen)

    def to_dicts(self) -> List[Dict[str, Any]]:
        """JSON-ready page rendering."""
        return [row.to_dict() for row in self._gen]

    @property
    def is_empty(self) -> bool:
        """True when the query matched nothing at all (λ is ``None``)."""
        return self.lam is None
