"""``repro.api`` — the one fluent query API over every engine.

The paper's pipeline (compile → ``Annotate`` → ``Trim`` →
``Enumerate``, Figure 2) used to be reachable through seven divergent
entry points — the four engine classes, the ad-hoc ``RPQ`` methods,
the batch service and the CLI — each with its own signature, mode
handling and result type.  This package is the single front door they
now all share::

    from repro.api import Database

    db = Database(graph)                      # plan + annotation caches
    rs = (db.query("h* s (h | s)*")
            .from_("Alix").to("Bob")          # endpoint shape
            .mode("auto").limit(10)           # execution knobs
            .run())                           # → streaming ResultSet
    for row in rs:
        print(row.source, "→", row.target, row.walk.describe())
    rs.next_cursor                            # resume token (or None)

Three orthogonal axes (see :mod:`repro.api.query` for the full
matrix):

* **endpoint shape** — ``from_().to()`` (pair), ``from_().to_all()``,
  ``from_any([...]).to(...)`` / ``.to_all()`` (multi-source via a
  virtual super-source), ``all_pairs()``;
* **semantics** — ``shortest`` (default) / ``cheapest`` /
  ``count()`` / ``with_multiplicity()``;
* **execution** — engine ``mode()`` override, ``limit`` / ``offset``
  / ``cursor`` pagination with O(λ) memoryless seek, ``timeout_ms``
  budgets, ``explain()`` and ``stats()``.

Because :class:`Database` wraps the graph registry and the
plan/annotation caches that :mod:`repro.service` introduced,
*interactive* callers get the batch path's repeat-query speedup for
free; :class:`~repro.service.QueryService`, the classic
:class:`~repro.query.rpq.RPQ` helpers and the CLI ``query`` command
are thin shims over this package.
"""

from repro.api.database import Database, MutationResult
from repro.api.query import Query
from repro.api.result import ResultSet
from repro.api.rows import Cursor, Row

__all__ = [
    "Cursor",
    "Database",
    "MutationResult",
    "Query",
    "ResultSet",
    "Row",
]
