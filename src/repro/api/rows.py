"""Structured results of the fluent query API.

A façade query returns a stream of :class:`Row` objects instead of
bare :class:`~repro.core.walks.Walk` iterators: every row names its
endpoints, so the multi-target and multi-source endpoint shapes can
share one result type with plain source→target queries.

:class:`Cursor` is the resume token of that stream.  For a pair query
it degenerates to the service-layer cursor (the last walk's edge ids);
for the bucketed shapes (``to_all``, ``from_any``, ``all_pairs``) it
additionally pins the bucket — the (source, target) pair the walk
belongs to — so a resumed query can seek straight to the right bucket
and then to the right walk (O(λ) inside the bucket in memoryless
mode).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple, Union

from repro.core.walks import Walk
from repro.exceptions import QueryError


@dataclass(frozen=True)
class Cursor:
    """Opaque resume token: *the last walk the client has seen*.

    ``edges`` are the walk's edge ids; ``source``/``target`` are vertex
    *names* and only set for endpoint shapes with more than one bucket
    (they select the bucket the walk belongs to).
    """

    edges: Tuple[int, ...]
    source: Optional[Hashable] = None
    target: Optional[Hashable] = None

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"edges": list(self.edges)}
        if self.source is not None:
            out["source"] = self.source
        if self.target is not None:
            out["target"] = self.target
        return out

    @classmethod
    def coerce(
        cls, value: Union["Cursor", Dict[str, Any], Sequence[int]]
    ) -> "Cursor":
        """Accept a :class:`Cursor`, a ``to_dict`` payload, or a bare
        edge-id sequence (the service-layer pair-query token)."""
        if isinstance(value, Cursor):
            return value
        if isinstance(value, dict):
            unknown = set(value) - {"edges", "source", "target"}
            if unknown:
                raise QueryError(
                    f"unknown cursor field(s): {', '.join(sorted(unknown))}"
                )
            edges = value.get("edges")
            if not isinstance(edges, (list, tuple)):
                raise QueryError("cursor 'edges' must be a list of edge ids")
            return cls(
                edges=tuple(edges),
                source=value.get("source"),
                target=value.get("target"),
            )
        if isinstance(value, (list, tuple)):
            return cls(edges=tuple(value))
        raise QueryError(
            "cursor must be a Cursor, a dict, or a sequence of edge ids; "
            f"got {type(value).__name__}"
        )

    def validate_edges(self) -> "Cursor":
        if not all(isinstance(e, int) and e >= 0 for e in self.edges):
            raise QueryError(
                "cursor edges must be non-negative integer edge ids"
            )
        return self


@dataclass(frozen=True)
class Row:
    """One answer of a façade query.

    ``source``/``target`` are vertex names, ``lam`` is the bucket's
    answer length (edge count for ``shortest`` semantics, total cost
    for ``cheapest``), and ``multiplicity`` is the number of accepting
    runs — populated only when the query asked
    :meth:`~repro.api.query.Query.with_multiplicity`.
    """

    source: Hashable
    target: Hashable
    walk: Walk
    lam: int
    multiplicity: Optional[int] = None

    @property
    def length(self) -> int:
        """Number of edges of the walk."""
        return self.walk.length

    @property
    def cost(self) -> int:
        """Total edge cost of the walk (= length without costs)."""
        return self.walk.cost()

    @property
    def edges(self) -> Tuple[int, ...]:
        """The walk's edge ids (the enumeration's canonical identity)."""
        return self.walk.edges

    def vertex_names(self) -> List[Hashable]:
        return self.walk.vertex_names()

    def cursor(self, bucketed: bool) -> Cursor:
        """The resume token pointing *at* this row."""
        if bucketed:
            return Cursor(
                edges=self.walk.edges, source=self.source, target=self.target
            )
        return Cursor(edges=self.walk.edges)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "source": str(self.source),
            "target": str(self.target),
            "lam": self.lam,
            **self.walk.to_dict(),
        }
        if self.multiplicity is not None:
            out["multiplicity"] = self.multiplicity
        return out

    def describe(self) -> str:
        """Human-readable rendering (delegates to the walk)."""
        return self.walk.describe()
