"""The fluent, lazy :class:`Query` builder.

A query is assembled from three *orthogonal* axes and only executed by
a terminal call:

* **endpoint shape** — :meth:`Query.from_` / :meth:`Query.to` (pair),
  :meth:`Query.to_all` (one source, every reachable target),
  :meth:`Query.from_any` (multi-source via a virtual super-source:
  answers are the walks from *any* of the given sources that are
  globally shortest/cheapest among them), and :meth:`Query.all_pairs`
  (every source × every reachable target, per-pair λ);
* **semantics** — two sub-axes.  The *objective*:
  :meth:`Query.shortest` (default, minimal edge count) or
  :meth:`Query.cheapest` (minimal total edge cost).  The *walk
  restriction*: ``walks`` (default — the paper's distinct shortest
  walks), :meth:`Query.trails` (no repeated edge),
  :meth:`Query.simple_paths` (no repeated vertex), or
  :meth:`Query.any_walk` (one shortest witness per bucket, the
  Cypher/GQL ``ANY`` cheap mode); :meth:`Query.semantics` selects
  either sub-axis by name.  Plus the :meth:`Query.with_multiplicity`
  modifier (annotate each row with its number of accepting runs) and
  the :meth:`Query.count` terminal;
* **execution** — :meth:`Query.mode` (engine override), pagination
  (:meth:`Query.limit` / :meth:`Query.offset` / :meth:`Query.cursor`),
  :meth:`Query.timeout_ms`, :meth:`Query.construction`.

Builder methods return a *new* query (copy-on-write), so a base query
can be forked freely::

    base = db.query("h* s (h | s)*").from_("Alix")
    pair = base.to("Bob").limit(10)
    fan  = base.to_all()

**Mode × semantics support.**  ``shortest`` supports every mode
(``auto``, ``iterative``, ``recursive``, ``memoryless``); ``cheapest``
supports ``auto``, ``iterative`` and ``memoryless`` — the recursive
enumerator is length-budgeted only and rejects cost budgets.  With
caching enabled (the default), ``auto`` resolves to the database's
``default_mode`` (``memoryless`` — concurrency-safe, O(λ) cursor
seek); with the annotation cache disabled, a pair-shaped ``shortest``
query falls back to the cold single-pair engine, whose own ``auto``
includes the paper's simple-setting fast path.
"""

from __future__ import annotations

import copy
from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Hashable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.api.rows import Cursor, Row
from repro.exceptions import QueryError

if TYPE_CHECKING:  # pragma: no cover — import cycle guard
    from repro.api.database import Database
    from repro.api.result import ResultSet
    from repro.query.plan import QueryPlan
    from repro.query.rpq import RPQ

_MODES = ("auto", "iterative", "recursive", "memoryless")
_CONSTRUCTIONS = ("thompson", "glushkov")
_SEMANTICS = ("shortest", "cheapest")
_RESTRICTIONS = ("walks", "trails", "simple", "any")


class Query:
    """A lazily executed RPQ against one :class:`~repro.api.Database`.

    Do not construct directly — use
    :meth:`repro.api.Database.query`.
    """

    def __init__(
        self, db: "Database", expression: str, rpq: Optional["RPQ"] = None
    ) -> None:
        self._db = db
        self._expression = expression
        self._rpq = rpq
        self._graph_name: Optional[str] = None
        self._construction = "thompson" if rpq is None else rpq.method
        self._source: Optional[Hashable] = None
        self._sources: Optional[Tuple[Hashable, ...]] = None
        self._target: Optional[Hashable] = None
        self._to_all = False
        self._all_pairs = False
        self._semantics = "shortest"
        self._restriction = "walks"
        self._multiplicity = False
        self._mode = "auto"
        self._limit: Optional[int] = None
        self._offset = 0
        self._cursor: Optional[Cursor] = None
        self._timeout_ms: Optional[float] = None

    def _clone(self) -> "Query":
        return copy.copy(self)

    # -- graph / plan axis ---------------------------------------------------

    def on(self, graph_name: Optional[str]) -> "Query":
        """Select a registered graph by name (``None`` = the sole one)."""
        q = self._clone()
        q._graph_name = graph_name
        return q

    def construction(self, method: str) -> "Query":
        """Regex→NFA construction (``thompson`` or ``glushkov``)."""
        if method not in _CONSTRUCTIONS:
            raise QueryError(
                f"unknown construction {method!r}; "
                f"expected one of {_CONSTRUCTIONS}"
            )
        if self._rpq is not None and method != self._rpq.method:
            raise QueryError(
                "query was built from a compiled RPQ using "
                f"{self._rpq.method!r}; cannot switch to {method!r}"
            )
        q = self._clone()
        q._construction = method
        return q

    # -- endpoint shape axis -------------------------------------------------

    def from_(self, source: Hashable) -> "Query":
        """Single source vertex (name or id)."""
        if self._sources is not None:
            raise QueryError("from_() conflicts with an earlier from_any()")
        q = self._clone()
        q._source = source
        return q

    def from_any(self, sources: Sequence[Hashable]) -> "Query":
        """Multi-source: a virtual super-source over ``sources``.

        The answers are the matching walks that start at *any* of the
        given sources and are shortest (cheapest) **among all of
        them** — exactly the walks a virtual ε-super-source in front
        of the sources would yield, computed by taking the minimum of
        the per-source λ over the shared multi-target annotations.
        """
        sources = tuple(sources)
        if not sources:
            raise QueryError("from_any() needs at least one source")
        if self._source is not None:
            raise QueryError("from_any() conflicts with an earlier from_()")
        q = self._clone()
        q._sources = sources
        return q

    def to(self, target: Hashable) -> "Query":
        """Single target vertex (name or id)."""
        if self._to_all:
            raise QueryError("to() conflicts with an earlier to_all()")
        q = self._clone()
        q._target = target
        return q

    def to_all(self) -> "Query":
        """Every reachable target (ascending vertex-id order)."""
        if self._target is not None:
            raise QueryError("to_all() conflicts with an earlier to()")
        q = self._clone()
        q._to_all = True
        return q

    def all_pairs(self) -> "Query":
        """Every source × every reachable target, per-pair λ."""
        if (
            self._source is not None
            or self._sources is not None
            or self._target is not None
            or self._to_all
        ):
            raise QueryError(
                "all_pairs() replaces from_/from_any/to/to_all; "
                "start from a fresh query"
            )
        q = self._clone()
        q._all_pairs = True
        return q

    # -- semantics axis ------------------------------------------------------

    def shortest(self) -> "Query":
        """Minimal edge count (the default)."""
        q = self._clone()
        q._semantics = "shortest"
        return q

    def cheapest(self) -> "Query":
        """Minimal total edge cost (strictly positive integer costs)."""
        q = self._clone()
        q._semantics = "cheapest"
        return q

    def walks(self) -> "Query":
        """Back to the default walk semantics (no restriction)."""
        q = self._clone()
        q._restriction = "walks"
        return q

    def trails(self) -> "Query":
        """Restrict answers to trails: no edge repeated in a walk.

        rλ (the answer length) is the minimal length of a *restricted*
        matching walk — at least the walk λ, and strictly larger when
        every shortest walk repeats an edge (the executor then falls
        back to a guided product-DFS; see :mod:`repro.core.restricted`).
        """
        q = self._clone()
        q._restriction = "trails"
        return q

    def simple_paths(self) -> "Query":
        """Restrict answers to simple paths: no vertex repeated."""
        q = self._clone()
        q._restriction = "simple"
        return q

    def any_walk(self) -> "Query":
        """One shortest witness walk per bucket (Cypher/GQL ``ANY``).

        The cheap mode: an early-exit BFS over the product — no
        Trim/Enumerate machinery, no annotation-cache entry — honoring
        ``limit``/``offset``/``timeout_ms``/cursors at the row level.
        The witness length equals the plain-walks λ.
        """
        q = self._clone()
        q._restriction = "any"
        return q

    def semantics(self, which: str) -> "Query":
        """Select a semantics sub-axis by name.

        ``"shortest"`` / ``"cheapest"`` pick the objective (legacy
        vocabulary); ``"walks"`` / ``"trails"`` / ``"simple"`` /
        ``"any"`` pick the walk restriction — the two compose, except
        that ``cheapest`` supports only the unrestricted ``walks``
        form (checked at execution time).
        """
        if which in _SEMANTICS:
            return self.cheapest() if which == "cheapest" else self.shortest()
        if which not in _RESTRICTIONS:
            raise QueryError(
                f"unknown semantics {which!r}; expected one of "
                f"{_SEMANTICS + _RESTRICTIONS}"
            )
        q = self._clone()
        q._restriction = which
        return q

    def with_multiplicity(self, enabled: bool = True) -> "Query":
        """Annotate each row with its number of accepting runs (§5.3)."""
        q = self._clone()
        q._multiplicity = enabled
        return q

    # -- execution axis ------------------------------------------------------

    def mode(self, mode: str) -> "Query":
        """Engine override; see the module docstring for the matrix."""
        if mode not in _MODES:
            raise QueryError(
                f"unknown mode {mode!r}; expected one of {_MODES}"
            )
        q = self._clone()
        q._mode = mode
        return q

    def limit(self, n: Optional[int]) -> "Query":
        """Page size; ``None`` = all answers."""
        if n is not None and (not isinstance(n, int) or n < 1):
            raise QueryError("limit must be a positive integer or None")
        q = self._clone()
        q._limit = n
        return q

    def offset(self, n: int) -> "Query":
        """Rows to skip before the page starts (O(offset) walk work)."""
        if not isinstance(n, int) or n < 0:
            raise QueryError("offset must be a non-negative integer")
        q = self._clone()
        q._offset = n
        return q

    def cursor(
        self, token: Union[Cursor, Dict[str, Any], Sequence[int], None]
    ) -> "Query":
        """Resume right after a previous page's ``next_cursor``.

        Accepts the :class:`~repro.api.rows.Cursor` object, its
        ``to_dict()`` payload, or (for pair queries) a bare edge-id
        list — the batch service's token.  Seeking is O(λ) in
        memoryless mode and O(position) in the eager modes.
        """
        q = self._clone()
        q._cursor = (
            None if token is None else Cursor.coerce(token).validate_edges()
        )
        return q

    def timeout_ms(self, budget: Optional[float]) -> "Query":
        """Wall-clock budget; on expiry the page is partial and
        resumable via ``next_cursor``."""
        if budget is not None and budget < 0:
            raise QueryError("timeout_ms must be non-negative")
        q = self._clone()
        q._timeout_ms = budget
        return q

    # -- shape resolution ----------------------------------------------------

    def _shape(self) -> Tuple:
        """``(kind, ...)`` — validated endpoint shape."""
        if self._all_pairs:
            return ("all_pairs",)
        if self._sources is not None:
            if self._to_all:
                return ("many_to_all", self._sources)
            if self._target is not None:
                return ("many_to_one", self._sources, self._target)
            raise QueryError("from_any() needs to(...) or to_all()")
        if self._source is not None:
            if self._to_all:
                return ("one_to_all", self._source)
            if self._target is not None:
                return ("pair", self._source, self._target)
            raise QueryError("from_() needs to(...) or to_all()")
        raise QueryError(
            "query has no endpoint shape; call from_()/from_any()/"
            "all_pairs() first"
        )

    # -- terminals -----------------------------------------------------------

    def run(self) -> "ResultSet":
        """Execute: preprocessing now, enumeration lazily."""
        return self._db._run(self)

    execute = run

    def __iter__(self) -> Iterator[Row]:
        return iter(self.run())

    def count(self, method: str = "enumerate") -> int:
        """Total number of answers (pagination knobs are ignored).

        ``method="enumerate"`` counts by enumerating;
        ``method="dp"`` uses the memoized backward-tree dynamic
        program — exponentially faster on answer sets with many
        shared suffixes.  The DP (and Remark 17's entry-count bound it
        rests on) applies to the unrestricted **walks** semantics
        only: trails/simple answer sets are not products of per-level
        predecessor counts, and any-walk has no answer *set* — those
        modes count by enumeration, and ``method="dp"`` raises
        :class:`~repro.exceptions.QueryError` under them.
        """
        return self._db._count(self, method)

    def explain(self) -> "QueryPlan":
        """The input-analysis plan, extended with façade routing."""
        return self._db._explain(self)

    def stats(self) -> Dict[str, Any]:
        """Execute, drain, and report per-phase timings + cache hits."""
        rs = self.run()
        rows = sum(1 for _ in rs)
        return {
            "rows": rows,
            "lam": rs.lam,
            "timed_out": rs.timed_out,
            "skipped": rs.skipped,
            **rs.stats,
        }

    def targets(self) -> List[Tuple[Hashable, int]]:
        """``(target_name, λ_t)`` per reachable target, in result
        order — only for the ``to_all`` shapes."""
        return self._db._targets(self)

    def __repr__(self) -> str:
        try:
            shape: Tuple = self._shape()
        except QueryError:
            shape = ("unshaped",)
        return (
            f"Query({self._expression!r}, shape={shape!r}, "
            f"semantics={self._semantics!r}, "
            f"restriction={self._restriction!r}, mode={self._mode!r})"
        )
