"""Counting companions to the enumeration (no-enumeration aggregates).

Three counters, all computed without listing a single walk:

* :func:`count_distinct_shortest` — ``|⟦A⟧(D, s, t)|``, the number of
  answers, via a memoized dynamic program over the backward-search
  tree ``T`` (Definition 12).  Query languages with all-shortest-walks
  semantics need this for ``COUNT(*)`` pushdown, and the test suite
  uses it to cross-check the enumeration;
* :func:`count_shortest_product_paths` — the number of shortest paths
  of the product graph ``D × A`` that witness the answers: the exact
  amount of work the naive baseline performs, and hence the size of
  the duplicate blowup (``product_paths / answers`` copies per answer,
  Section 1);
* :func:`count_total_multiplicity` — ``Σ_w multiplicity(w)`` over all
  answers ``w``, where the multiplicity is the number of accepting
  (word, run) pairs of Section 5.3.  Cross-checks
  ``enumerate_with_multiplicity``.

Complexity.  The product-path and multiplicity counters are plain
level-synchronous DPs in O(λ × |D| × |A|).  The distinct-walk DP is
keyed by tree-node *types* ``(vertex, certificate set, remaining)``;
shared suffixes collapse, so the key count is bounded by the number of
distinct certificate sets per vertex — in the worst case exponential in
|Q| (the answer count itself can be exponential), in practice a small
multiple of |V|.  Each key is charged O(its B-cell entries), so the
total is O(Σ keys × |A|).

Integer arithmetic is exact (Python ints), so counts are correct even
when the answer set has astronomically many walks — counting
``2**200`` diamond-chain answers takes microseconds while enumeration
would outlive the universe.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from repro.core.annotate import Annotation
from repro.core.compile import CompiledQuery
from repro.exceptions import QueryError

#: Edge-cost callback; unit costs reproduce the paper's setting.
CostFn = Callable[[int], int]


def _unit_cost(_e: int) -> int:
    return 1


#: DP key: (vertex, certificate states, remaining budget).
_NodeKey = Tuple[int, Tuple[int, ...], int]


def count_distinct_shortest(
    graph,
    annotation: Annotation,
    budget: Optional[int],
    target: int,
    start_states: FrozenSet[int],
    cost_of: Optional[CostFn] = None,
) -> int:
    """Number of distinct shortest (or cheapest) matching walks.

    Parameters mirror :func:`repro.core.enumerate.enumerate_walks`;
    the count equals ``len(list(enumerate_walks(...)))`` but is
    computed by a memoized DP over the backward-search tree: the count
    of a node is the sum of its children's counts, leaves count 1, and
    nodes with equal ``(vertex, certificate, remaining)`` are the roots
    of identical subtrees (Lemma 15 — children depend on nothing else).
    """
    if budget is None or not start_states:
        return 0
    if budget == 0:
        return 1
    if cost_of is None:
        cost_of = _unit_cost

    src_arr = graph.src_array

    if annotation.packed is not None:
        # Packed path: child edges and certificates read straight off
        # the shared Trim cell arrays (cached on the annotation), no
        # dict-of-dicts materialization.
        cells = annotation.packed_cells(graph)
        n_states = cells.n_states
        key_indptr = cells.key_indptr
        cell_ti = cells.cell_ti
        cell_edge = cells.cell_edge
        cert = cells.cert

        def children(u: int, states: Tuple[int, ...], remaining: int):
            """Child node keys, via the packed cells of ``states``."""
            by_cell: Dict[int, set] = {}
            edge_at: Dict[int, int] = {}
            base = u * n_states
            for p in states:
                k = base + p
                for c in range(key_indptr[k], key_indptr[k + 1]):
                    ti = cell_ti[c]
                    bucket = by_cell.get(ti)
                    if bucket is None:
                        by_cell[ti] = set(cert(c))
                        edge_at[ti] = cell_edge[c]
                    else:
                        bucket.update(cert(c))
            return [
                (
                    src_arr[edge_at[ti]],
                    tuple(sorted(merged)),
                    remaining - cost_of(edge_at[ti]),
                )
                for ti, merged in by_cell.items()
            ]
    else:
        B = annotation.B
        in_array = graph.in_array

        def children(u: int, states: Tuple[int, ...], remaining: int):
            """Child node keys, via the non-empty B cells of ``states``."""
            by_cell: Dict[int, set] = {}
            per_state = B[u]
            for p in states:
                cells = per_state.get(p)
                if cells is None:
                    continue
                for i, preds in cells.items():
                    if preds:
                        by_cell.setdefault(i, set()).update(preds)
            in_list = in_array[u]
            result: List[_NodeKey] = []
            for i, merged in by_cell.items():
                e = in_list[i]
                result.append(
                    (src_arr[e], tuple(sorted(merged)), remaining - cost_of(e))
                )
            return result

    memo: Dict[_NodeKey, int] = {}
    root: _NodeKey = (target, tuple(sorted(start_states)), budget)
    # Iterative post-order with memoization — recursion depth would be λ.
    stack: List[_NodeKey] = [root]
    while stack:
        node = stack[-1]
        if node in memo:
            stack.pop()
            continue
        u, states, remaining = node
        if remaining == 0:
            memo[node] = 1
            stack.pop()
            continue
        kids = children(u, states, remaining)
        pending = [kid for kid in kids if kid not in memo]
        if pending:
            stack.extend(pending)
        else:
            memo[node] = sum(memo[kid] for kid in kids)
            stack.pop()
    return memo[root]


def count_shortest_product_paths(
    cq: CompiledQuery, source: int, target: int
) -> Tuple[Optional[int], int]:
    """``(λ, number of shortest product paths witnessing the answers)``.

    A product path steps through ``D × A`` pairs ``(vertex, state)``;
    parallel labels firing the *same* transition are collapsed (as in
    the naive baseline), so the second component equals the
    ``product_paths`` counter of
    :func:`repro.baselines.naive.naive_enumerate` — without paying the
    exponential enumeration.  Returns ``(None, 0)`` when no walk
    matches.

    The ratio ``product_paths / count_distinct_shortest`` is the mean
    number of copies per answer that the naive baseline visits.
    """
    if cq.has_eps:
        raise QueryError("product-path counting expects an ε-free query")
    graph = cq.graph
    out = graph.out_array
    tgt_arr = graph.tgt_array
    labels_arr = graph.label_array
    delta = cq.delta
    final = cq.final

    if source == target and (cq.initial_closure & final):
        return 0, 1

    # Level-synchronous BFS with path counts.  Every witness of a
    # shortest walk is distance-monotone (a detour would yield a
    # shorter matching walk, contradicting λ's minimality), so counting
    # along the BFS DAG is exhaustive.
    dist: Dict[Tuple[int, int], int] = {}
    counts: Dict[Tuple[int, int], int] = {}
    frontier: List[Tuple[int, int]] = []
    for q in cq.initial_closure:
        dist[(source, q)] = 0
        counts[(source, q)] = 1
        frontier.append((source, q))

    level = 0
    found = False
    while frontier and not found:
        level += 1
        new_counts: Dict[Tuple[int, int], int] = {}
        for v, q in frontier:
            c = counts[(v, q)]
            dq = delta[q]
            for e in out[v]:
                u = tgt_arr[e]
                successors: set = set()
                for a in labels_arr[e]:
                    successors.update(dq.get(a, ()))
                for p in successors:
                    node = (u, p)
                    known = dist.get(node)
                    if known is None:
                        dist[node] = level
                        new_counts[node] = c
                        if u == target and p in final:
                            found = True
                    elif known == level:
                        new_counts[node] += c
        counts = new_counts
        frontier = list(new_counts)

    if not found:
        return None, 0
    total = sum(
        counts.get((target, f), 0)
        for f in final
        if dist.get((target, f)) == level
    )
    return level, total


def count_total_multiplicity(
    cq: CompiledQuery, source: int, target: int
) -> Tuple[Optional[int], int]:
    """``(λ, Σ_w multiplicity(w))`` over all answers ``w``.

    The multiplicity of a walk is its number of accepting (word, run)
    pairs (Section 5.3): unlike product paths, two labels of one edge
    firing the same transition count twice.  Requires an ε-free
    compiled query, like
    :func:`repro.core.multiplicity.count_accepting_runs` which it
    aggregates.  Returns ``(None, 0)`` when no walk matches.
    """
    if cq.has_eps:
        raise QueryError("multiplicity counting expects an ε-free query")
    lam, _ = count_shortest_product_paths(cq, source, target)
    if lam is None:
        return None, 0
    graph = cq.graph
    if lam == 0:
        return 0, len(set(cq.initial) & set(cq.final))

    out = graph.out_array
    tgt_arr = graph.tgt_array
    labels_arr = graph.label_array
    delta = cq.delta
    final = cq.final

    # Runs start in the *original* initial states (ε-free ⇒ closure = I).
    counts: Dict[Tuple[int, int], int] = {
        (source, q): 1 for q in cq.initial
    }
    for _ in range(lam):
        new_counts: Dict[Tuple[int, int], int] = {}
        for (v, q), c in counts.items():
            dq = delta[q]
            for e in out[v]:
                u = tgt_arr[e]
                for a in labels_arr[e]:
                    for p in dq.get(a, ()):
                        node = (u, p)
                        new_counts[node] = new_counts.get(node, 0) + c
        counts = new_counts
        if not counts:
            return lam, 0
    return lam, sum(
        c for (v, q), c in counts.items() if v == target and q in final
    )
