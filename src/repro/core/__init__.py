"""The paper's algorithm: Annotate / Trim / Enumerate and extensions.

Module map (mirrors Figure 2 of the paper):

* :mod:`repro.core.compile` — align an NFA with a database's label ids;
* :mod:`repro.core.annotate` — the ``Annotate`` BFS (Section 3.1,
  with Section 5.1's ε-handling built in);
* :mod:`repro.core.trim` — ``Trim`` (Section 3.2) and ``ResumableTrim``
  (Section 4.2);
* :mod:`repro.core.enumerate` — ``Enumerate`` (Section 3.3);
* :mod:`repro.core.memoryless` — ``NextOutput`` (Theorem 18);
* :mod:`repro.core.engine` — the ``Main`` orchestration;
* :mod:`repro.core.cheapest`, :mod:`repro.core.multi_target`,
  :mod:`repro.core.multiplicity` — the Section 5.3 extensions;
* :mod:`repro.core.count` — answer counting and duplicate-blowup
  measures, without enumeration;
* :mod:`repro.core.simple` — the folklore fast path for deterministic
  queries on single-labeled data.
"""

from repro.core.annotate import Annotation, annotate, annotate_reference
from repro.core.cheapest import (
    DistinctCheapestWalks,
    cheapest_annotate,
    cheapest_annotate_reference,
)
from repro.core.compile import CompiledQuery, compile_query
from repro.core.count import (
    count_distinct_shortest,
    count_shortest_product_paths,
    count_total_multiplicity,
)
from repro.core.engine import DistinctShortestWalks, distinct_shortest_walks
from repro.core.enumerate import enumerate_walks, enumerate_walks_recursive
from repro.core.memoryless import enumerate_memoryless, next_output
from repro.core.multi_target import MultiTargetShortestWalks
from repro.core.multiplicity import count_accepting_runs
from repro.core.simple import SimpleShortestWalks, simple_eligible
from repro.core.trim import ResumableAnnotation, TrimmedAnnotation, resumable_trim, trim
from repro.core.walks import Walk

__all__ = [
    "Annotation",
    "CompiledQuery",
    "DistinctCheapestWalks",
    "DistinctShortestWalks",
    "MultiTargetShortestWalks",
    "ResumableAnnotation",
    "SimpleShortestWalks",
    "TrimmedAnnotation",
    "Walk",
    "annotate",
    "annotate_reference",
    "cheapest_annotate",
    "cheapest_annotate_reference",
    "compile_query",
    "count_accepting_runs",
    "count_distinct_shortest",
    "count_shortest_product_paths",
    "count_total_multiplicity",
    "distinct_shortest_walks",
    "enumerate_memoryless",
    "enumerate_walks",
    "enumerate_walks_recursive",
    "next_output",
    "resumable_trim",
    "simple_eligible",
    "trim",
]
