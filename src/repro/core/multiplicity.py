"""Shortest walks with multiplicities (paper, Section 5.3).

The multiplicity of a walk ``w`` is the number of distinct accepting
runs of ``A`` over ``Lbl(w)`` — i.e. the number of pairs
``(word, run)`` where the word picks one label per edge and the run
accepts it.  The paper offers two implementations and this module
provides both:

* **recompute** (:func:`count_accepting_runs`) — "one could rerun A
  on w when it is output, and simply count the runs": a DP over the
  finished walk, O(λ × |A|) per output, leaving the delay unchanged;
* **tracked** (:func:`enumerate_with_runs`) — "our algorithm
  essentially runs A over w along the recursive calls to Enumerate;
  hence, it can easily be adapted to keep track of the number of times
  each state has been produced along the walk": every node of the
  backward-search tree carries a map ``M[q]`` = number of accepting
  (word, run) pairs of the *suffix* built so far that start in ``q``;
  extending by an edge costs one sweep over the edge's labels and
  transitions, so the delay bound is again untouched.

For ε-NFAs the notion "number of runs" is ambiguous (ε-cycles admit
infinitely many runs), so multiplicities are defined — and computed —
on the ε-eliminated automaton
(:func:`repro.automata.ops.remove_epsilon`).  The engine performs that
elimination automatically.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.core.compile import CompiledQuery
from repro.core.trim import TrimmedAnnotation
from repro.core.walks import Walk
from repro.exceptions import QueryError
from repro.graph.database import Graph


def count_accepting_runs(
    cq: CompiledQuery, edges: Sequence[int]
) -> int:
    """Number of accepting runs of the (ε-free) query over ``edges``.

    DP over walk positions: ``counts[q]`` is the number of runs of the
    prefix ending in state ``q``; each edge multiplies by the number of
    labels that fire each transition.  O(λ × |Δ|).
    """
    if cq.has_eps:
        raise QueryError(
            "multiplicities are defined on ε-free queries; "
            "eliminate ε-transitions first (the engine does this for you)"
        )
    labels_arr = cq.graph.label_array
    delta = cq.delta

    counts: Dict[int, int] = {q: 1 for q in cq.initial}
    for e in edges:
        new_counts: Dict[int, int] = {}
        edge_labels = labels_arr[e]
        for q, c in counts.items():
            dq = delta[q]
            for a in edge_labels:
                for p in dq.get(a, ()):
                    new_counts[p] = new_counts.get(p, 0) + c
        if not new_counts:
            return 0
        counts = new_counts
    return sum(c for q, c in counts.items() if q in cq.final)


def enumerate_with_runs(
    graph: Graph,
    trimmed: TrimmedAnnotation,
    cq: CompiledQuery,
    lam: Optional[int],
    target: int,
    start_states: FrozenSet[int],
) -> Iterator[Tuple[Walk, int]]:
    """Enumerate ``(walk, multiplicity)`` with *tracked* run counts.

    Same DFS as :func:`repro.core.enumerate.enumerate_walks`, with one
    extra per-frame map ``M``: ``M[q]`` is the number of accepting
    (word, run) pairs of the suffix walk assembled so far that start in
    state ``q``.  At the root, ``M[f] = 1`` for the reached final
    states; prepending edge ``e`` rolls the map backwards through
    ``Δ`` restricted to ``Lbl(e)``; at a leaf, the multiplicity is the
    sum of ``M[q]`` over the initial states.

    Maintaining ``M`` costs one sweep over the edge's firing
    transitions per tree edge — within the O(λ × |A|) delay bound.
    ``cq`` must be ε-free, like :func:`count_accepting_runs`.
    """
    if cq.has_eps:
        raise QueryError(
            "multiplicities are defined on ε-free queries; "
            "eliminate ε-transitions first (the engine does this for you)"
        )
    if lam is None or not start_states:
        return
    initial = set(cq.initial)
    if lam == 0:
        yield Walk(graph, (), start=target), len(initial & set(cq.final))
        return
    if trimmed.cells is not None and trimmed._queues is None:
        yield from _enumerate_with_runs_packed(
            graph, trimmed, cq, lam, target, start_states, initial
        )
        return

    trimmed.acquire()
    queues = trimmed.queues
    ti_arr = graph.tgt_idx_array
    src_arr = graph.src_array
    labels_arr = graph.label_array
    delta = cq.delta

    root_runs: Dict[int, int] = {f: 1 for f in start_states}
    chosen: List[int] = []
    # Frame: (vertex, certificate states, remaining, suffix-run map).
    stack: List[Tuple[int, Tuple[int, ...], int, Dict[int, int]]] = [
        (target, tuple(sorted(start_states)), lam, root_runs)
    ]
    try:
        while stack:
            u, states, remaining, runs = stack[-1]
            if remaining == 0:
                multiplicity = sum(
                    c for q, c in runs.items() if q in initial
                )
                edges = tuple(reversed(chosen))
                yield Walk.from_edges_unchecked(
                    graph, edges, src_arr[edges[0]]
                ), multiplicity
                stack.pop()
                chosen.pop()
                continue

            per_state = queues[u]
            emin = -1
            emin_ti = -1
            for p in states:
                queue = per_state.get(p)
                if queue is not None and not queue.exhausted:
                    e = queue.peek()[0]
                    e_ti = ti_arr[e]
                    if emin < 0 or e_ti < emin_ti:
                        emin, emin_ti = e, e_ti
            if emin < 0:
                for p in states:
                    queue = per_state.get(p)
                    if queue is not None:
                        queue.restart()
                stack.pop()
                if chosen:
                    chosen.pop()
                continue

            child_states = set()
            for p in states:
                queue = per_state.get(p)
                if queue is not None and not queue.exhausted:
                    e, preds = queue.peek()
                    if e == emin:
                        child_states.update(preds)
                        queue.advance()

            # Roll the run map backwards across emin: a run of the new
            # suffix starting in q picks a label a and a transition
            # into some p, then continues as a run from p.
            child_runs: Dict[int, int] = {}
            edge_labels = labels_arr[emin]
            for q in child_states:
                dq = delta[q]
                total = 0
                for a in edge_labels:
                    for p in dq.get(a, ()):
                        total += runs.get(p, 0)
                if total:
                    child_runs[q] = total

            chosen.append(emin)
            stack.append(
                (
                    src_arr[emin],
                    tuple(sorted(child_states)),
                    remaining - 1,
                    child_runs,
                )
            )
    finally:
        trimmed.restart_all()


def _enumerate_with_runs_packed(
    graph: Graph,
    trimmed: TrimmedAnnotation,
    cq: CompiledQuery,
    lam: int,
    target: int,
    start_states: FrozenSet[int],
    initial: set,
) -> Iterator[Tuple[Walk, int]]:
    """The packed-array twin of :func:`enumerate_with_runs`.

    Identical DFS and output order over the packed trimmed cells (see
    :func:`repro.core.enumerate._enumerate_packed`), with the same
    per-frame suffix-run map ``M`` rolled backwards across each chosen
    edge.
    """
    cells = trimmed.cells
    n_states = cells.n_states
    key_indptr = cells.key_indptr
    cell_ti = cells.cell_ti
    cell_edge = cells.cell_edge
    cur = trimmed.cursor
    cert_of = cells.cert
    src_arr = graph.src_array
    labels_arr = graph.label_array
    delta = cq.delta

    trimmed.acquire()
    root_runs: Dict[int, int] = {f: 1 for f in start_states}
    chosen: List[int] = []
    # Frame: (vertex, certificate states, remaining, suffix-run map).
    stack: List[Tuple[int, Tuple[int, ...], int, Dict[int, int]]] = [
        (target, tuple(sorted(start_states)), lam, root_runs)
    ]
    try:
        while stack:
            u, states, remaining, runs = stack[-1]
            if remaining == 0:
                multiplicity = sum(
                    c for q, c in runs.items() if q in initial
                )
                edges = tuple(reversed(chosen))
                yield Walk.from_edges_unchecked(
                    graph, edges, src_arr[edges[0]]
                ), multiplicity
                stack.pop()
                chosen.pop()
                continue

            base = u * n_states
            emin_c = -1
            emin_ti = -1
            for p in states:
                k = base + p
                c = cur[k]
                if c < key_indptr[k + 1]:
                    t = cell_ti[c]
                    if emin_c < 0 or t < emin_ti:
                        emin_c, emin_ti = c, t
            if emin_c < 0:
                for p in states:
                    k = base + p
                    cur[k] = key_indptr[k]
                stack.pop()
                if chosen:
                    chosen.pop()
                continue

            child_states: set = set()
            for p in states:
                k = base + p
                c = cur[k]
                if c < key_indptr[k + 1] and cell_ti[c] == emin_ti:
                    cur[k] = c + 1
                    child_states.update(cert_of(c))
            emin = cell_edge[emin_c]

            # Roll the run map backwards across emin: a run of the new
            # suffix starting in q picks a label a and a transition
            # into some p, then continues as a run from p.
            child_runs: Dict[int, int] = {}
            edge_labels = labels_arr[emin]
            for q in child_states:
                dq = delta[q]
                total = 0
                for a in edge_labels:
                    for p in dq.get(a, ()):
                        total += runs.get(p, 0)
                if total:
                    child_runs[q] = total

            chosen.append(emin)
            stack.append(
                (
                    src_arr[emin],
                    tuple(sorted(child_states)),
                    remaining - 1,
                    child_runs,
                )
            )
    finally:
        trimmed.restart_all()
