"""Any-walk fast path: one witness per target, no enumeration machinery.

The ``any`` semantics (Cypher/GQL's ``ANY`` path mode; see "Designing
and Comparing RPQ Semantics") asks for a *single* matching walk per
``(source, target)`` pair rather than the full distinct-shortest-walk
answer set.  That needs none of the Annotate → Trim → Enumerate
machinery: a plain BFS over the product ``D × A`` with parent pointers
finds one globally shortest witness and reconstructs it in O(λ).

:func:`any_walk_search` is that BFS.  With a concrete ``targets`` set
it early-exits at the end of the first level that reaches any of them
in a final state (exactly the ``Annotate`` stopping rule, minus all
``B``-entry bookkeeping); with ``targets=None`` it saturates the
reachable product and returns a witness for *every* reachable target.

Determinism: the frontier is processed in insertion order and each
vertex's out-edges in ascending edge-id order, and a ``(vertex,
state)`` pair's parent pointer is fixed at first discovery — so the
witness returned for a target is a pure function of the instance, and
repeated queries (or pagination re-runs) see the same walk.

ε-transitions are supported directly (``PossiblyVisit`` style: an
ε-successor inherits its ancestor's parent pointer), so the fast path
covers queries compiled with ``eliminate_epsilon=False`` too.

The witness walk is shortest among *walks* — the any-walk λ equals the
plain-walks λ.  Remark 17's distinct-walk count does not apply here:
the answer is one walk, not an answer set (see
:mod:`repro.api.query`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.core.compile import CompiledQuery

__all__ = ["any_walk_search"]

#: parent[(v, p)] = (prev_v, prev_q, edge) — or None for a start pair.
_Parent = Optional[Tuple[int, int, int]]


def _reconstruct(
    parent: Dict[Tuple[int, int], _Parent], v: int, p: int
) -> Tuple[int, ...]:
    edges: List[int] = []
    node: Tuple[int, int] = (v, p)
    while True:
        link = parent[node]
        if link is None:
            break
        prev_v, prev_q, e = link
        edges.append(e)
        node = (prev_v, prev_q)
    edges.reverse()
    return tuple(edges)


def any_walk_search(
    cq: CompiledQuery,
    source: int,
    targets: Optional[Iterable[int]] = None,
) -> Dict[int, Tuple[int, Tuple[int, ...]]]:
    """One shortest witness walk per reached target.

    Returns ``{target: (λ_t, edge_ids)}``.  With ``targets`` given,
    the BFS stops at the end of the first level reaching any of them
    (only those targets appear in the result); with ``targets=None``
    it saturates and reports every vertex reachable in a final state.
    """
    graph = cq.graph
    out = graph.out_array
    tgt_arr = graph.tgt_array
    labels_arr = graph.label_array
    delta = cq.delta
    eps = cq.eps
    has_eps = cq.has_eps
    final = cq.final
    wanted: Optional[Set[int]] = None if targets is None else set(targets)

    parent: Dict[Tuple[int, int], _Parent] = {}
    #: Per target: (λ_t, final state) of the first (hence minimal-λ,
    #: smallest-state) hit — the witness is reconstructed at the end.
    hits: Dict[int, Tuple[int, int]] = {}

    frontier: List[Tuple[int, int]] = []
    for p in sorted(cq.initial_closure):
        parent[(source, p)] = None
        frontier.append((source, p))

    def record(v: int, p: int, level: int) -> None:
        if p in final and v not in hits and (wanted is None or v in wanted):
            hits[v] = (level, p)

    # λ = 0: the trivial walk ⟨source⟩ matches iff ε ∈ L(A).
    if cq.initial_closure & final:
        f0 = min(cq.initial_closure & final)
        if wanted is None or source in wanted:
            hits[source] = (0, f0)

    level = 0
    while frontier:
        if wanted is not None and hits:
            break  # Early exit: some wanted target was reached.
        level += 1
        current, frontier = frontier, []
        for v, q in current:
            for e in out[v]:
                u = tgt_arr[e]
                for a in labels_arr[e]:
                    succ = delta[q].get(a)
                    if not succ:
                        continue
                    for p in succ:
                        if (u, p) in parent:
                            continue
                        parent[(u, p)] = (v, q, e)
                        frontier.append((u, p))
                        record(u, p, level)
                        if has_eps and eps[p]:
                            stack = list(eps[p])
                            while stack:
                                r = stack.pop()
                                if (u, r) in parent:
                                    continue
                                parent[(u, r)] = (v, q, e)
                                frontier.append((u, r))
                                record(u, r, level)
                                stack.extend(eps[r])

    return {
        t: (lam_t, _reconstruct(parent, t, p) if lam_t else ())
        for t, (lam_t, p) in hits.items()
    }
