"""Delta-encoded enumeration (paper, Section 6 perspectives).

The paper observes that a significant part of the delay is the λ
symbols needed to *write each answer down*, and that consecutive
answers often share large parts — so emitting only the difference can
shrink the amortized output size.  Because ``Enumerate`` is a DFS of
the backward-search tree rooted at the **target**, consecutive answers
share exactly the tree path above their lowest common ancestor: a
*suffix* of the edge sequence (the part nearest ``t``).

:func:`delta_encode` turns a walk stream into
:class:`WalkDelta(shared_suffix, prefix_edges)` records — "keep the
last ``shared_suffix`` edges of the previous answer, replace the rest
with ``prefix_edges``" — and :func:`delta_decode` inverts it.  On a
diamond chain of length k, full output costs ``k`` edges per answer
while the amortized delta size tends to 2 (the benchmark EXP-DELTA
measures the ratio).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Tuple

from repro.core.walks import Walk
from repro.exceptions import GraphError
from repro.graph.database import Graph


@dataclass(frozen=True)
class WalkDelta:
    """One delta record of the compressed answer stream.

    ``shared_suffix`` — how many trailing edges to reuse from the
    previous answer (0 for the first); ``prefix_edges`` — the replaced
    leading edges, in walk (source → target) order.  The represented
    walk is ``prefix_edges + previous[len(previous)-shared_suffix:]``.
    """

    shared_suffix: int
    prefix_edges: Tuple[int, ...]

    @property
    def size(self) -> int:
        """Number of symbols this record carries (edges + 1 counter)."""
        return len(self.prefix_edges) + 1


def _common_suffix_length(
    previous: Tuple[int, ...], current: Tuple[int, ...]
) -> int:
    shared = 0
    for a, b in zip(reversed(previous), reversed(current)):
        if a != b:
            break
        shared += 1
    return shared


def delta_encode(walks: Iterable[Walk]) -> Iterator[WalkDelta]:
    """Compress a walk stream into delta records.

    Works for any walk stream, but is only *effective* on streams in
    DFS order (the enumerator's natural order), where consecutive
    answers share long suffixes.
    """
    previous: Optional[Tuple[int, ...]] = None
    for walk in walks:
        edges = walk.edges
        if previous is None:
            yield WalkDelta(0, edges)
        else:
            shared = _common_suffix_length(previous, edges)
            yield WalkDelta(shared, edges[: len(edges) - shared])
        previous = edges


def delta_decode(
    graph: Graph, deltas: Iterable[WalkDelta], target: Optional[int] = None
) -> Iterator[Walk]:
    """Reconstruct the walk stream from delta records.

    ``target`` is only needed to materialize a potential empty walk
    (λ = 0 answers have no edges to infer the vertex from).
    """
    previous: Optional[Tuple[int, ...]] = None
    for delta in deltas:
        if previous is None:
            if delta.shared_suffix != 0:
                raise GraphError("first delta record must be complete")
            edges = delta.prefix_edges
        else:
            if delta.shared_suffix > len(previous):
                raise GraphError(
                    "delta reuses more edges than the previous answer has"
                )
            kept = previous[len(previous) - delta.shared_suffix:]
            edges = delta.prefix_edges + kept
        if edges:
            yield Walk(graph, edges)
        elif target is not None:
            yield Walk(graph, (), start=target)
        else:
            raise GraphError("empty walk needs an explicit target vertex")
        previous = edges


def stream_sizes(deltas: Iterable[WalkDelta]) -> Tuple[int, int]:
    """``(records, total symbols)`` of a delta stream — for benchmarks."""
    records = 0
    symbols = 0
    for delta in deltas:
        records += 1
        symbols += delta.size
    return records, symbols
