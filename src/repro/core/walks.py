"""Walk objects — the algorithm's outputs.

A walk (Definition 5) is an alternating sequence of vertices and edges.
Because consecutive edges share their junction vertex, a walk is fully
determined by its edge sequence — plus a start vertex for the empty
walk ``⟨v⟩``.  :class:`Walk` stores exactly that and renders the full
form on demand.
"""

from __future__ import annotations

from itertools import islice, product
from typing import Hashable, Iterator, List, Optional, Tuple

from repro.exceptions import GraphError
from repro.graph.database import Graph


class Walk:
    """An immutable walk in a graph database.

    >>> # doctest setup uses the Example 9 database
    >>> from repro.workloads.fraud import example9_graph
    >>> g = example9_graph()
    >>> w = Walk(g, (g.parallel_edges(g.vertex_id("Alix"), g.vertex_id("Dan"))[0],))
    >>> w.length
    1
    """

    __slots__ = ("_graph", "_edges", "_start")

    def __init__(
        self,
        graph: Graph,
        edges: Tuple[int, ...],
        start: Optional[int] = None,
    ) -> None:
        self._graph = graph
        self._edges = tuple(edges)
        if self._edges:
            self._start = graph.src(self._edges[0])
        elif start is None:
            raise GraphError("an empty walk needs an explicit start vertex")
        else:
            self._start = start
        for e1, e2 in zip(self._edges, self._edges[1:]):
            if graph.tgt(e1) != graph.src(e2):
                raise GraphError(
                    f"edges {e1} and {e2} do not concatenate"
                )

    @classmethod
    def from_edges_unchecked(
        cls,
        graph: Graph,
        edges: Tuple[int, ...],
        start: int,
    ) -> "Walk":
        """Construct without per-edge validation — enumerator use only.

        The enumeration loops build walks that concatenate by
        construction (each edge is chosen from ``In(Src(previous))``),
        so re-walking the edge list through the public constructor's
        checks would double the per-output cost.  ``edges`` must
        already be a tuple and ``start`` must equal
        ``graph.src(edges[0])`` (or the intended start vertex for the
        empty walk).
        """
        walk = cls.__new__(cls)
        walk._graph = graph
        walk._edges = edges
        walk._start = start
        return walk

    # -- structure ----------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The database this walk lives in."""
        return self._graph

    @property
    def edges(self) -> Tuple[int, ...]:
        """Edge ids, in walk order."""
        return self._edges

    @property
    def length(self) -> int:
        """``Len(w)`` — the number of edges."""
        return len(self._edges)

    @property
    def src(self) -> int:
        """``Src(w)`` — first vertex id."""
        return self._start

    @property
    def tgt(self) -> int:
        """``Tgt(w)`` — last vertex id."""
        if not self._edges:
            return self._start
        return self._graph.tgt(self._edges[-1])

    def vertices(self) -> List[int]:
        """All vertex ids, in walk order (length + 1 entries)."""
        result = [self._start]
        result.extend(self._graph.tgt(e) for e in self._edges)
        return result

    def vertex_names(self) -> List[Hashable]:
        """All vertex names, in walk order."""
        return [self._graph.vertex_name(v) for v in self.vertices()]

    def cost(self) -> int:
        """Total edge cost (= length when the graph has no costs)."""
        return sum(self._graph.cost(e) for e in self._edges)

    # -- labels ------------------------------------------------------------------

    def label_sets(self) -> List[Tuple[str, ...]]:
        """Per-edge label-name sets, in walk order."""
        return [self._graph.label_names_of(e) for e in self._edges]

    def label_words(
        self, limit: Optional[int] = None
    ) -> Iterator[Tuple[str, ...]]:
        """Iterate over ``Lbl(w)`` — one label choice per edge.

        The set can be exponential in the walk length, hence the
        generator and the optional ``limit``.
        """
        words = product(*self.label_sets())
        return islice(words, limit) if limit is not None else words

    # -- concatenation (Definition 5) ----------------------------------------------

    def concat(self, other: "Walk") -> "Walk":
        """``w · w'`` — requires ``Tgt(w) == Src(w')``."""
        if self._graph is not other._graph:
            raise GraphError("cannot concatenate walks from different graphs")
        if self.tgt != other.src:
            raise GraphError(
                f"walks do not concatenate: {self.tgt} != {other.src}"
            )
        return Walk(self._graph, self._edges + other._edges, self._start)

    def prepend_edge(self, e: int) -> "Walk":
        """``e · w`` — the paper's shorthand for extending backwards."""
        if self._graph.tgt(e) != self.src:
            raise GraphError(f"edge {e} does not end at walk source")
        return Walk(self._graph, (e,) + self._edges)

    # -- value semantics -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Walk):
            return NotImplemented
        return (
            self._graph is other._graph
            and self._edges == other._edges
            and self._start == other._start
        )

    def __hash__(self) -> int:
        return hash((id(self._graph), self._edges, self._start))

    def __len__(self) -> int:
        return len(self._edges)

    def __repr__(self) -> str:
        return f"Walk({self.describe()})"

    def to_dict(self) -> dict:
        """JSON-ready rendering — the answer format of the CLI's
        ``--json`` output.

        Contains the edge ids (stable within the graph), the vertex
        names, per-edge label sets, the length, and the total cost.
        """
        return {
            "edges": list(self._edges),
            "vertices": [str(name) for name in self.vertex_names()],
            "labels": [list(labels) for labels in self.label_sets()],
            "length": self.length,
            "cost": self.cost(),
        }

    def describe(self) -> str:
        """Human-readable rendering with vertex names and labels."""
        graph = self._graph
        if not self._edges:
            return f"⟨{graph.vertex_name(self._start)}⟩"
        parts = [str(graph.vertex_name(self._start))]
        for e in self._edges:
            labels = ",".join(graph.label_names_of(e))
            parts.append(f"-e{e}[{labels}]->")
            parts.append(str(graph.vertex_name(graph.tgt(e))))
        return " ".join(parts)
