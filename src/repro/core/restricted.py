"""Trail / simple-path semantics over the product construction.

The paper's machinery enumerates *distinct shortest walks*; Martens &
Trautner (arXiv:1710.02317) study the same enumeration problem under
the classic walk restrictions — **trails** (no repeated edge) and
**simple paths** (no repeated vertex).  This module implements both on
top of the existing pipeline in two regimes:

1. **Filter regime** (the common case).  Every restricted walk is a
   walk, so the shortest restricted length ``rλ`` is at least the
   walk λ.  When at least one of the length-λ distinct shortest walks
   satisfies the restriction, ``rλ = λ`` and the restricted answer set
   is exactly the λ-walk stream filtered by a per-walk edge/vertex-set
   check — an O(λ) predicate per output, preserving the paper's
   enumeration order and delay bounds.

2. **Fallback regime**.  When *no* length-λ walk passes (shortest-walk
   pruning is unsound for the restricted semantics: the shortest trail
   may be strictly longer than the shortest walk), the module falls
   back to a guided product-DFS: iterative deepening from ``λ + 1`` up
   to the restriction's natural bound (``|V| − 1`` edges for simple
   paths, ``|E|`` for trails), exploring restricted walks only (the
   restriction prunes exactly — every extension of a non-trail is a
   non-trail) and carrying the reachable NFA state set for language
   pruning.  Outputs are distinct by construction (distinct edge
   sequences) and enumerated in DFS order with ascending edge ids —
   deterministic, though not the paper's order.  The fallback is
   exponential in the worst case and runs only when the cheap regime
   produced nothing.

Remark 17's entry-count bound (and the memoized counting DP) applies
to the *walks* semantics only; restricted answer sets are produced by
enumeration, never by the DP.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.core.compile import CompiledQuery
from repro.core.walks import Walk
from repro.graph.database import Graph

__all__ = [
    "restriction_predicate",
    "restricted_lam",
    "restricted_filter",
    "fallback_walks",
]

#: The restricted semantics kinds this module implements.
KINDS = ("trails", "simple")


def restriction_predicate(
    kind: str, graph: Graph
) -> Callable[[Tuple[int, ...], int], bool]:
    """``pred(edges, source) -> bool`` for one restriction kind.

    The empty walk ``⟨s⟩`` satisfies both restrictions.
    """
    if kind == "trails":

        def pred(edges: Tuple[int, ...], source: int) -> bool:
            return len(set(edges)) == len(edges)

        return pred
    if kind == "simple":
        tgt = graph.tgt

        def pred(edges: Tuple[int, ...], source: int) -> bool:
            seen = {source}
            for e in edges:
                u = tgt(e)
                if u in seen:
                    return False
                seen.add(u)
            return True

        return pred
    raise ValueError(f"unknown restriction kind {kind!r}")


def _step(
    cq: CompiledQuery, states: FrozenSet[int], e: int
) -> FrozenSet[int]:
    """One edge move of the NFA state set (any label of ``e``)."""
    delta = cq.delta
    successors = set()
    for a in cq.graph.label_array[e]:
        for q in states:
            successors.update(delta[q].get(a, ()))
    if cq.has_eps and successors:
        eps = cq.eps
        stack = list(successors)
        while stack:
            p = stack.pop()
            for r in eps[p]:
                if r not in successors:
                    successors.add(r)
                    stack.append(r)
    return frozenset(successors)


def _depth_bound(kind: str, graph: Graph) -> int:
    """The restriction's natural walk-length ceiling."""
    if kind == "simple":
        return max(graph.vertex_count - 1, 0)
    return graph.edge_count


def _walks_at_depth(
    graph: Graph,
    cq: CompiledQuery,
    source: int,
    target: int,
    kind: str,
    depth: int,
) -> Iterator[Tuple[int, ...]]:
    """All restricted accepted walks of exactly ``depth`` edges.

    DFS over out-edges in ascending edge-id order; prunes on
    restriction violation (exact) and on an empty NFA state set.
    """
    final = cq.final
    if depth == 0:
        if source == target and (cq.initial_closure & final):
            yield ()
        return
    out = graph.out_array
    tgt = graph.tgt
    simple = kind == "simple"
    used: set = {source} if simple else set()
    edges: List[int] = []

    def explore(v: int, states: FrozenSet[int]) -> Iterator[Tuple[int, ...]]:
        if len(edges) == depth:
            if v == target and (states & final):
                yield tuple(edges)
            return
        for e in out[v]:
            u = tgt(e)
            if simple:
                if u in used:
                    continue
            elif e in used:
                continue
            nxt = _step(cq, states, e)
            if not nxt:
                continue
            used.add(u if simple else e)
            edges.append(e)
            yield from explore(u, nxt)
            edges.pop()
            used.discard(u if simple else e)

    yield from explore(source, frozenset(cq.initial_closure))


def restricted_lam(
    graph: Graph,
    cq: CompiledQuery,
    source: int,
    target: int,
    walk_lam: Optional[int],
    kind: str,
    shortest_walks: Callable[[], Iterable[Walk]],
) -> Optional[Tuple[int, str]]:
    """``(rλ, regime)`` for one ``(source, target)`` bucket, or ``None``.

    ``regime`` is ``"filter"`` when ``rλ`` equals the walk λ (the
    restricted answers are the filtered shortest-walk stream) and
    ``"fallback"`` when the guided product-DFS found strictly longer
    restricted answers.  ``None`` means no restricted walk matches at
    all.  ``shortest_walks`` must produce a *fresh* iterator over the
    length-λ distinct shortest walks; it is only consumed until the
    first surviving output.
    """
    if walk_lam is None:
        return None
    pred = restriction_predicate(kind, graph)
    for walk in shortest_walks():
        if pred(walk.edges, source):
            return walk_lam, "filter"
    bound = _depth_bound(kind, graph)
    for depth in range(walk_lam + 1, bound + 1):
        for _ in _walks_at_depth(graph, cq, source, target, kind, depth):
            return depth, "fallback"
    return None


def restricted_filter(
    graph: Graph,
    kind: str,
    source: int,
    walks: Iterable[Walk],
) -> Iterator[Walk]:
    """The filter regime's stream: restricted outputs of ``walks``."""
    pred = restriction_predicate(kind, graph)
    return (w for w in walks if pred(w.edges, source))


def fallback_walks(
    graph: Graph,
    cq: CompiledQuery,
    source: int,
    target: int,
    kind: str,
    rlam: int,
) -> Iterator[Walk]:
    """The fallback regime's stream: all restricted answers at ``rλ``."""
    for edges in _walks_at_depth(graph, cq, source, target, kind, rlam):
        yield Walk.from_edges_unchecked(graph, edges, source)
