"""``Main`` — orchestration of the full algorithm (paper, Figure 2).

:class:`DistinctShortestWalks` wires the phases together::

    compile → Annotate → Trim → Enumerate

and exposes the knobs used throughout the test and benchmark suites:

* ``mode="iterative"`` (default) — explicit-stack DFS, Theorem 2;
* ``mode="recursive"`` — the paper's pseudocode verbatim (depth λ);
* ``mode="memoryless"`` — ``NextOutput`` over ``ResumableTrim``,
  Theorem 18;
* ``mode="auto"`` — linear-time detection of the "simpler setting"
  (single-labeled D + deterministic A) and dispatch to the O(λ)-delay
  fast path when it applies, as the paper suggests.

Queries may be given as an :class:`~repro.automata.nfa.NFA`, a regex
AST, or a regular path query string (compiled with Thompson's
construction, preserving Corollary 20's bounds).
"""

from __future__ import annotations

import time
from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.automata.ops import remove_epsilon
from repro.core._query_input import QueryLike, as_nfa
from repro.core.annotate import Annotation, annotate
from repro.core.compile import CompiledQuery, compile_query
from repro.core.enumerate import enumerate_walks, enumerate_walks_recursive
from repro.core.memoryless import enumerate_memoryless
from repro.core.multiplicity import count_accepting_runs
from repro.core.simple import SimpleShortestWalks, simple_eligible
from repro.core.trim import (
    ResumableAnnotation,
    TrimmedAnnotation,
    resumable_trim,
    trim,
)
from repro.core.walks import Walk
from repro.exceptions import QueryError
from repro.graph.database import Graph
from repro.obs.trace import add_span

_MODES = ("iterative", "recursive", "memoryless", "auto")


class DistinctShortestWalks:
    """End-to-end driver for the Distinct Shortest Walks problem.

    >>> from repro.workloads.fraud import example9_graph
    >>> engine = DistinctShortestWalks(
    ...     example9_graph(), "h* s (h | s)*", "Alix", "Bob"
    ... )
    >>> engine.lam
    3
    >>> len(list(engine.enumerate()))
    4
    """

    def __init__(
        self,
        graph: Graph,
        query: QueryLike,
        source: Hashable,
        target: Hashable,
        mode: str = "iterative",
        compiled: Optional[CompiledQuery] = None,
    ) -> None:
        """``compiled`` injects a pre-built :class:`CompiledQuery` —
        the plan-cache hook of :mod:`repro.service`: a cached plan
        skips the compile phase entirely.  It must have been produced
        by :func:`~repro.core.compile.compile_query` for this exact
        ``graph`` and ``query`` automaton (checked by identity: label
        ids and ε-closures are graph- and automaton-specific)."""
        if mode not in _MODES:
            raise QueryError(f"unknown mode {mode!r}; expected one of {_MODES}")
        self.graph = graph
        self.automaton = as_nfa(query)
        # Keep the caller's original vertex designators: resolve_vertex
        # is not idempotent on graphs whose vertex *names* are ints, so
        # sub-engines that resolve names themselves must be handed the
        # originals, never the resolved ids.
        self._source_input = source
        self._target_input = target
        if compiled is not None:
            if compiled.graph is not graph:
                raise QueryError(
                    "compiled query belongs to a different graph"
                )
            if compiled.automaton is not self.automaton:
                raise QueryError(
                    "compiled query belongs to a different automaton"
                )
        self._compiled = compiled
        self.source = graph.resolve_vertex(source)
        self.target = graph.resolve_vertex(target)
        self.mode = mode
        self.timings: Dict[str, float] = {}

        self._cq: Optional[CompiledQuery] = None
        self._annotation: Optional[Annotation] = None
        self._trimmed: Optional[TrimmedAnnotation] = None
        self._resumable: Optional[ResumableAnnotation] = None
        self._simple: Optional[SimpleShortestWalks] = None
        self._count_cq: Optional[CompiledQuery] = None

    # -- preprocessing -----------------------------------------------------

    @property
    def uses_fast_path(self) -> bool:
        """True when ``mode='auto'`` selected the simple-setting engine."""
        return self.mode == "auto" and simple_eligible(
            self.graph, self.automaton
        )

    def preprocess(self) -> "DistinctShortestWalks":
        """Run the preprocessing phase once; later calls are no-ops.

        Records wall-clock timings per phase in :attr:`timings`
        (``compile``, ``annotate``, ``trim``, ``total``).  On the
        packed pipeline (the default), ``trim`` and the memoryless
        mode's ``resumable_trim`` wrap one shared
        :meth:`~repro.core.annotate.Annotation.packed_cells` build, so
        the two together cost a single O(entries) pass.
        """
        if self._annotation is not None or self._simple is not None:
            return self
        started = time.perf_counter()
        if self.uses_fast_path:
            self._simple = SimpleShortestWalks(
                self.graph, self.automaton,
                self._source_input, self._target_input,
            ).preprocess()
            self.timings["total"] = time.perf_counter() - started
            return self

        t0 = time.perf_counter()
        if self._compiled is not None:
            self._cq = self._compiled
        else:
            self._cq = compile_query(self.graph, self.automaton)
        t1 = time.perf_counter()
        self._annotation = annotate(self._cq, self.source, self.target)
        t2 = time.perf_counter()
        self._trimmed = trim(self.graph, self._annotation)
        t3 = time.perf_counter()
        if self.mode == "memoryless":
            self._resumable = resumable_trim(self.graph, self._annotation)
        t4 = time.perf_counter()
        self.timings.update(
            {
                "compile": t1 - t0,
                "annotate": t2 - t1,
                "trim": t3 - t2,
                "resumable_trim": t4 - t3,
                "total": t4 - started,
            }
        )
        # Phase spans from the timings already measured (no-ops with
        # no active trace); an injected plan was compiled — and traced
        # — by its builder, so no compile span here in that case.
        if self._compiled is None:
            add_span("compile", t1 - t0)
        add_span("annotate", t2 - t1, cached=False)
        add_span("trim", t3 - t2)
        return self

    # -- inspection ------------------------------------------------------------

    @property
    def lam(self) -> Optional[int]:
        """λ — the answer length; ``None`` when no walk matches."""
        self.preprocess()
        if self._simple is not None:
            return self._simple.lam
        assert self._annotation is not None
        return self._annotation.lam

    @property
    def is_empty(self) -> bool:
        """True when the answer set is empty."""
        return self.lam is None

    @property
    def annotation(self) -> Annotation:
        """The raw annotation (general modes only) — used by tests."""
        self.preprocess()
        if self._annotation is None:
            raise QueryError("fast-path engine exposes no annotation")
        return self._annotation

    @property
    def trimmed(self) -> TrimmedAnnotation:
        """The trimmed annotation (general modes only) — used by tests."""
        self.preprocess()
        if self._trimmed is None:
            raise QueryError("fast-path engine exposes no trimmed annotation")
        return self._trimmed

    # -- enumeration -----------------------------------------------------------------

    def enumerate(self) -> Iterator[Walk]:
        """Enumerate the answer set ⟦A⟧(D, s, t), each walk once.

        General modes emit walks in the paper's DFS order (children by
        increasing ``TgtIdx``); the fast path may use a different
        order.  The returned iterator shares preprocessing structures —
        run one enumeration at a time per engine (abandoning an
        iterator is safe: cursors are restored on close).
        """
        self.preprocess()
        if self._simple is not None:
            return self._simple.enumerate()
        assert self._annotation is not None
        ann = self._annotation
        if self.mode == "recursive":
            assert self._trimmed is not None
            return enumerate_walks_recursive(
                self.graph, self._trimmed, ann.lam, self.target,
                ann.target_states,
            )
        if self.mode == "memoryless":
            assert self._resumable is not None
            return enumerate_memoryless(
                self.graph, self._resumable, ann.lam, self.target,
                ann.target_states,
            )
        assert self._trimmed is not None
        return enumerate_walks(
            self.graph, self._trimmed, ann.lam, self.target,
            ann.target_states,
        )

    def __iter__(self) -> Iterator[Walk]:
        return self.enumerate()

    def enumerate_with_multiplicity(
        self, method: str = "recompute"
    ) -> Iterator[Tuple[Walk, int]]:
        """Yield ``(walk, multiplicity)`` pairs (Section 5.3).

        The multiplicity is the number of accepting runs of the
        (ε-eliminated) query over the walk's label sets.  Two
        implementations, both within the O(λ × |A|) delay bound and
        both offered by the paper:

        * ``method="recompute"`` (default) — rerun the query over each
          finished walk (a DP costing O(λ × |A|) per output);
        * ``method="tracked"`` — carry suffix-run counts down the DFS
          ("keep track of the number of times each state has been
          produced along the walk"), one Δ-sweep per tree edge.

        The fast-path engine has no annotation to track over, so
        ``"tracked"`` falls back to recomputation there.
        """
        if method not in ("recompute", "tracked"):
            raise QueryError(
                f"unknown multiplicity method {method!r}; "
                "expected 'recompute' or 'tracked'"
            )
        self.preprocess()
        if self._count_cq is None:
            automaton = self.automaton
            if automaton.has_epsilon:
                automaton = remove_epsilon(automaton)
            self._count_cq = compile_query(self.graph, automaton)
        if method == "tracked" and self._trimmed is not None:
            from repro.core.multiplicity import enumerate_with_runs

            assert self._annotation is not None
            ann = self._annotation
            return enumerate_with_runs(
                self.graph,
                self._trimmed,
                self._count_cq,
                ann.lam,
                self.target,
                ann.target_states,
            )
        count_cq = self._count_cq
        return (
            (walk, count_accepting_runs(count_cq, walk.edges))
            for walk in self.enumerate()
        )

    # -- conveniences ---------------------------------------------------------------------

    def count(self, method: str = "enumerate") -> int:
        """Number of answers.

        ``method="enumerate"`` (default) runs a full enumeration —
        O(answers × λ × |A|).  ``method="dp"`` counts without
        enumerating, via the memoized dynamic program of
        :func:`repro.core.count.count_distinct_shortest`; on answer
        sets with many shared suffixes (or astronomically many
        answers) it is exponentially faster.  The fast-path engine
        stores no annotation, so ``"dp"`` falls back to enumeration
        there.
        """
        if method not in ("enumerate", "dp"):
            raise QueryError(
                f"unknown count method {method!r}; "
                "expected 'enumerate' or 'dp'"
            )
        self.preprocess()
        if method == "dp" and self._annotation is not None:
            from repro.core.count import count_distinct_shortest

            ann = self._annotation
            return count_distinct_shortest(
                self.graph, ann, ann.lam, self.target, ann.target_states
            )
        return sum(1 for _ in self.enumerate())

    def first(self, k: int) -> List[Walk]:
        """The first ``k`` answers in enumeration order."""
        result: List[Walk] = []
        iterator = self.enumerate()
        for walk in iterator:
            result.append(walk)
            if len(result) >= k:
                break
        if hasattr(iterator, "close"):
            iterator.close()
        return result

    def structure_sizes(self) -> Dict[str, int]:
        """Entry counts of the precomputed structures (Remark 17).

        All three counts are O(1) reads on the packed pipeline: the
        annotation count is the packed entry-array length, the trimmed
        and resumable counts the shared cell-array length.
        """
        self.preprocess()
        if self._annotation is None:
            return {}
        sizes = {
            "annotation_entries": self._annotation.annotation_entries(),
        }
        if self._trimmed is not None:
            sizes["trimmed_items"] = self._trimmed.total_items()
        if self._resumable is not None:
            sizes["resumable_items"] = self._resumable.total_items()
        return sizes


def distinct_shortest_walks(
    graph: Graph,
    query: QueryLike,
    source: Hashable,
    target: Hashable,
    mode: str = "iterative",
) -> Iterator[Walk]:
    """Functional one-shot facade over :class:`DistinctShortestWalks`."""
    return DistinctShortestWalks(graph, query, source, target, mode).enumerate()
