"""The ``Enumerate`` phase (paper, Figure 2 lines 42-66).

``Enumerate`` performs a depth-first traversal of the backward-search
tree ``T`` (Definition 12): nodes are suffixes of answers, the root is
``⟨t⟩``, and the children of a node ``w`` are the walks ``e · w``,
ordered by ``TgtIdx(e)``.  Each node carries a certificate set ``S(w)``
(Definition 14) of automaton states that witness at least one accepting
run; Lemma 15 shows ``S(e · w)`` is the union of the predecessor lists
found for ``e`` at the heads of the queues ``C_u[p]``, ``p ∈ S(w)``.

Two implementations are provided:

* :func:`enumerate_walks` — an **iterative** DFS with an explicit
  stack.  This is the default: the recursion depth of the paper's
  formulation is λ, which would hit Python's recursion limit on long
  walks.  Frames carry a *remaining budget* instead of a depth, which
  lets the same code serve the Distinct Cheapest Walks extension
  (budget = remaining cost, leaf ⇔ budget 0); with unit costs it is
  exactly the paper's algorithm.  On packed trimmed annotations (the
  default) the DFS runs directly over the flat cell arrays: queue
  heads are integer cursor reads, cursor restarts are integer stores,
  and child certificates come from the per-cell cached tuples — the
  common single-queue-head case unions nothing and allocates nothing.
  The unit-cost loop is specialized (no per-edge cost callback); the
  callback fires only in cheapest mode.
* :func:`enumerate_walks_recursive` — a **faithful transcription** of
  the paper's pseudocode (recursive, cons-list walk, unit lengths),
  kept for auditability and cross-checked by the test suite for
  identical output order.  It runs over the compatibility queue view.

Delay: between two consecutive outputs the DFS traverses at most 2λ
tree edges, each costing O(|Q| + Σ_p |X_p|) = O(|A|) — hence the
O(λ × |A|) bound of Theorem 2.  No output is ever produced twice, and
abandoned generators restore the shared queue cursors.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Iterator, List, Optional, Tuple

from repro.core.trim import TrimmedAnnotation
from repro.core.walks import Walk
from repro.datastructures.cons_list import ConsList, nil
from repro.graph.database import Graph

#: Edge-cost callback; unit costs reproduce the paper's setting.
CostFn = Callable[[int], int]


def enumerate_walks(
    graph: Graph,
    trimmed: TrimmedAnnotation,
    budget: Optional[int],
    target: int,
    start_states: FrozenSet[int],
    cost_of: Optional[CostFn] = None,
) -> Iterator[Walk]:
    """Enumerate distinct shortest (or cheapest) walks, leftmost-first.

    Parameters
    ----------
    budget:
        λ — the length (or total cost) of the answers.  ``None`` or an
        empty ``start_states`` yields nothing (no matching walk);
        ``0`` yields the trivial walk ``⟨target⟩``.
    start_states:
        ``S(⟨t⟩)`` — the final states reached at the target at level λ.
    cost_of:
        per-edge cost; ``None`` (the default) selects the specialized
        unit-cost loop (the paper's setting, no per-edge callback).

    Dispatches to the packed-array DFS when ``trimmed`` carries packed
    cells whose compatibility queues have not been materialized;
    otherwise (mapping-built structures, instrumentation proxies) the
    original queue-object DFS runs.  Both produce the identical output
    sequence.
    """
    if budget is None or not start_states:
        return
    if budget == 0:
        yield Walk(graph, (), start=target)
        return
    if trimmed.cells is not None and trimmed._queues is None:
        yield from _enumerate_packed(
            graph, trimmed, budget, target, start_states, cost_of
        )
        return

    unit = cost_of is None
    trimmed.acquire()
    queues = trimmed.queues
    ti_arr = graph.tgt_idx_array
    src_arr = graph.src_array

    chosen: List[int] = []  # Edges from the target side, innermost last.
    # Frame: (vertex, certificate states, remaining budget).
    stack: List[Tuple[int, Tuple[int, ...], int]] = [
        (target, tuple(sorted(start_states)), budget)
    ]
    try:
        while stack:
            u, states, remaining = stack[-1]
            if remaining == 0:
                # Leaf of T: ⟨chosen⟩ reversed is an answer (Remark 13).
                edges = tuple(reversed(chosen))
                yield Walk.from_edges_unchecked(graph, edges, src_arr[edges[0]])
                stack.pop()
                chosen.pop()
                continue

            per_state = queues[u]
            # Lines 48-53: the minimal not-yet-consumed child edge can
            # only sit at a queue head, because queues are TgtIdx-sorted.
            emin = -1
            emin_ti = -1
            for p in states:
                queue = per_state.get(p)
                if queue is not None and not queue.exhausted:
                    e = queue.peek()[0]
                    e_ti = ti_arr[e]
                    if emin < 0 or e_ti < emin_ti:
                        emin, emin_ti = e, e_ti

            if emin < 0:
                # Lines 54-57: all queues exhausted — restart and return.
                for p in states:
                    queue = per_state.get(p)
                    if queue is not None:
                        queue.restart()
                stack.pop()
                if chosen:
                    chosen.pop()
                continue

            # Lines 58-65: collect every occurrence of emin at the heads,
            # union the predecessor lists into the child certificate.
            child_states = set()
            for p in states:
                queue = per_state.get(p)
                if queue is not None and not queue.exhausted:
                    e, preds = queue.peek()
                    if e == emin:
                        child_states.update(preds)
                        queue.advance()

            chosen.append(emin)
            stack.append(
                (
                    src_arr[emin],
                    tuple(sorted(child_states)),
                    remaining - 1 if unit else remaining - cost_of(emin),
                )
            )
    finally:
        # A closed/abandoned generator must not leave cursors dirty:
        # the trimmed structure is shared by subsequent enumerations.
        trimmed.restart_all()


def _enumerate_packed(
    graph: Graph,
    trimmed: TrimmedAnnotation,
    budget: int,
    target: int,
    start_states: FrozenSet[int],
    cost_of: Optional[CostFn],
) -> Iterator[Walk]:
    """The packed-array DFS behind :func:`enumerate_walks`.

    Same traversal, same output order; queue state is the per-node
    cursor array and the flat cell arrays of the shared
    :class:`~repro.datastructures.packed.PackedCells`.  Certificates
    are the per-cell cached tuples — already sorted and deduplicated —
    merged only when ``emin`` sits at more than one state's head.
    """
    cells = trimmed.cells
    n_states = cells.n_states
    key_indptr = cells.key_indptr
    cell_ti = cells.cell_ti
    cell_edge = cells.cell_edge
    pred_indptr = cells.cell_pred_indptr
    preds_arr = cells.back.ent_pred
    certs = cells.certs
    cur = trimmed.cursor
    src_arr = graph.src_array
    unit = cost_of is None

    trimmed.acquire()
    chosen: List[int] = []
    # Frame: (vertex, certificate states, remaining budget).
    stack: List[Tuple[int, Tuple[int, ...], int]] = [
        (target, tuple(sorted(start_states)), budget)
    ]
    try:
        while stack:
            u, states, remaining = stack[-1]
            if remaining == 0:
                edges = tuple(reversed(chosen))
                yield Walk.from_edges_unchecked(graph, edges, src_arr[edges[0]])
                stack.pop()
                chosen.pop()
                continue

            base = u * n_states
            # Lines 48-53: queue heads are cursor reads; TgtIdx order
            # within a node makes the head the minimal candidate.
            emin_c = -1
            emin_ti = -1
            for p in states:
                k = base + p
                c = cur[k]
                if c < key_indptr[k + 1]:
                    t = cell_ti[c]
                    if emin_c < 0 or t < emin_ti:
                        emin_c, emin_ti = c, t

            if emin_c < 0:
                # Lines 54-57: restart this node's cursors and return.
                for p in states:
                    k = base + p
                    cur[k] = key_indptr[k]
                stack.pop()
                if chosen:
                    chosen.pop()
                continue

            # Lines 58-65: consume emin at every head carrying it and
            # union the (cached, sorted) certificates.
            single: Optional[Tuple[int, ...]] = None
            merged = None
            for p in states:
                k = base + p
                c = cur[k]
                if c < key_indptr[k + 1] and cell_ti[c] == emin_ti:
                    cur[k] = c + 1
                    cert = certs[c]
                    if cert is None:
                        lo, hi = pred_indptr[c], pred_indptr[c + 1]
                        if hi == lo + 1:
                            cert = (preds_arr[lo],)
                        else:
                            cert = tuple(sorted(set(preds_arr[lo:hi])))
                        certs[c] = cert
                    if merged is not None:
                        merged.update(cert)
                    elif single is None:
                        single = cert
                    elif single != cert:
                        merged = set(single)
                        merged.update(cert)
            child_states = (
                single if merged is None else tuple(sorted(merged))
            )

            emin = cell_edge[emin_c]
            chosen.append(emin)
            stack.append(
                (
                    src_arr[emin],
                    child_states,
                    remaining - 1 if unit else remaining - cost_of(emin),
                )
            )
    finally:
        trimmed.restart_all()


def enumerate_walks_recursive(
    graph: Graph,
    trimmed: TrimmedAnnotation,
    lam: Optional[int],
    target: int,
    start_states: FrozenSet[int],
) -> Iterator[Walk]:
    """Faithful recursive transcription of the paper's ``Enumerate``.

    Uses a cons-list for the walk under construction (O(1) prepend and
    copy, per Section 2.1) and recursion of depth λ.  Intended for
    reference and testing; prefer :func:`enumerate_walks` in
    applications (no recursion-depth limit, cheapest-walk support).
    Runs over the queue-object view (materialized on demand from a
    packed trimmed annotation).
    """
    if lam is None or not start_states:
        return
    if lam == 0:
        yield Walk(graph, (), start=target)
        return

    queues = trimmed.queues
    ti_arr = graph.tgt_idx_array
    src_arr = graph.src_array

    def recurse(
        level: int, walk: ConsList, states: Iterable[int]
    ) -> Iterator[Walk]:
        # Line 43: u ← Src(w); the walk stores edges, whose first
        # element's source is the current vertex (or t for the root).
        first = next(iter(walk), None)
        u = target if first is None else src_arr[first]
        if level == 0:
            # Line 45: output w.
            yield Walk(graph, tuple(walk))
            return
        per_state = queues[u]
        while True:
            # Lines 48-53.
            emin = -1
            emin_ti = -1
            for p in states:
                queue = per_state.get(p)
                if queue is not None and not queue.exhausted:
                    e = queue.peek()[0]
                    if emin < 0 or ti_arr[e] < emin_ti:
                        emin, emin_ti = e, ti_arr[e]
            if emin < 0:
                # Lines 54-57.
                for p in states:
                    queue = per_state.get(p)
                    if queue is not None:
                        queue.restart()
                return
            # Lines 58-65.
            child_states = set()
            for p in states:
                queue = per_state.get(p)
                if queue is not None and not queue.exhausted:
                    e, preds = queue.peek()
                    if e == emin:
                        child_states.update(preds)
                        queue.advance()
            # Line 66: Enumerate(C, ℓ-1, e·w, S′).
            yield from recurse(
                level - 1, walk.prepend(emin), tuple(sorted(child_states))
            )

    trimmed.acquire()
    try:
        yield from recurse(lam, nil, tuple(sorted(start_states)))
    finally:
        trimmed.restart_all()
