"""One source to many targets (paper, Section 5.3).

Instead of stopping at the first final state reached at a single
target, ``Annotate`` runs until no new ``(vertex, state)`` pair can be
discovered — same worst-case cost O(|D| × |A|) since each pair is
visited at most once.  Afterwards, *any* vertex can serve as a target:
its λ and start-state certificate are read off the saturated ``L``
maps, and the ordinary enumeration runs per target over the one shared
trimmed annotation.

Saturation visits the *entire* reachable product, so it benefits the
most from the label-indexed traversal (every frontier pair pays the
intersection cost, none is cut short by an early stop).  The
``reference`` flag switches to the retained pre-index traversals —
useful for A/B measurements and the equivalence tests, not for
production use.
"""

from __future__ import annotations

from typing import Hashable, Iterator, List, Optional, Tuple

from repro.automata.nfa import NFA
from repro.core.annotate import Annotation, annotate, annotate_reference
from repro.core.cheapest import cheapest_annotate, cheapest_annotate_reference
from repro.core.compile import compile_query
from repro.core.enumerate import enumerate_walks
from repro.core.trim import TrimmedAnnotation, trim
from repro.core.walks import Walk
from repro.graph.database import Graph


class MultiTargetShortestWalks:
    """Shared-preprocessing enumeration towards many targets.

    >>> from repro.workloads.fraud import example9_graph, example9_automaton
    >>> mt = MultiTargetShortestWalks(
    ...     example9_graph(), example9_automaton(), "Alix"
    ... )
    >>> sorted(mt.reached_target_names())  # doctest: +NORMALIZE_WHITESPACE
    ['Bob', 'Cassie', 'Dan', 'Eve']

    Enumerations towards different targets share the trimmed queues;
    consume one iterator fully (or close it) before starting the next.
    """

    def __init__(
        self,
        graph: Graph,
        query,
        source: Hashable,
        cheapest: bool = False,
        reference: bool = False,
    ) -> None:
        from repro.core._query_input import as_nfa

        self.graph = graph
        self.source = graph.resolve_vertex(source)
        self.cheapest = cheapest
        self.reference = reference
        self.automaton = as_nfa(query)
        self._cq = compile_query(graph, self.automaton)
        self._annotation: Optional[Annotation] = None
        self._trimmed: Optional[TrimmedAnnotation] = None

    def preprocess(self) -> "MultiTargetShortestWalks":
        """Saturating annotate + trim; idempotent."""
        if self._annotation is None:
            if self.reference:
                annotate_fn = (
                    cheapest_annotate_reference
                    if self.cheapest
                    else annotate_reference
                )
            else:
                annotate_fn = cheapest_annotate if self.cheapest else annotate
            self._annotation = annotate_fn(
                self._cq, self.source, None, saturate=True
            )
            self._trimmed = trim(self.graph, self._annotation)
        return self

    # -- target inspection ---------------------------------------------------

    def lam_for(self, target: Hashable) -> Optional[int]:
        """λ_t — length (cost) of a shortest matching walk to ``target``.

        ``None`` when no matching walk exists.
        """
        self.preprocess()
        assert self._annotation is not None
        t = self.graph.resolve_vertex(target)
        lam_t, _ = self._annotation.target_info(t)
        return lam_t

    def reached_targets(self) -> List[int]:
        """Vertex ids reachable by at least one matching walk."""
        self.preprocess()
        assert self._annotation is not None
        return [
            t
            for t in self.graph.vertices()
            if self._annotation.target_info(t)[0] is not None
        ]

    def reached_target_names(self) -> List[Hashable]:
        """Vertex names reachable by at least one matching walk."""
        return [self.graph.vertex_name(t) for t in self.reached_targets()]

    # -- enumeration ------------------------------------------------------------

    def walks_to(self, target: Hashable) -> Iterator[Walk]:
        """Enumerate distinct shortest matching walks to one target."""
        self.preprocess()
        assert self._annotation is not None and self._trimmed is not None
        t = self.graph.resolve_vertex(target)
        lam_t, states = self._annotation.target_info(t)
        cost_arr = self.graph.cost_array if self.cheapest else None
        return enumerate_walks(
            self.graph,
            self._trimmed,
            lam_t,
            t,
            states,
            cost_of=(lambda e: cost_arr[e]) if cost_arr is not None else None,
        )

    def all_walks(
        self, targets: Optional[List[Hashable]] = None
    ) -> Iterator[Tuple[Hashable, Walk]]:
        """Yield ``(target_name, walk)`` for every (requested) target.

        Targets are processed sequentially, reusing the shared
        preprocessing, which is the point of the extension.
        """
        self.preprocess()
        target_ids = (
            [self.graph.resolve_vertex(t) for t in targets]
            if targets is not None
            else self.reached_targets()
        )
        for t in target_ids:
            name = self.graph.vertex_name(t)
            for walk in self.walks_to(t):
                yield name, walk
