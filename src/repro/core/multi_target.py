"""One source to many targets (paper, Section 5.3).

Instead of stopping at the first final state reached at a single
target, ``Annotate`` runs until no new ``(vertex, state)`` pair can be
discovered — same worst-case cost O(|D| × |A|) since each pair is
visited at most once.  Afterwards, *any* vertex can serve as a target:
its λ and start-state certificate are read off the saturated ``L``
maps, and the ordinary enumeration runs per target over the one shared
trimmed annotation.

Saturation visits the *entire* reachable product, so it benefits the
most from the label-indexed traversal (every frontier pair pays the
intersection cost, none is cut short by an early stop) — and from the
packed annotation layout: per-target λ/certificate reads go straight
to the flat ``dist`` array (no ``L`` dict materialization over |V|
targets), and the eager :attr:`trimmed` and read-only
:attr:`resumable` structures wrap the *same* packed cell arrays, so a
saturated annotation cached by the query service serves every target
and both engine families from one O(entries) build.  The
``reference`` flag switches to the retained pre-index traversals —
useful for A/B measurements and the equivalence tests, not for
production use.
"""

from __future__ import annotations

import threading
from typing import Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.core.annotate import Annotation, annotate, annotate_reference
from repro.core.cheapest import cheapest_annotate, cheapest_annotate_reference
from repro.core.compile import CompiledQuery, compile_query
from repro.core.enumerate import enumerate_walks
from repro.core.memoryless import enumerate_memoryless
from repro.core.trim import (
    ResumableAnnotation,
    TrimmedAnnotation,
    resumable_trim,
    trim,
)
from repro.core.walks import Walk
from repro.exceptions import QueryError
from repro.graph.database import Graph
from repro.obs.trace import span as _span


class MultiTargetShortestWalks:
    """Shared-preprocessing enumeration towards many targets.

    >>> from repro.workloads.fraud import example9_graph, example9_automaton
    >>> mt = MultiTargetShortestWalks(
    ...     example9_graph(), example9_automaton(), "Alix"
    ... )
    >>> sorted(mt.reached_target_names())  # doctest: +NORMALIZE_WHITESPACE
    ['Bob', 'Cassie', 'Dan', 'Eve']

    Enumerations towards different targets share the trimmed queues;
    consume one iterator fully (or close it) before starting the next.
    """

    def __init__(
        self,
        graph: Graph,
        query,
        source: Hashable,
        cheapest: bool = False,
        reference: bool = False,
        compiled: Optional[CompiledQuery] = None,
    ) -> None:
        """``compiled`` injects a pre-built
        :class:`~repro.core.compile.CompiledQuery` (the plan-cache hook
        of :mod:`repro.service`); it must match ``graph`` and the
        ``query`` automaton by identity."""
        from repro.core._query_input import as_nfa

        self.graph = graph
        self.source = graph.resolve_vertex(source)
        self.cheapest = cheapest
        self.reference = reference
        self.automaton = as_nfa(query)
        if compiled is not None:
            if compiled.graph is not graph:
                raise QueryError(
                    "compiled query belongs to a different graph"
                )
            if compiled.automaton is not self.automaton:
                raise QueryError(
                    "compiled query belongs to a different automaton"
                )
            self._cq = compiled
        else:
            self._cq = compile_query(graph, self.automaton)
        self._annotation: Optional[Annotation] = None
        self._trimmed: Optional[TrimmedAnnotation] = None
        self._resumable: Optional[ResumableAnnotation] = None
        # Build-once guard for the lazily derived resumable structure —
        # it may be requested concurrently by the service's thread pool.
        self._resumable_lock = threading.Lock()

    def preprocess(self) -> "MultiTargetShortestWalks":
        """Saturating annotate + trim; idempotent."""
        if self._annotation is None:
            if self.reference:
                annotate_fn = (
                    cheapest_annotate_reference
                    if self.cheapest
                    else annotate_reference
                )
            else:
                annotate_fn = cheapest_annotate if self.cheapest else annotate
            with _span("annotate", cached=False, saturate=True):
                self._annotation = annotate_fn(
                    self._cq, self.source, None, saturate=True
                )
            with _span("trim"):
                self._trimmed = trim(self.graph, self._annotation)
        return self

    # -- structure access ----------------------------------------------------

    @property
    def annotation(self) -> Annotation:
        """The saturated annotation (preprocesses on first access)."""
        self.preprocess()
        assert self._annotation is not None
        return self._annotation

    @property
    def trimmed(self) -> TrimmedAnnotation:
        """The shared trimmed annotation (cursors are mutable state —
        see :meth:`walks_to` for the safe ways to enumerate over it)."""
        self.preprocess()
        assert self._trimmed is not None
        return self._trimmed

    @property
    def resumable(self) -> ResumableAnnotation:
        """The read-only ``ResumableTrim`` form, built once on demand.

        Unlike :attr:`trimmed` it is never mutated, so any number of
        concurrent enumerations (one per target, or several pages of
        the same target) may share it — this is the structure the
        batched query service caches per ``(query, source)``.
        """
        self.preprocess()
        if self._resumable is None:
            with self._resumable_lock:
                if self._resumable is None:
                    assert self._annotation is not None
                    self._resumable = resumable_trim(
                        self.graph, self._annotation
                    )
        return self._resumable

    # -- target inspection ---------------------------------------------------

    def lam_for(self, target: Hashable) -> Optional[int]:
        """λ_t — length (cost) of a shortest matching walk to ``target``.

        ``None`` when no matching walk exists.
        """
        self.preprocess()
        assert self._annotation is not None
        t = self.graph.resolve_vertex(target)
        lam_t, _ = self._annotation.target_info(t)
        return lam_t

    def reached_targets(self) -> List[int]:
        """Vertex ids reachable by at least one matching walk."""
        self.preprocess()
        assert self._annotation is not None
        return [
            t
            for t in self.graph.vertices()
            if self._annotation.target_info(t)[0] is not None
        ]

    def reached_target_names(self) -> List[Hashable]:
        """Vertex names reachable by at least one matching walk."""
        return [self.graph.vertex_name(t) for t in self.reached_targets()]

    # -- enumeration ------------------------------------------------------------

    def walks_to(
        self,
        target: Hashable,
        memoryless: bool = False,
        resume_after: Optional[Sequence[int]] = None,
        snapshot: bool = False,
    ) -> Iterator[Walk]:
        """Enumerate distinct shortest matching walks to one target.

        Three execution flavours over the one shared preprocessing:

        * default — the eager enumerator on the shared trimmed queues
          (one active enumeration at a time, as before);
        * ``snapshot=True`` — the eager enumerator on a private cursor
          :meth:`~repro.core.trim.TrimmedAnnotation.snapshot`, safe to
          run concurrently with other enumerations;
        * ``memoryless=True`` — ``NextOutput`` over the shared
          read-only :attr:`resumable` structure; also concurrent-safe,
          and ``resume_after`` (a previous output's edge sequence)
          restarts the enumeration right after that walk in O(λ)
          instead of re-walking the prefix of the output sequence.

        ``resume_after`` requires ``memoryless=True`` (the eager
        enumerators have no O(1) seek).
        """
        self.preprocess()
        assert self._annotation is not None and self._trimmed is not None
        if resume_after is not None and not memoryless:
            raise QueryError(
                "resume_after requires memoryless=True (the eager "
                "enumerators cannot seek)"
            )
        t = self.graph.resolve_vertex(target)
        lam_t, states = self._annotation.target_info(t)
        cost_arr = self.graph.cost_array if self.cheapest else None
        cost_of = (lambda e: cost_arr[e]) if cost_arr is not None else None
        if memoryless:
            return enumerate_memoryless(
                self.graph,
                self.resumable,
                lam_t,
                t,
                states,
                cost_of=cost_of,
                resume_after=resume_after,
            )
        trimmed = self._trimmed.snapshot() if snapshot else self._trimmed
        return enumerate_walks(
            self.graph,
            trimmed,
            lam_t,
            t,
            states,
            cost_of=cost_of,
        )

    def all_walks(
        self, targets: Optional[List[Hashable]] = None
    ) -> Iterator[Tuple[Hashable, Walk]]:
        """Yield ``(target_name, walk)`` for every (requested) target.

        Targets are processed sequentially, reusing the shared
        preprocessing, which is the point of the extension.
        """
        self.preprocess()
        target_ids = (
            [self.graph.resolve_vertex(t) for t in targets]
            if targets is not None
            else self.reached_targets()
        )
        for t in target_ids:
            name = self.graph.vertex_name(t)
            for walk in self.walks_to(t):
                yield name, walk
