"""Memoryless enumeration — ``NextOutput`` (paper, Section 4.2, Thm 18).

A *memoryless* enumeration algorithm computes the (i+1)-th output from
the i-th output and the (read-only) precomputed structures alone; no
cursor state survives between outputs.  The paper obtains this by
replacing the queues ``C_u[p]`` with skip-indexed arrays
(``ResumableTrim``) that can be *seeked* in O(1): given the previous
output ``w``, a guided descent re-positions local integer cursors along
``w``'s path in the backward-search tree, then the ordinary DFS resumes
and produces exactly the next leaf.

The output sequence is identical to
:func:`repro.core.enumerate.enumerate_walks`; the delay remains
O(λ × |A|) (Theorem 18) because seeking is O(1) per (frame, state).

On the packed :class:`~repro.core.trim.ResumableAnnotation` (the
default), the shared structure is the annotation's flat cell arrays:
a frame cursor is an absolute cell position, seeking is a binary
search over the node's (tiny, ``TgtIdx``-ascending) cell span, and
certificates come from the per-cell cached tuples.  Nothing is ever
written to the shared arrays, so any number of concurrent
enumerations may run — the property the batched query service's
annotation cache relies on.  The legacy
:class:`~repro.datastructures.ResumableIndex` object view is used
automatically whenever it has been materialized (e.g. by the
step-counting instrumentation tests).

Key cursor invariant (matching the eager enumerator): when the DFS has
descended into edge ``e`` from a frame at vertex ``u``, every queue of
that frame is positioned at its first non-empty cell with
``TgtIdx > TgtIdx(e)`` — queues consume cells in globally increasing
``TgtIdx`` order, so the guided descent can restore all cursors with a
single ``after(TgtIdx(e))`` per state.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from repro.core.trim import ResumableAnnotation
from repro.core.walks import Walk
from repro.graph.database import Graph

CostFn = Callable[[int], int]


def _unit_cost(_e: int) -> int:
    return 1


class _Frame:
    """One level of the (per-call, local) DFS stack."""

    __slots__ = ("vertex", "states", "cursors", "via_edge", "remaining")

    def __init__(
        self,
        vertex: int,
        states: Tuple[int, ...],
        cursors: Dict[int, Optional[int]],
        via_edge: Optional[int],
        remaining: int,
    ) -> None:
        self.vertex = vertex
        self.states = states
        self.cursors = cursors
        self.via_edge = via_edge
        self.remaining = remaining


def _fresh_cursors(
    resumable: ResumableAnnotation, vertex: int, states: Tuple[int, ...]
) -> Dict[int, Optional[int]]:
    cursors: Dict[int, Optional[int]] = {}
    for p in states:
        index = resumable.for_state(vertex, p)
        cursors[p] = None if index is None else index.first()
    return cursors


def next_output(
    graph: Graph,
    resumable: ResumableAnnotation,
    budget: Optional[int],
    target: int,
    start_states: FrozenSet[int],
    previous_edges: Optional[Sequence[int]] = None,
    cost_of: Optional[CostFn] = None,
) -> Optional[Walk]:
    """Compute the output following ``previous_edges`` (or the first).

    ``previous_edges`` is the edge sequence of the previously returned
    walk (source → target order); ``None`` requests the first output.
    Returns ``None`` when the enumeration is finished.  The shared
    ``resumable`` structure is never mutated.
    """
    if budget is None or not start_states:
        return None
    if budget == 0:
        # Single trivial answer ⟨t⟩; it has no successor.
        return None if previous_edges is not None else Walk(graph, (), start=target)
    if resumable.cells is not None and resumable._index is None:
        return _next_output_packed(
            graph, resumable, budget, target, start_states,
            previous_edges, cost_of,
        )
    if cost_of is None:
        cost_of = _unit_cost

    ti_arr = graph.tgt_idx_array
    src_arr = graph.src_array
    in_arr = graph.in_array

    root_states = tuple(sorted(start_states))
    frames: List[_Frame] = [
        _Frame(target, root_states, {}, None, budget)
    ]

    if previous_edges is None:
        # First call: fresh cursors at the root, then plain DFS below.
        frames[0].cursors = _fresh_cursors(resumable, target, root_states)
    else:
        # Guided descent along the previous output (read from the
        # target side, since T is a backward-search tree).
        for e in reversed(list(previous_edges)):
            frame = frames[-1]
            u = frame.vertex
            cell = ti_arr[e]
            child_states_set = set()
            cursors: Dict[int, Optional[int]] = {}
            for p in frame.states:
                index = resumable.for_state(u, p)
                if index is None:
                    cursors[p] = None
                    continue
                payload = index.payload(cell)
                if payload is not None:
                    child_states_set.update(payload)
                # Invariant: after descending into e, this frame's
                # cursors all sit strictly past TgtIdx(e).
                cursors[p] = index.after(cell)
            frame.cursors = cursors
            frames.append(
                _Frame(
                    src_arr[e],
                    tuple(sorted(child_states_set)),
                    {},
                    e,
                    frame.remaining - cost_of(e),
                )
            )
        # The guided leaf *is* the previous output: skip it.
        frames.pop()

    # Ordinary DFS, resumed from the reconstructed stack.
    while frames:
        frame = frames[-1]
        if frame.remaining == 0:
            edges = tuple(
                f.via_edge for f in reversed(frames) if f.via_edge is not None
            )
            return Walk.from_edges_unchecked(graph, edges, src_arr[edges[0]])
        u = frame.vertex
        emin_cell = -1
        for p in frame.states:
            cell = frame.cursors.get(p)
            if cell is not None and (emin_cell < 0 or cell < emin_cell):
                emin_cell = cell
        if emin_cell < 0:
            frames.pop()
            continue
        emin = in_arr[u][emin_cell]
        child_states_set = set()
        for p in frame.states:
            if frame.cursors.get(p) == emin_cell:
                index = resumable.for_state(u, p)
                payload = index.payload(emin_cell)
                if payload is not None:
                    child_states_set.update(payload)
                frame.cursors[p] = index.after(emin_cell)
        child_states = tuple(sorted(child_states_set))
        child_vertex = src_arr[emin]
        frames.append(
            _Frame(
                child_vertex,
                child_states,
                _fresh_cursors(resumable, child_vertex, child_states),
                emin,
                frame.remaining - cost_of(emin),
            )
        )
    return None


def _next_output_packed(
    graph: Graph,
    resumable: ResumableAnnotation,
    budget: int,
    target: int,
    start_states: FrozenSet[int],
    previous_edges: Optional[Sequence[int]],
    cost_of: Optional[CostFn],
) -> Optional[Walk]:
    """``NextOutput`` over the packed cell arrays.

    Frame cursors are absolute cell positions into the shared arrays
    (``cursors[p]`` past the node's span end ⇔ the legacy ``None``);
    the guided descent's ``payload`` + ``after`` pair becomes one
    binary search per (frame, state) over the node's ``TgtIdx`` span.
    The shared structure is read-only, exactly like the legacy form.
    """
    cells = resumable.cells
    n_states = cells.n_states
    key_indptr = cells.key_indptr
    cell_ti = cells.cell_ti
    cell_edge = cells.cell_edge
    n = cells.n
    ti_arr = graph.tgt_idx_array
    src_arr = graph.src_array
    unit = cost_of is None
    cert_of = cells.cert

    def fresh_cursors(
        vertex: int, states: Tuple[int, ...]
    ) -> Dict[int, int]:
        base = vertex * n_states
        return {p: key_indptr[base + p] for p in states}

    root_states = tuple(sorted(start_states))
    frames: List[_Frame] = [
        _Frame(target, root_states, {}, None, budget)
    ]

    if previous_edges is None:
        if target >= n:
            # Outside the annotation's vertex range (a live graph grew
            # after caching): provably no matching walk — callers
            # normally never get here because λ_t is already None.
            return None
        frames[0].cursors = fresh_cursors(target, root_states)
    else:
        # Guided descent along the previous output.
        for e in reversed(list(previous_edges)):
            frame = frames[-1]
            base = frame.vertex * n_states
            ti = ti_arr[e]
            child_states_set = set()
            cursors: Dict[int, int] = {}
            for p in frame.states:
                k = base + p
                lo, hi = key_indptr[k], key_indptr[k + 1]
                c = bisect_left(cell_ti, ti, lo, hi)
                if c < hi and cell_ti[c] == ti:
                    child_states_set.update(cert_of(c))
                    cursors[p] = c + 1
                else:
                    # No cell at TgtIdx(e) for this state: the cursor
                    # lands on the first cell strictly past it.
                    cursors[p] = c
            frame.cursors = cursors
            frames.append(
                _Frame(
                    src_arr[e],
                    tuple(sorted(child_states_set)),
                    {},
                    e,
                    frame.remaining - (1 if unit else cost_of(e)),
                )
            )
        # The guided leaf *is* the previous output: skip it.
        frames.pop()

    # Ordinary DFS, resumed from the reconstructed stack.
    while frames:
        frame = frames[-1]
        if frame.remaining == 0:
            edges = tuple(
                f.via_edge for f in reversed(frames) if f.via_edge is not None
            )
            return Walk.from_edges_unchecked(graph, edges, src_arr[edges[0]])
        base = frame.vertex * n_states
        cursors = frame.cursors
        emin_c = -1
        emin_ti = -1
        for p in frame.states:
            c = cursors[p]
            if c < key_indptr[base + p + 1]:
                t = cell_ti[c]
                if emin_c < 0 or t < emin_ti:
                    emin_c, emin_ti = c, t
        if emin_c < 0:
            frames.pop()
            continue
        single: Optional[Tuple[int, ...]] = None
        merged = None
        for p in frame.states:
            c = cursors[p]
            if c < key_indptr[base + p + 1] and cell_ti[c] == emin_ti:
                cursors[p] = c + 1
                cert = cert_of(c)
                if merged is not None:
                    merged.update(cert)
                elif single is None:
                    single = cert
                elif single != cert:
                    merged = set(single)
                    merged.update(cert)
        child_states = single if merged is None else tuple(sorted(merged))
        emin = cell_edge[emin_c]
        child_vertex = src_arr[emin]
        frames.append(
            _Frame(
                child_vertex,
                child_states,
                fresh_cursors(child_vertex, child_states),
                emin,
                frame.remaining - (1 if unit else cost_of(emin)),
            )
        )
    return None


def enumerate_memoryless(
    graph: Graph,
    resumable: ResumableAnnotation,
    budget: Optional[int],
    target: int,
    start_states: FrozenSet[int],
    cost_of: Optional[CostFn] = None,
    resume_after: Optional[Sequence[int]] = None,
) -> Iterator[Walk]:
    """Generator facade over :func:`next_output`.

    Each step forgets everything except the previous walk — the
    generator exists purely for caller convenience and can be resumed
    from any output by calling :func:`next_output` directly, or by
    passing that output's edge sequence as ``resume_after`` (the O(1)
    cursor the query service hands out for limit/offset pagination:
    the enumeration continues strictly *after* that walk).
    """
    if budget == 0 and start_states:
        # The single trivial answer ⟨t⟩; a resume point means it was
        # already delivered.
        if resume_after is None:
            yield Walk(graph, (), start=target)
        return
    previous = tuple(resume_after) if resume_after is not None else None
    walk = next_output(
        graph, resumable, budget, target, start_states, previous, cost_of
    )
    while walk is not None:
        yield walk
        walk = next_output(
            graph, resumable, budget, target, start_states, walk.edges, cost_of
        )
