"""Query compilation: align an NFA with a database's label interning.

The paper assumes (Section 2.3) that ``Δ(q, a)`` is an O(1) lookup
returning a duplicate-free list.  Databases intern labels to dense
integer ids, so before running the algorithm we re-key the automaton's
transition table by label *id*.  This step also:

* drops transitions on labels that no edge of the database carries
  (they can never fire, and keeping them would only slow the BFS);
* expands :data:`~repro.automata.nfa.ANY` wildcards over the database's
  concrete alphabet;
* ε-closes the transition relation (``Δ'(q, a) = closure(Δ(q, a))``,
  start states = ``closure(I)``), unless ``eliminate_epsilon=False``.

Compilation is O(|A|·|Q| + wildcard expansion); it never touches the
database, preserving the O(|D| × |A|) preprocessing bound.

A note on ε-handling (deviation from the paper's Section 5.1).  The
paper eliminates ε on the fly inside ``Annotate`` via ``PossiblyVisit``
and claims no extra cost.  Transcribed literally, that routine only
propagates predecessor entries through ε-closures when a state is
reached *for the first time* at a BFS level; when the same direct
target is re-reached at the same level through a different edge, its
ε-successors — in particular final states of a Thompson automaton —
never learn about the new edge, and the enumeration silently drops
answers (``tests/core/test_epsilon.py`` contains the regression).  We
therefore ε-close the relation here, at query-compile time: this is
equivalent to running the ε-free algorithm on the ε-eliminated
automaton, costs nothing per database, and inflates |Δ| by at most a
factor |Q| in the worst case.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Tuple

from repro.automata.nfa import ANY, EPSILON, NFA
from repro.exceptions import QueryError
from repro.graph.database import Graph


class CompiledQuery:
    """An NFA re-keyed to a specific database's label ids.

    Attributes mirror the paper's automaton tuple:

    * ``n_states`` — |Q|;
    * ``initial`` — I (as given);
    * ``initial_closure`` — ε-closure of I, the states a run may start
      in;
    * ``final`` — F;
    * ``delta`` — per-state dict: label id → tuple of successor states;
    * ``eps`` — per-state tuple of ε-successors;
    * ``delta_size`` — |Δ| after compilation (counts expanded wildcard
      transitions and ε-transitions).

    Three derived layouts feed the label-indexed product-BFS (see
    :attr:`repro.graph.database.Graph.out_csr`):

    * ``firing_labels`` — per-state tuple of the label ids on which the
      state has at least one transition, ascending;
    * ``firing_sets`` — the same as frozensets, for O(1) membership
      when intersecting with a vertex's out-label tuple;
    * ``delta_dense`` — the transition table as one flat tuple indexed
      ``q * |Σ| + a`` (successor tuple, ``()`` when the state cannot
      fire on ``a``), trading O(|Q| × |Σ|) memory for branch-free
      lookups in the hot loop.
    """

    __slots__ = (
        "graph",
        "automaton",
        "n_states",
        "initial",
        "initial_closure",
        "final",
        "delta",
        "eps",
        "has_eps",
        "delta_size",
        "label_count",
        "firing_labels",
        "firing_sets",
        "delta_dense",
    )

    def __init__(
        self,
        graph: Graph,
        automaton: NFA,
        n_states: int,
        initial: Tuple[int, ...],
        initial_closure: FrozenSet[int],
        final: FrozenSet[int],
        delta: Tuple[Dict[int, Tuple[int, ...]], ...],
        eps: Tuple[Tuple[int, ...], ...],
    ) -> None:
        self.graph = graph
        self.automaton = automaton
        self.n_states = n_states
        self.initial = initial
        self.initial_closure = initial_closure
        self.final = final
        self.delta = delta
        self.eps = eps
        self.has_eps = any(eps)
        self.delta_size = sum(
            len(ts) for d in delta for ts in d.values()
        ) + sum(len(es) for es in eps)
        n_labels = graph.label_count
        self.label_count = n_labels
        self.firing_labels: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(d)) for d in delta
        )
        self.firing_sets: Tuple[FrozenSet[int], ...] = tuple(
            frozenset(d) for d in delta
        )
        dense: List[Tuple[int, ...]] = [()] * (n_states * n_labels)
        for q, d in enumerate(delta):
            base = q * n_labels
            for a, ts in d.items():
                dense[base + a] = ts
        self.delta_dense: Tuple[Tuple[int, ...], ...] = tuple(dense)

    def size(self) -> int:
        """The compiled ``|A| = |Q| + |Δ|`` (alphabet shared with D)."""
        return self.n_states + self.delta_size

    def __repr__(self) -> str:
        return (
            f"CompiledQuery(|Q|={self.n_states}, |Δ|={self.delta_size}, "
            f"ε={'yes' if self.has_eps else 'no'})"
        )


def compile_query(
    graph: Graph, automaton: NFA, eliminate_epsilon: bool = True
) -> CompiledQuery:
    """Compile ``automaton`` for execution against ``graph``.

    With ``eliminate_epsilon=True`` (the default) the compiled ``delta``
    is ε-closed and ``eps`` is empty — see the module docstring for why.
    Raises :class:`~repro.exceptions.QueryError` when the automaton has
    no states or no initial state (such queries match nothing and are
    almost always caller bugs).
    """
    if automaton.n_states == 0 or not automaton.initial:
        raise QueryError("query automaton has no initial state")

    n = automaton.n_states
    all_label_ids = tuple(range(graph.label_count))
    delta_sets: List[Dict[int, set]] = [{} for _ in range(n)]
    eps_lists: List[List[int]] = [[] for _ in range(n)]

    for q in automaton.states():
        for label, targets in automaton.transitions_from(q):
            if label is EPSILON:
                # Duplicate-free by NFA invariant.
                eps_lists[q].extend(targets)
            elif label is ANY:
                for a in all_label_ids:
                    delta_sets[q].setdefault(a, set()).update(targets)
            else:
                if graph.has_label(label):
                    a = graph.label_id(label)
                    delta_sets[q].setdefault(a, set()).update(targets)

    if eliminate_epsilon and any(eps_lists):
        # Per-state ε-closures, O(|Q| × |Δ_ε|) once per query.
        closures: List[Tuple[int, ...]] = []
        for q in range(n):
            seen = {q}
            stack = [q]
            while stack:
                state = stack.pop()
                for nxt in eps_lists[state]:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
            closures.append(tuple(seen))
        for d in delta_sets:
            for a, targets in d.items():
                closed = set(targets)
                for p in targets:
                    closed.update(closures[p])
                d[a] = closed
        eps_lists = [[] for _ in range(n)]

    delta: Tuple[Dict[int, Tuple[int, ...]], ...] = tuple(
        {a: tuple(sorted(ts)) for a, ts in d.items()} for d in delta_sets
    )
    eps = tuple(tuple(es) for es in eps_lists)

    return CompiledQuery(
        graph=graph,
        automaton=automaton,
        n_states=n,
        initial=tuple(sorted(automaton.initial)),
        initial_closure=automaton.eps_closure(automaton.initial),
        final=automaton.final,
        delta=delta,
        eps=eps,
    )
