"""Normalization of user-supplied queries (NFA / AST / RPQ string)."""

from __future__ import annotations

from typing import Union

from repro.automata.nfa import NFA
from repro.automata.regex_ast import RegexNode

QueryLike = Union[NFA, RegexNode, str]


def as_nfa(query: QueryLike) -> NFA:
    """Accept an NFA as-is; compile ASTs and strings via Thompson.

    Thompson is the default construction because it preserves
    Corollary 20's bounds (the compiled query is ε-closed afterwards,
    see :mod:`repro.core.compile`).
    """
    if isinstance(query, NFA):
        return query
    # Imported here to avoid a package-level dependency cycle.
    from repro.automata import regex_to_nfa

    return regex_to_nfa(query)
