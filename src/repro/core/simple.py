"""The folklore fast path for the "simpler setting" (paper, Section 1).

When the database is single-labeled and the query automaton is
deterministic, every walk has at most one run in ``D × A``, so distinct
walks correspond one-to-one to distinct product paths.  The textbook
approach then applies: BFS the product graph recording equal-level
parent edges, and enumerate shortest product paths backwards — no
duplicate is possible and the delay drops to O(λ) with no certificate
machinery.

The paper notes that *detecting* this setting takes linear time, so an
engine can always try the fast path first; see
:func:`repro.query.plan.analyze`.

The product BFS here rides the same label-indexed CSR adjacency as the
general ``Annotate`` (:attr:`repro.graph.database.Graph.out_csr`): per
frontier pair it touches only the buckets ``Out_a(v)`` for the labels
``a`` the deterministic state can fire on.
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterator, List, Optional, Tuple

from repro.automata.determinize import is_deterministic
from repro.automata.nfa import NFA
from repro.core.compile import CompiledQuery, compile_query
from repro.core.walks import Walk
from repro.exceptions import QueryError
from repro.graph.database import Graph


def graph_is_single_labeled(graph: Graph) -> bool:
    """Linear-time check: does every edge carry exactly one label?"""
    return all(len(graph.labels(e)) == 1 for e in graph.edges())


def simple_eligible(graph: Graph, automaton: NFA) -> bool:
    """May :class:`SimpleShortestWalks` be used for this input?

    Requires a single-labeled database and a deterministic (hence
    ε-free, single-initial) automaton.  Both checks are linear, as the
    paper points out.
    """
    return graph_is_single_labeled(graph) and is_deterministic(automaton)


class SimpleShortestWalks:
    """Product-BFS enumeration for the deterministic single-label case.

    Outputs the same *set* of walks as the general engine (cross-checked
    by the test suite); the order may differ since no ``TgtIdx``
    discipline is needed here.
    """

    def __init__(
        self, graph: Graph, automaton: NFA, source: Hashable, target: Hashable
    ) -> None:
        if not simple_eligible(graph, automaton):
            raise QueryError(
                "SimpleShortestWalks requires a single-labeled database "
                "and a deterministic automaton"
            )
        self.graph = graph
        self.source = graph.resolve_vertex(source)
        self.target = graph.resolve_vertex(target)
        self._cq: CompiledQuery = compile_query(graph, automaton)
        self._lam: Optional[int] = None
        self._parents: Dict[int, List[Tuple[int, int]]] = {}
        self._final_keys: List[int] = []
        self._preprocessed = False

    # Product states are packed as v * |Q| + q for dict efficiency.

    def _key(self, v: int, q: int) -> int:
        return v * self._cq.n_states + q

    def preprocess(self) -> "SimpleShortestWalks":
        """Product BFS with equal-level parent recording; idempotent."""
        if self._preprocessed:
            return self
        self._preprocessed = True
        graph, cq = self.graph, self._cq
        n = graph.vertex_count
        tgt_arr = graph.tgt_array
        indptr, csr_edges = graph.out_csr
        firing = cq.firing_labels
        dense = cq.delta_dense
        n_labels = cq.label_count
        final = cq.final

        (q0,) = cq.initial  # Deterministic: exactly one initial state.
        start_key = self._key(self.source, q0)
        dist: Dict[int, int] = {start_key: 0}
        parents: Dict[int, List[Tuple[int, int]]] = {}
        if self.source == self.target and q0 in final:
            self._lam = 0
            self._parents = parents
            return self

        frontier: List[Tuple[int, int]] = [(self.source, q0)]
        level = 0
        found = False
        while frontier and not found:
            level += 1
            current, frontier = frontier, []
            for v, q in current:
                from_key = self._key(v, q)
                # Single-labeled database + deterministic automaton:
                # every product edge agrees on exactly one label, so
                # iterating the state's firing labels over the CSR
                # buckets covers Out(v) ∩ Δ(q) exactly once.
                q_base = q * n_labels
                for a in firing[q]:
                    b = a * n + v
                    start, end = indptr[b], indptr[b + 1]
                    if start == end:
                        continue
                    (p,) = dense[q_base + a]  # Deterministic automaton.
                    for j in range(start, end):
                        e = csr_edges[j]
                        u = tgt_arr[e]
                        key = self._key(u, p)
                        known = dist.get(key)
                        if known is None:
                            dist[key] = level
                            parents[key] = [(e, from_key)]
                            frontier.append((u, p))
                            if u == self.target and p in final:
                                found = True
                        elif known == level:
                            parents[key].append((e, from_key))
        if found:
            self._lam = level
            self._final_keys = [
                self._key(self.target, f)
                for f in final
                if dist.get(self._key(self.target, f)) == level
            ]
        self._parents = parents
        return self

    @property
    def lam(self) -> Optional[int]:
        """λ, or ``None`` when no matching walk exists."""
        self.preprocess()
        return self._lam

    def enumerate(self) -> Iterator[Walk]:
        """Enumerate all distinct shortest matching walks.

        Backward DFS over the parent DAG from each final product state:
        since runs are unique, paths from different final states are
        automatically distinct walks.  Delay O(λ).
        """
        self.preprocess()
        if self._lam is None:
            return
        if self._lam == 0:
            yield Walk(self.graph, (), start=self.target)
            return
        parents = self._parents
        for final_key in self._final_keys:
            # Stack frames: (key, iterator over its parent list).
            chosen: List[int] = []
            stack: List[Tuple[int, Iterator[Tuple[int, int]]]] = [
                (final_key, iter(parents.get(final_key, ())))
            ]
            depth_left = self._lam
            while stack:
                key, it = stack[-1]
                if depth_left == 0:
                    yield Walk(self.graph, tuple(reversed(chosen)))
                    stack.pop()
                    depth_left += 1
                    if chosen:
                        chosen.pop()
                    continue
                step = next(it, None)
                if step is None:
                    stack.pop()
                    depth_left += 1
                    if chosen:
                        chosen.pop()
                    continue
                e, parent_key = step
                chosen.append(e)
                depth_left -= 1
                stack.append((parent_key, iter(parents.get(parent_key, ()))))
            # depth_left is restored to λ + 1 after the root pops; reset.

    def __iter__(self) -> Iterator[Walk]:
        return self.enumerate()
