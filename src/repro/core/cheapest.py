"""Distinct Cheapest Walks (paper, Section 5.3).

Edges carry strictly positive integer costs; the problem asks for all
walks from ``s`` to ``t`` matching ``A`` of **minimal total cost**,
each exactly once.  The paper's recipe: replace the BFS of ``Annotate``
with a cheapest-first (Dijkstra) traversal of ``D × A``; ``Trim`` and
``Enumerate`` are unchanged, except that the enumeration tracks a
remaining *cost budget* instead of a remaining length (which
:func:`repro.core.enumerate.enumerate_walks` already supports).

Preprocessing: O(|D|×|A| + |V|×|Q|×(log|V| + log|Q|)) with a binary
heap; delay unchanged at O(λ_e × |A|) where λ_e is the maximal *edge
count* of a cheapest walk (λ_e ≤ λ for integer costs ≥ 1).

Costs must be positive: zero-cost cycles would make the answer set
infinite, and exact budget arithmetic requires integers (float
rounding would corrupt the leaf test ``budget == 0``).

Like the BFS :func:`repro.core.annotate.annotate`, the settle loop is
label-indexed: a popped product node ``(v, q)`` relaxes only the labels
in ``labels(Δ(q)) ∩ labels(Out(v))`` via the graph's CSR adjacency and
the query's dense transition layout, with ``L`` carried as a flat
per-(vertex, state) cost array during the traversal — and kept flat in
the returned annotation (the packed primary form; see
:mod:`repro.core.annotate`).  ``B`` is built as maps during the
traversal (improvements *discard* previously recorded witnesses, which
an append-only log cannot express) and packed once on return, so
``Trim``/``Enumerate`` run on the same packed arrays as the BFS
pipeline.  The pre-index edge-major loop is retained as
:func:`cheapest_annotate_reference` for the equivalence tests and the
adjacency benchmark.
"""

from __future__ import annotations

import heapq
from array import array
from typing import Dict, FrozenSet, Iterator, List, Optional, Tuple

from repro.core.annotate import Annotation, BackMap, LengthMap
from repro.core.compile import CompiledQuery, compile_query
from repro.datastructures.packed import PackedBack
from repro.core.enumerate import enumerate_walks
from repro.core.trim import TrimmedAnnotation, trim
from repro.core.walks import Walk
from repro.datastructures.pairing_heap import HeapNode, PairingHeap
from repro.exceptions import CostError, QueryError
from repro.graph.database import Graph

_HEAPS = ("binary", "pairing")


class _LazyBinaryQueue:
    """``heapq`` with duplicate entries; the caller skips stale pops."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, int]] = []

    def update(self, cost: int, v: int, q: int) -> None:
        heapq.heappush(self._heap, (cost, v, q))

    def pop(self) -> Tuple[int, int, int]:
        return heapq.heappop(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class _PairingQueue:
    """Pairing heap with one live node per ``(v, q)`` (decrease-key).

    No stale entries are ever popped, matching the Fredman–Tarjan
    accounting the paper cites for the Dijkstra variant.
    """

    __slots__ = ("_heap", "_handles")

    def __init__(self) -> None:
        self._heap: PairingHeap[int, Tuple[int, int]] = PairingHeap()
        self._handles: Dict[Tuple[int, int], HeapNode] = {}

    def update(self, cost: int, v: int, q: int) -> None:
        node = self._handles.get((v, q))
        if node is None:
            self._handles[(v, q)] = self._heap.push(cost, (v, q))
        elif cost < node.key:
            self._heap.decrease_key(node, cost)

    def pop(self) -> Tuple[int, int, int]:
        cost, (v, q) = self._heap.pop()
        del self._handles[(v, q)]
        return cost, v, q

    def __bool__(self) -> bool:
        return bool(self._heap)


def cheapest_annotate(
    cq: CompiledQuery,
    source: int,
    target: Optional[int] = None,
    saturate: bool = False,
    heap: str = "binary",
) -> Annotation:
    """Dijkstra-flavoured ``Annotate``: ``L`` maps hold minimal *costs*.

    ``B`` keeps, per ``(u, p, TgtIdx(e))``, the predecessor states of
    *cost-minimal* walks ending with ``e`` — entries recorded for a
    previously-better estimate are discarded on improvement, so Lemma
    10's characterization carries over with "length" read as "cost".

    ``heap`` selects the priority queue: ``"binary"`` (lazy-deletion
    ``heapq``, the pragmatic default) or ``"pairing"`` (decrease-key
    pairing heap, one live entry per product node — the structure the
    paper's Fredman–Tarjan citation presumes).  Both produce the same
    annotation content.
    """
    if heap not in _HEAPS:
        raise QueryError(f"unknown heap {heap!r}; expected one of {_HEAPS}")
    graph = cq.graph
    cost_arr = graph.cost_array
    if cost_arr and min(cost_arr) <= 0:
        bad = next(e for e, c in enumerate(cost_arr) if c <= 0)
        raise CostError(f"edge {bad} has non-positive cost {cost_arr[bad]}")

    n = graph.vertex_count
    n_states = cq.n_states
    tgt_arr = graph.tgt_array
    ti_arr = graph.tgt_idx_array
    indptr, csr_edges = graph.out_csr
    out_labels = graph.out_labels_array
    firing = cq.firing_labels
    firing_sets = cq.firing_sets
    dense = cq.delta_dense
    n_labels = cq.label_count
    eps = cq.eps
    has_eps = cq.has_eps
    final = cq.final

    # L, flattened: dist[v * |Q| + p], -1 = unreached.
    dist = array("q", [-1]) * (n * n_states)
    B: List[BackMap] = [{} for _ in range(n)]
    settled = bytearray(n * n_states)

    queue = _PairingQueue() if heap == "pairing" else _LazyBinaryQueue()
    source_base = source * n_states
    for p in sorted(cq.initial_closure):
        dist[source_base + p] = 0
        queue.update(0, source, p)

    lam: Optional[int] = None
    if target is not None and target == source and (cq.initial_closure & final):
        lam = 0  # Trivial walk ⟨s⟩ of cost 0.

    def reach(u: int, p: int, via_q: int, ti: int, cost: int) -> None:
        """Relax (u, p) at ``cost`` with witness (via_q, edge at ti)."""
        idx = u * n_states + p
        known = dist[idx]
        if known < 0 or cost < known:
            dist[idx] = cost
            # Better estimate: all previously recorded witnesses
            # belonged to costlier walks — discard them.
            B[u][p] = {ti: [via_q]}
            queue.update(cost, u, p)
        elif cost == known:
            B[u].setdefault(p, {}).setdefault(ti, []).append(via_q)

    steps = 0
    while queue and lam != 0:
        cost, v, q = queue.pop()
        vq = v * n_states + q
        if settled[vq] or dist[vq] != cost:
            continue  # Stale heap entry.
        if lam is not None and cost > lam and not saturate:
            break  # Everything at distance ≤ λ is settled.
        settled[vq] = 1
        steps += 1
        if target is not None and v == target and q in final and lam is None:
            lam = cost
            if not saturate:
                # Keep draining entries of cost ≤ λ so that equal-cost
                # witnesses into the target are all recorded.
                continue
        fire = firing[q]
        mine = out_labels[v]
        if not fire or not mine:
            continue
        if len(fire) > len(mine):
            # Intersect from the cheaper side.
            fset = firing_sets[q]
            fire = [a for a in mine if a in fset]
        q_base = q * n_labels
        for a in fire:
            b = a * n + v
            start, end = indptr[b], indptr[b + 1]
            if start == end:
                continue
            targets = dense[q_base + a]
            for j in range(start, end):
                e = csr_edges[j]
                u = tgt_arr[e]
                new_cost = cost + cost_arr[e]
                if lam is not None and new_cost > lam and not saturate:
                    continue
                ti = ti_arr[e]
                for p in targets:
                    reach(u, p, q, ti, new_cost)
                    if has_eps and eps[p]:
                        stack = list(eps[p])
                        seen = set(eps[p])
                        while stack:
                            r = stack.pop()
                            reach(u, r, q, ti, new_cost)
                            for r2 in eps[r]:
                                if r2 not in seen:
                                    seen.add(r2)
                                    stack.append(r2)

    # Pack the settled B maps: the Dijkstra traversal discards and
    # re-records witnesses on improvement, so it builds maps natively
    # and packs once at the end (the packed arrays are what Trim and
    # the enumerators read; the maps stay on as the compatibility
    # view, sharing the recorded predecessor order).
    packed = PackedBack.from_maps(n, n_states, B)
    if target is not None and not saturate:
        if lam == 0:
            target_states: FrozenSet[int] = frozenset(
                cq.initial_closure & final
            )
        elif lam is not None:
            t_base = target * n_states
            target_states = frozenset(
                f for f in final if dist[t_base + f] == lam
            )
        else:
            target_states = frozenset()
        return Annotation(
            source=source,
            target=target,
            lam=lam,
            B=B,
            target_states=target_states,
            steps=steps,
            final=final,
            initial_closure=cq.initial_closure,
            dist=dist,
            packed=packed,
            n=n,
            n_states=n_states,
        )
    return Annotation(
        source=source,
        target=target,
        lam=None,
        B=B,
        target_states=frozenset(),
        saturated=True,
        steps=steps,
        final=final,
        initial_closure=cq.initial_closure,
        dist=dist,
        packed=packed,
        n=n,
        n_states=n_states,
    )


def cheapest_annotate_reference(
    cq: CompiledQuery,
    source: int,
    target: Optional[int] = None,
    saturate: bool = False,
    heap: str = "binary",
) -> Annotation:
    """The pre-index Dijkstra ``Annotate``: edge-major ``Out(v)`` scan.

    Retained as the correctness oracle for :func:`cheapest_annotate`
    (equivalence property tests) and as the baseline of
    ``benchmarks/bench_adjacency.py``; semantics are identical.
    """
    if heap not in _HEAPS:
        raise QueryError(f"unknown heap {heap!r}; expected one of {_HEAPS}")
    graph = cq.graph
    for e in graph.edges():
        if graph.cost(e) <= 0:
            raise CostError(f"edge {e} has non-positive cost {graph.cost(e)}")

    n = graph.vertex_count
    out = graph.out_array
    tgt_arr = graph.tgt_array
    ti_arr = graph.tgt_idx_array
    labels_arr = graph.label_array
    cost_arr = graph.cost_array
    delta = cq.delta
    eps = cq.eps
    has_eps = cq.has_eps
    final = cq.final

    L: List[LengthMap] = [{} for _ in range(n)]
    B: List[BackMap] = [{} for _ in range(n)]
    settled: List[set] = [set() for _ in range(n)]

    queue = _PairingQueue() if heap == "pairing" else _LazyBinaryQueue()
    for p in sorted(cq.initial_closure):
        L[source][p] = 0
        queue.update(0, source, p)

    lam: Optional[int] = None
    if target is not None and target == source and (cq.initial_closure & final):
        lam = 0  # Trivial walk ⟨s⟩ of cost 0.

    def reach(u: int, p: int, via_q: int, ti: int, cost: int) -> None:
        """Relax (u, p) at ``cost`` with witness (via_q, edge at ti)."""
        known = L[u].get(p)
        if known is None or cost < known:
            L[u][p] = cost
            # Better estimate: all previously recorded witnesses
            # belonged to costlier walks — discard them.
            B[u][p] = {ti: [via_q]}
            queue.update(cost, u, p)
        elif cost == known:
            B[u].setdefault(p, {}).setdefault(ti, []).append(via_q)

    steps = 0
    while queue and lam != 0:
        cost, v, q = queue.pop()
        if q in settled[v] or L[v].get(q) != cost:
            continue  # Stale heap entry.
        if lam is not None and cost > lam and not saturate:
            break  # Everything at distance ≤ λ is settled.
        settled[v].add(q)
        steps += 1
        if target is not None and v == target and q in final and lam is None:
            lam = cost
            if not saturate:
                # Keep draining entries of cost ≤ λ so that equal-cost
                # witnesses into the target are all recorded.
                continue
        dq = delta[q]
        for e in out[v]:
            u = tgt_arr[e]
            new_cost = cost + cost_arr[e]
            if lam is not None and new_cost > lam and not saturate:
                continue
            ti = ti_arr[e]
            for a in labels_arr[e]:
                targets = dq.get(a)
                if not targets:
                    continue
                for p in targets:
                    reach(u, p, q, ti, new_cost)
                    if has_eps and eps[p]:
                        stack = list(eps[p])
                        seen = set(eps[p])
                        while stack:
                            r = stack.pop()
                            reach(u, r, q, ti, new_cost)
                            for r2 in eps[r]:
                                if r2 not in seen:
                                    seen.add(r2)
                                    stack.append(r2)

    if target is not None and not saturate:
        if lam == 0:
            target_states: FrozenSet[int] = frozenset(
                cq.initial_closure & final
            )
        elif lam is not None:
            target_states = frozenset(
                f for f in final if L[target].get(f) == lam
            )
        else:
            target_states = frozenset()
        return Annotation(
            source=source,
            target=target,
            lam=lam,
            L=L,
            B=B,
            target_states=target_states,
            steps=steps,
            final=final,
            initial_closure=cq.initial_closure,
            n_states=cq.n_states,
        )
    return Annotation(
        source=source,
        target=target,
        lam=None,
        L=L,
        B=B,
        target_states=frozenset(),
        saturated=True,
        steps=steps,
        final=final,
        initial_closure=cq.initial_closure,
        n_states=cq.n_states,
    )


class DistinctCheapestWalks:
    """User-facing driver for the Distinct Cheapest Walks extension.

    >>> from repro.graph import GraphBuilder
    >>> from repro.automata import regex_to_nfa
    >>> b = GraphBuilder()
    >>> _ = b.add_edge("a", "b", ["x"], cost=3)
    >>> _ = b.add_edge("a", "b", ["x"], cost=2)
    >>> engine = DistinctCheapestWalks(b.build(), regex_to_nfa("x"), "a", "b")
    >>> [w.cost() for w in engine.enumerate()]
    [2]
    """

    def __init__(
        self, graph: Graph, query, source, target, heap: str = "binary"
    ) -> None:
        from repro.core._query_input import as_nfa

        if heap not in _HEAPS:
            raise QueryError(
                f"unknown heap {heap!r}; expected one of {_HEAPS}"
            )
        self.graph = graph
        self.source = graph.resolve_vertex(source)
        self.target = graph.resolve_vertex(target)
        self.automaton = as_nfa(query)
        self.heap = heap
        self._cq = compile_query(graph, self.automaton)
        self._annotation: Optional[Annotation] = None
        self._trimmed: Optional[TrimmedAnnotation] = None

    def preprocess(self) -> "DistinctCheapestWalks":
        """Run the Dijkstra annotation and trim; idempotent."""
        if self._annotation is None:
            self._annotation = cheapest_annotate(
                self._cq, self.source, self.target, heap=self.heap
            )
            self._trimmed = trim(self.graph, self._annotation)
        return self

    @property
    def cheapest_cost(self) -> Optional[int]:
        """Minimal matching walk cost (``None`` when no walk matches)."""
        self.preprocess()
        assert self._annotation is not None
        return self._annotation.lam

    def enumerate(self) -> Iterator[Walk]:
        """Enumerate all distinct cheapest matching walks."""
        self.preprocess()
        assert self._annotation is not None and self._trimmed is not None
        cost_arr = self.graph.cost_array
        return enumerate_walks(
            self.graph,
            self._trimmed,
            self._annotation.lam,
            self.target,
            self._annotation.target_states,
            cost_of=lambda e: cost_arr[e],
        )

    def __iter__(self) -> Iterator[Walk]:
        return self.enumerate()

    def count(self, method: str = "enumerate") -> int:
        """Number of distinct cheapest walks.

        ``method="dp"`` counts via the backward-tree dynamic program
        (cost-budgeted), without enumerating.
        """
        if method == "dp":
            from repro.core.count import count_distinct_shortest

            self.preprocess()
            assert self._annotation is not None
            cost_arr = self.graph.cost_array
            return count_distinct_shortest(
                self.graph,
                self._annotation,
                self._annotation.lam,
                self.target,
                self._annotation.target_states,
                cost_of=lambda e: cost_arr[e],
            )
        if method != "enumerate":
            raise QueryError(
                f"unknown count method {method!r}; "
                "expected 'enumerate' or 'dp'"
            )
        return sum(1 for _ in self.enumerate())
