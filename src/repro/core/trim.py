"""The ``Trim`` preprocessing (paper, Figure 2 lines 34-41) and the
``ResumableTrim`` variant (Section 4.2, lines 67-76).

``Trim`` converts every ``B_u[p]`` map into a queue ``C_u[p]`` of pairs
``(e, X)`` — only the edges whose predecessor list ``X`` is non-empty —
sorted by increasing ``TgtIdx(e)`` (Lemma 11).  The sort order is what
lets ``Enumerate`` find the next child edge by looking only at queue
heads, keeping the delay independent of the database's in-degrees.

``ResumableTrim`` instead produces, per ``(u, p)``, a read-only
skip-indexed array (:class:`~repro.datastructures.ResumableIndex`)
supporting O(1) "first non-empty cell ≥ i" queries.  This is the
structure that makes the *memoryless* enumeration of Theorem 18
possible: cursors become plain integers local to each call and the
shared structure is never mutated.

Both run in O(|E| × |Q|) ⊆ O(|D| × |A|).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.annotate import Annotation
from repro.datastructures.resumable_index import ResumableIndex
from repro.datastructures.restartable_queue import RestartableQueue
from repro.graph.database import Graph

#: Queue elements: (edge id, tuple of predecessor states).
QueueItem = Tuple[int, Tuple[int, ...]]


class TrimmedAnnotation:
    """The family of queues ``C_u[p]`` produced by ``Trim``.

    ``queues[u]`` maps each state ``p`` with at least one non-empty
    cell to a :class:`RestartableQueue` of ``(e, X)`` pairs in
    increasing ``TgtIdx(e)`` order.  States without entries simply have
    no queue — equivalent to the paper's empty queues.

    The queue cursors are *shared mutable state*: two enumerations
    running over the same trimmed annotation at the same time would
    corrupt each other.  Enumerators therefore :meth:`acquire` the
    structure while active (released — and restarted — when the
    iterator finishes or is closed); a second concurrent acquisition
    raises :class:`~repro.exceptions.EnumerationStateError`.  The
    read-only :class:`ResumableAnnotation` has no such restriction.
    """

    __slots__ = ("queues", "_active")

    def __init__(
        self, queues: List[Dict[int, RestartableQueue]]
    ) -> None:
        self.queues = queues
        self._active = False

    def queue(self, u: int, p: int) -> Optional[RestartableQueue]:
        """``C_u[p]``, or ``None`` when it is empty."""
        return self.queues[u].get(p)

    def acquire(self) -> None:
        """Mark an enumeration as running over this structure.

        Raises :class:`~repro.exceptions.EnumerationStateError` when
        another enumeration is already active: interleaving two walks
        over the same cursors would silently skip or repeat answers.
        """
        if self._active:
            from repro.exceptions import EnumerationStateError

            raise EnumerationStateError(
                "an enumeration is already running over this trimmed "
                "annotation; exhaust or close() it first (the "
                "memoryless mode supports concurrent enumerations)"
            )
        self._active = True

    def restart_all(self) -> None:
        """Reset every queue cursor and release the structure — used
        when an enumeration finishes or is abandoned mid-way, so the
        shared structure is never left dirty."""
        for per_vertex in self.queues:
            for queue in per_vertex.values():
                queue.restart()
        self._active = False

    def total_items(self) -> int:
        """Number of stored (e, X) pairs — for the memory experiment."""
        return sum(
            len(queue) for per_vertex in self.queues
            for queue in per_vertex.values()
        )

    def snapshot(self) -> "TrimmedAnnotation":
        """An independent cursor set over the *same* queue contents.

        Every queue is :meth:`~repro.datastructures.RestartableQueue.fork`-ed
        — O(1) per non-empty ``(u, p)`` pair, sharing the immutable
        ``(e, X)`` items.  Two enumerations may then run concurrently,
        one per snapshot, without tripping the :meth:`acquire` guard or
        corrupting each other's cursors; this is how the batched query
        service serves the eager modes from one cached ``Trim`` product
        while the memoryless mode shares the read-only
        :class:`ResumableAnnotation` directly.
        """
        return TrimmedAnnotation(
            [
                {p: queue.fork() for p, queue in per_vertex.items()}
                for per_vertex in self.queues
            ]
        )


def trim(graph: Graph, annotation: Annotation) -> TrimmedAnnotation:
    """Build the ``C`` queues from an annotation's ``B`` maps.

    For every vertex ``u`` and state ``p``, enqueue the pairs
    ``(e, B_u[p][TgtIdx(e)])`` for non-empty cells, in increasing
    ``TgtIdx`` order (Lemma 11).  Predecessor lists are frozen to
    tuples: the enumeration phase must never mutate them.
    """
    in_array = graph.in_array
    queues: List[Dict[int, RestartableQueue]] = []
    # Iterate the annotation's own vertex range, not the graph's: on a
    # live graph a cached annotation may predate later-added vertices
    # (which it provably cannot reach — see Annotation.target_info).
    for u in range(len(annotation.B)):
        in_list = in_array[u]
        per_state: Dict[int, RestartableQueue] = {}
        for p, cells in annotation.B[u].items():
            # Iterating positions in sorted order is equivalent to the
            # paper's In(u) scan and O(k log k) for k non-empty cells
            # (the paper's scan is O(InDeg(u)); both are within the
            # O(|E| × |Q|) total budget).
            items: List[QueueItem] = [
                (in_list[i], tuple(cells[i])) for i in sorted(cells)
            ]
            if items:
                per_state[p] = RestartableQueue(items)
        queues.append(per_state)
    return TrimmedAnnotation(queues)


class ResumableAnnotation:
    """The read-only skip-indexed form of ``C`` (paper lines 67-76).

    ``index[u][p]`` is a :class:`ResumableIndex` over the cells
    ``0 .. InDeg(u)-1``; the payload of cell ``i`` is the (non-empty)
    tuple of predecessor states ``B_u[p][i]``.  Missing states mean
    "all cells empty".
    """

    __slots__ = ("index",)

    def __init__(self, index: List[Dict[int, ResumableIndex]]) -> None:
        self.index = index

    def for_state(self, u: int, p: int) -> Optional[ResumableIndex]:
        """The skip index of ``(u, p)``, or ``None`` when empty."""
        return self.index[u].get(p)

    def total_items(self) -> int:
        """Number of stored cells — for the memory experiment."""
        return sum(
            len(idx) for per_vertex in self.index
            for idx in per_vertex.values()
        )


def resumable_trim(graph: Graph, annotation: Annotation) -> ResumableAnnotation:
    """Build the ``ResumableTrim`` structure from an annotation."""
    index: List[Dict[int, ResumableIndex]] = []
    # Same vertex-range note as in :func:`trim` — ``ResumableTrim`` is
    # built lazily, possibly epochs after the annotation, so the graph
    # may meanwhile have grown vertices the annotation cannot reach.
    for u in range(len(annotation.B)):
        in_degree = graph.in_degree(u)
        per_state: Dict[int, ResumableIndex] = {}
        for p, cells in annotation.B[u].items():
            payloads = {i: tuple(preds) for i, preds in cells.items() if preds}
            if payloads:
                per_state[p] = ResumableIndex(in_degree, payloads)
        index.append(per_state)
    return ResumableAnnotation(index)
