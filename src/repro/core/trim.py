"""The ``Trim`` preprocessing (paper, Figure 2 lines 34-41) and the
``ResumableTrim`` variant (Section 4.2, lines 67-76).

``Trim`` converts every ``B_u[p]`` map into a queue ``C_u[p]`` of pairs
``(e, X)`` — only the edges whose predecessor list ``X`` is non-empty —
sorted by increasing ``TgtIdx(e)`` (Lemma 11).  The sort order is what
lets ``Enumerate`` find the next child edge by looking only at queue
heads, keeping the delay independent of the database's in-degrees.

``ResumableTrim`` instead produces, per ``(u, p)``, a read-only
skip-indexed structure supporting O(1)-ish "first non-empty cell ≥ i"
queries.  This is the structure that makes the *memoryless*
enumeration of Theorem 18 possible: cursors become plain integers
local to each call and the shared structure is never mutated.

Packed layout (primary form)
----------------------------

On packed annotations (the default — see :mod:`repro.core.annotate`),
both structures are thin wrappers around one shared
:class:`~repro.datastructures.packed.PackedCells`: the annotation's
entry store is already grouped per product node in ascending
``TgtIdx`` order, so building the queues is a single O(entries)
pointer-slicing pass — **no ``sorted()`` call, no per-cell tuple
freezing**.  :class:`TrimmedAnnotation` adds only a per-node cursor
array (restart = one C-level slice assignment);
:class:`ResumableAnnotation` adds nothing (the memoryless cursors live
in the caller's frames) and the two share the cells, so ``Trim`` +
``ResumableTrim`` together cost one pass.  The historical object forms
— ``queues[u][p]`` of :class:`RestartableQueue` items and
``index[u][p]`` of :class:`ResumableIndex` — remain available as
lazily materialized compatibility views (tests and external consumers
use them; enumeration falls back to them automatically whenever they
have been touched, so instrumentation proxies keep working).

Annotations built by the reference traversals carry mapping-form
``B`` only; for those the original dict-driven builds are retained
below (``_trim_maps`` / ``_resumable_trim_maps``), still
O(|E| × |Q| log) ⊆ O(|D| × |A|).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from repro.core.annotate import Annotation
from repro.datastructures.packed import PackedCells
from repro.datastructures.resumable_index import ResumableIndex
from repro.datastructures.restartable_queue import RestartableQueue
from repro.graph.database import Graph

#: Queue elements: (edge id, tuple of predecessor states).
QueueItem = Tuple[int, Tuple[int, ...]]


class TrimmedAnnotation:
    """The family of queues ``C_u[p]`` produced by ``Trim``.

    On the packed form, queue heads/cursors are served straight off the
    shared :class:`~repro.datastructures.packed.PackedCells` arrays
    plus this instance's cursor array; :attr:`queues` materializes the
    historical ``{p: RestartableQueue}`` per-vertex dicts on first
    access (states without entries have no queue — equivalent to the
    paper's empty queues).

    The queue cursors are *shared mutable state*: two enumerations
    running over the same trimmed annotation at the same time would
    corrupt each other.  Enumerators therefore :meth:`acquire` the
    structure while active (released — and restarted — when the
    iterator finishes or is closed); a second concurrent acquisition
    raises :class:`~repro.exceptions.EnumerationStateError`.  The
    read-only :class:`ResumableAnnotation` has no such restriction.
    """

    __slots__ = ("_queues", "cells", "cursor", "_cursor0", "_active")

    def __init__(
        self,
        queues: Optional[List[Dict[int, RestartableQueue]]] = None,
        cells: Optional[PackedCells] = None,
    ) -> None:
        self._queues = queues
        self.cells = cells
        if cells is not None:
            n_keys = cells.n * cells.n_states
            # cursor[k] = current cell of product node k; restart
            # re-copies the starts in one C-level slice assignment.
            self._cursor0 = cells.key_indptr[:n_keys]
            self.cursor = array("q", self._cursor0)
        else:
            self._cursor0 = None
            self.cursor = None
        self._active = False

    @property
    def queues(self) -> List[Dict[int, RestartableQueue]]:
        """Per-vertex ``{p: RestartableQueue}`` compatibility view.

        Materialized lazily from the packed cells (queue item lists are
        themselves lazy — zero-copy until a queue is actually read).
        Once touched, enumeration runs over these objects, so proxies
        installed by instrumentation tests observe every cursor op.
        """
        if self._queues is None:
            self._queues = _materialize_queues(self.cells)
        return self._queues

    def queue(self, u: int, p: int) -> Optional[RestartableQueue]:
        """``C_u[p]``, or ``None`` when it is empty."""
        return self.queues[u].get(p)

    def acquire(self) -> None:
        """Mark an enumeration as running over this structure.

        Raises :class:`~repro.exceptions.EnumerationStateError` when
        another enumeration is already active: interleaving two walks
        over the same cursors would silently skip or repeat answers.
        """
        if self._active:
            from repro.exceptions import EnumerationStateError

            raise EnumerationStateError(
                "an enumeration is already running over this trimmed "
                "annotation; exhaust or close() it first (the "
                "memoryless mode supports concurrent enumerations)"
            )
        self._active = True

    def restart_all(self) -> None:
        """Reset every queue cursor and release the structure — used
        when an enumeration finishes or is abandoned mid-way, so the
        shared structure is never left dirty."""
        if self.cursor is not None:
            self.cursor[:] = self._cursor0
        if self._queues is not None:
            for per_vertex in self._queues:
                for queue in per_vertex.values():
                    queue.restart()
        self._active = False

    def total_items(self) -> int:
        """Number of stored (e, X) pairs — for the memory experiment.

        O(1) on the packed form (the cell count)."""
        if self.cells is not None:
            return len(self.cells)
        return sum(
            len(queue) for per_vertex in self._queues
            for queue in per_vertex.values()
        )

    def snapshot(self) -> "TrimmedAnnotation":
        """An independent cursor set over the *same* queue contents.

        On the packed form this is one cursor-array copy sharing the
        immutable cells; on the legacy form every queue is
        :meth:`~repro.datastructures.RestartableQueue.fork`-ed — O(1)
        per non-empty ``(u, p)`` pair, sharing the immutable ``(e, X)``
        items.  Two enumerations may then run concurrently, one per
        snapshot, without tripping the :meth:`acquire` guard or
        corrupting each other's cursors; this is how the batched query
        service serves the eager modes from one cached ``Trim`` product
        while the memoryless mode shares the read-only
        :class:`ResumableAnnotation` directly.
        """
        if self.cells is not None:
            return TrimmedAnnotation(cells=self.cells)
        return TrimmedAnnotation(
            [
                {p: queue.fork() for p, queue in per_vertex.items()}
                for per_vertex in self._queues
            ]
        )


def _materialize_queues(
    cells: PackedCells,
) -> List[Dict[int, RestartableQueue]]:
    """Legacy ``queues[u][p]`` view of packed cells.

    Item lists reproduce the dict-driven build exactly — ``TgtIdx``
    ascending, predecessor tuples in raw append order with duplicates —
    via lazily-materializing queue shells
    (:meth:`RestartableQueue.from_factory`), so untouched queues stay
    zero-copy.
    """
    queues: List[Dict[int, RestartableQueue]] = [
        {} for _ in range(cells.n)
    ]
    key_indptr = cells.key_indptr
    n_states = cells.n_states

    def make_factory(lo: int, hi: int):
        def build() -> List[QueueItem]:
            return [
                (cells.cell_edge[c], cells.raw_preds(c))
                for c in range(lo, hi)
            ]

        return build

    for k in cells.back.nonempty_keys:
        lo, hi = key_indptr[k], key_indptr[k + 1]
        if lo == hi:
            continue
        queues[k // n_states][k % n_states] = RestartableQueue.from_factory(
            make_factory(lo, hi)
        )
    return queues


def trim(graph: Graph, annotation: Annotation) -> TrimmedAnnotation:
    """Build the ``C`` queues from an annotation.

    Packed annotations: wrap the shared
    :meth:`~repro.core.annotate.Annotation.packed_cells` structure (one
    O(entries) slicing pass, cached on the annotation).  Mapping-based
    annotations (reference traversals): the original dict-driven build.
    """
    if annotation.packed is not None:
        return TrimmedAnnotation(cells=annotation.packed_cells(graph))
    return _trim_maps(graph, annotation)


def _trim_maps(graph: Graph, annotation: Annotation) -> TrimmedAnnotation:
    """The dict-driven ``Trim`` — retained for mapping-form annotations.

    For every vertex ``u`` and state ``p``, enqueue the pairs
    ``(e, B_u[p][TgtIdx(e)])`` for non-empty cells, in increasing
    ``TgtIdx`` order (Lemma 11).  Predecessor lists are frozen to
    tuples: the enumeration phase must never mutate them.
    """
    in_array = graph.in_array
    queues: List[Dict[int, RestartableQueue]] = []
    # Iterate the annotation's own vertex range, not the graph's: on a
    # live graph a cached annotation may predate later-added vertices
    # (which it provably cannot reach — see Annotation.target_info).
    B = annotation.B
    for u in range(len(B)):
        in_list = in_array[u]
        per_state: Dict[int, RestartableQueue] = {}
        for p, cells in B[u].items():
            # Iterating positions in sorted order is equivalent to the
            # paper's In(u) scan and O(k log k) for k non-empty cells
            # (the paper's scan is O(InDeg(u)); both are within the
            # O(|E| × |Q|) total budget).
            items: List[QueueItem] = [
                (in_list[i], tuple(cells[i])) for i in sorted(cells)
            ]
            if items:
                per_state[p] = RestartableQueue(items)
        queues.append(per_state)
    return TrimmedAnnotation(queues)


class ResumableAnnotation:
    """The read-only skip-indexed form of ``C`` (paper lines 67-76).

    On the packed form this shares the annotation's
    :class:`~repro.datastructures.packed.PackedCells` (within-key
    binary search replaces the per-cell skip pointers — O(log cells)
    per seek on typically tiny spans, and the delay instrumentation
    still counts one step per seek).  The historical ``index[u][p]``
    view of :class:`ResumableIndex` objects — ``index[u][p]`` over the
    cells ``0 .. InDeg(u)-1``, payload of cell ``i`` the (non-empty)
    tuple of predecessor states ``B_u[p][i]``, missing states meaning
    "all cells empty" — materializes lazily on first access.
    """

    __slots__ = ("_index", "cells")

    def __init__(
        self,
        index: Optional[List[Dict[int, ResumableIndex]]] = None,
        cells: Optional[PackedCells] = None,
    ) -> None:
        self._index = index
        self.cells = cells

    @property
    def index(self) -> List[Dict[int, ResumableIndex]]:
        """Per-vertex ``{p: ResumableIndex}`` compatibility view."""
        if self._index is None:
            self._index = _materialize_index(self.cells)
        return self._index

    def for_state(self, u: int, p: int) -> Optional[ResumableIndex]:
        """The skip index of ``(u, p)``, or ``None`` when empty."""
        return self.index[u].get(p)

    def total_items(self) -> int:
        """Number of stored cells — for the memory experiment."""
        if self.cells is not None:
            return len(self.cells)
        return sum(
            len(idx) for per_vertex in self._index
            for idx in per_vertex.values()
        )


def _materialize_index(cells: PackedCells) -> List[Dict[int, ResumableIndex]]:
    """Legacy ``index[u][p]`` view of packed cells (raw payloads)."""
    index: List[Dict[int, ResumableIndex]] = [{} for _ in range(cells.n)]
    key_indptr = cells.key_indptr
    cell_ti = cells.cell_ti
    n_states = cells.n_states
    in_degree = cells.graph.in_degree
    for k in cells.back.nonempty_keys:
        lo, hi = key_indptr[k], key_indptr[k + 1]
        if lo == hi:
            continue
        u = k // n_states
        index[u][k % n_states] = ResumableIndex.from_sorted(
            in_degree(u),
            [cell_ti[c] for c in range(lo, hi)],
            [cells.raw_preds(c) for c in range(lo, hi)],
        )
    return index


def resumable_trim(graph: Graph, annotation: Annotation) -> ResumableAnnotation:
    """Build the ``ResumableTrim`` structure from an annotation.

    Packed annotations share the one
    :meth:`~repro.core.annotate.Annotation.packed_cells` build with
    :func:`trim`; mapping-based ones use the original dict-driven pass.
    """
    if annotation.packed is not None:
        return ResumableAnnotation(cells=annotation.packed_cells(graph))
    return _resumable_trim_maps(graph, annotation)


def _resumable_trim_maps(
    graph: Graph, annotation: Annotation
) -> ResumableAnnotation:
    """The dict-driven ``ResumableTrim`` — for mapping-form annotations."""
    index: List[Dict[int, ResumableIndex]] = []
    # Same vertex-range note as in :func:`_trim_maps` — ``ResumableTrim``
    # is built lazily, possibly epochs after the annotation, so the
    # graph may meanwhile have grown vertices the annotation cannot
    # reach.
    B = annotation.B
    for u in range(len(B)):
        in_degree = graph.in_degree(u)
        per_state: Dict[int, ResumableIndex] = {}
        for p, cells in B[u].items():
            payloads = {i: tuple(preds) for i, preds in cells.items() if preds}
            if payloads:
                per_state[p] = ResumableIndex(in_degree, payloads)
        index.append(per_state)
    return ResumableAnnotation(index)
