"""The ``Annotate`` preprocessing (paper, Figure 2 lines 6-33).

``Annotate`` performs a breadth-first traversal of the product
``D × A`` and populates, for every vertex ``u``:

* ``L_u`` — for each automaton state ``p``, the length of a shortest
  walk from ``s`` to ``u`` whose label can take ``A`` from an initial
  state to ``p`` (Lemma 10(1));
* ``B_u`` — for each state ``p`` and each in-edge position
  ``TgtIdx(e)``, the list of *predecessor states* ``q`` witnessing such
  a shortest walk ending with edge ``e`` (Lemma 10(2)).  Lists may
  contain duplicates (one entry per firing transition), bounded by
  ``Σ_a |Δ⁻¹(a, p)|`` (Lemma 10(3)).

The traversal stops at the end of the first BFS level in which the
target is reached in a final state — that level is λ.  With
``saturate=True`` it instead runs until no new ``(vertex, state)`` pair
exists, which is the one-source-to-many-targets mode of Section 5.3.

ε-transitions are eliminated on the fly, following Section 5.1's
``PossiblyVisit``: whenever a state ``p`` is newly reached at ``u``,
its ε-successors are reached too, with the *same* predecessor state and
edge.  (The "already reached at this level" branch deliberately does
not recurse — see the paper; completeness is preserved because the
direct target state always ends up in the certificate set.)

Complexity: O(|E| × |Δ|) plus O(|V| × |Δ_ε|) for ε-handling, i.e.
O(|D| × |A|) overall.

Label-indexed traversal
-----------------------

The product graph only has an edge ``(v, q) → (u, p)`` where an edge
label and an automaton transition *agree*, so :func:`annotate` expands
a frontier pair ``(v, q)`` by iterating only the labels in
``labels(Δ(q)) ∩ labels(Out(v))`` and, per such label ``a``, only the
edges of ``Out_a(v)`` — served in O(1) per label by the graph's
label-indexed CSR adjacency (:attr:`repro.graph.database.Graph.out_csr`)
and the query's dense transition layout
(:attr:`repro.core.compile.CompiledQuery.delta_dense`).  The per-pair
cost drops from O(OutDeg(v) × |Lbl|) dict probes to
O(Σ_{a ∈ labels(q)} |Out_a(v)|).  ``L`` is carried as one flat
per-(vertex, state) integer array during the BFS and converted to the
documented dict-of-dicts form on return, so the :class:`Annotation`
contract (and every downstream consumer: ``trim``, ``enumerate``, the
baselines) is unchanged.  The pre-index traversal is retained verbatim
as :func:`annotate_reference`; the equivalence property tests in
``tests/core/test_adjacency_equivalence.py`` hold the two to identical
annotation contents.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.core.compile import CompiledQuery

#: Per-vertex ``L`` map: state -> length of shortest witness walk.
LengthMap = Dict[int, int]
#: Per-vertex ``B`` map: state -> {tgt_idx -> [predecessor states]}.
BackMap = Dict[int, Dict[int, List[int]]]


@dataclass
class Annotation:
    """Output of :func:`annotate` (and of the Dijkstra variant).

    ``lam`` is ``None`` when the target was given but no matching walk
    exists.  For saturated runs (multi-target), per-target values are
    derived with :meth:`target_info`.
    """

    source: int
    target: Optional[int]
    lam: Optional[int]
    L: List[LengthMap]
    B: List[BackMap]
    target_states: FrozenSet[int]
    saturated: bool = False
    #: Number of BFS levels (or Dijkstra settles) executed — diagnostics.
    steps: int = 0
    #: Final states of the compiled query (needed for per-target info).
    final: FrozenSet[int] = field(default_factory=frozenset)
    #: ε-closure of the initial states (valid run starting points).
    initial_closure: FrozenSet[int] = field(default_factory=frozenset)

    def target_info(self, t: int) -> Tuple[Optional[int], FrozenSet[int]]:
        """``(λ_t, S_t)`` for an arbitrary target ``t``.

        ``λ_t`` is the length (cost) of a shortest (cheapest) matching
        walk from the source to ``t``; ``S_t`` the final states reached
        at that length.  Only meaningful on saturated annotations or
        for the annotation's own target.

        ``t`` may exceed the vertex range this annotation was built
        over: live graphs (:mod:`repro.live`) grow, and a cached
        annotation whose query fires on no mutated label stays valid —
        a vertex added later is then provably unreachable for it (any
        edge into the new vertex carries only labels the query cannot
        fire on, else the entry would have been evicted), so the
        answer is the usual "no matching walk".
        """
        if not 0 <= t < len(self.L):
            return None, frozenset()
        if t == self.source and (self.initial_closure & self.final):
            return 0, frozenset(self.initial_closure & self.final)
        reached = [
            (self.L[t][f], f) for f in self.final if f in self.L[t]
        ]
        if not reached:
            return None, frozenset()
        lam_t = min(level for level, _ in reached)
        return lam_t, frozenset(f for level, f in reached if level == lam_t)

    def annotation_entries(self) -> int:
        """Total number of predecessor entries stored in ``B``.

        Used by the memory experiment (EXP-MEM) to check Remark 17's
        O(|E| × |Δ|) bound.
        """
        return sum(
            len(preds)
            for vertex_map in self.B
            for cells in vertex_map.values()
            for preds in cells.values()
        )


def _unflatten(flat: array, n: int, n_states: int) -> List[LengthMap]:
    """Convert the flat per-(vertex, state) array back to ``L`` dicts.

    ``-1`` marks unreached pairs; O(|V| × |Q|), once per annotation.
    """
    L: List[LengthMap] = []
    pos = 0
    for _ in range(n):
        row: LengthMap = {}
        for p in range(n_states):
            d = flat[pos]
            if d >= 0:
                row[p] = d
            pos += 1
        L.append(row)
    return L


def annotate(
    cq: CompiledQuery,
    source: int,
    target: Optional[int] = None,
    saturate: bool = False,
) -> Annotation:
    """Run the ``Annotate`` BFS for query ``cq`` from ``source``.

    With a ``target``, stops at the end of level λ (the first level
    reaching the target in a final state); with ``saturate=True`` (or
    no target) runs to exhaustion of the reachable product.

    This is the label-indexed traversal (module docstring): frontier
    pairs expand over ``labels(Δ(q)) ∩ labels(Out(v))`` through the
    graph's CSR adjacency.  :func:`annotate_reference` is the retained
    edge-major original; both produce identical annotations.

    Queries compiled with ``eliminate_epsilon=False`` delegate to the
    reference traversal: Section 5.1's ``PossiblyVisit`` propagates
    witnesses through ε-closures only at *first* discovery, so its
    output depends on the edge visit order — reordering the scan would
    silently change which (edge, predecessor) pair the ε-successors
    inherit.  The ε-eliminated default (the only mode the engine uses)
    has no such order sensitivity.
    """
    if cq.has_eps:
        return annotate_reference(cq, source, target, saturate)
    graph = cq.graph
    n = graph.vertex_count
    n_states = cq.n_states
    tgt_arr = graph.tgt_array
    ti_arr = graph.tgt_idx_array
    indptr, csr_edges = graph.out_csr
    out_labels = graph.out_labels_array
    firing = cq.firing_labels
    firing_sets = cq.firing_sets
    dense = cq.delta_dense
    n_labels = cq.label_count
    final = cq.final

    # L, flattened: dist[v * |Q| + p], -1 = unreached.
    dist = array("q", [-1]) * (n * n_states)
    B: List[BackMap] = [{} for _ in range(n)]

    next_pairs: List[Tuple[int, int]] = []
    source_base = source * n_states
    for p in sorted(cq.initial_closure):
        dist[source_base + p] = 0
        next_pairs.append((source, p))

    # λ = 0 edge case: the trivial walk ⟨s⟩ matches iff ε ∈ L(A).
    if (
        target is not None
        and target == source
        and (cq.initial_closure & final)
        and not saturate
    ):
        return Annotation(
            source=source,
            target=target,
            lam=0,
            L=_unflatten(dist, n, n_states),
            B=B,
            target_states=frozenset(cq.initial_closure & final),
            final=final,
            initial_closure=cq.initial_closure,
        )

    stop = False
    level = 0
    while next_pairs and not stop:
        level += 1
        current, next_pairs = next_pairs, []
        for v, q in current:
            fire = firing[q]
            mine = out_labels[v]
            if not fire or not mine:
                continue
            if len(fire) > len(mine):
                # Intersect from the cheaper side.
                fset = firing_sets[q]
                fire = [a for a in mine if a in fset]
            q_base = q * n_labels
            for a in fire:
                b = a * n + v
                start, end = indptr[b], indptr[b + 1]
                if start == end:
                    continue
                targets = dense[q_base + a]
                for j in range(start, end):
                    e = csr_edges[j]
                    u = tgt_arr[e]
                    u_base = u * n_states
                    back_map = B[u]
                    ti = ti_arr[e]
                    for p in targets:
                        known = dist[u_base + p]
                        if known < 0:
                            # First time state p is reached at vertex u.
                            dist[u_base + p] = level
                            next_pairs.append((u, p))
                            if u == target and p in final and not saturate:
                                stop = True
                            back_map.setdefault(p, {}).setdefault(
                                ti, []
                            ).append(q)
                        elif known == level:
                            # Another walk of the same (minimal) length
                            # reaches p at u: record the extra witness.
                            back_map[p].setdefault(ti, []).append(q)

    L = _unflatten(dist, n, n_states)
    if target is not None and not saturate:
        if stop:
            lam: Optional[int] = level
            target_states = frozenset(
                f for f in final if L[target].get(f) == level
            )
        else:
            lam, target_states = None, frozenset()
        return Annotation(
            source=source,
            target=target,
            lam=lam,
            L=L,
            B=B,
            target_states=target_states,
            steps=level,
            final=final,
            initial_closure=cq.initial_closure,
        )

    return Annotation(
        source=source,
        target=target,
        lam=None,
        L=L,
        B=B,
        target_states=frozenset(),
        saturated=True,
        steps=level,
        final=final,
        initial_closure=cq.initial_closure,
    )


def annotate_reference(
    cq: CompiledQuery,
    source: int,
    target: Optional[int] = None,
    saturate: bool = False,
) -> Annotation:
    """The pre-index ``Annotate``: edge-major scan of ``Out(v)``.

    Retained as the correctness oracle for :func:`annotate` (the
    equivalence property tests run both on random instances) and as
    the baseline of ``benchmarks/bench_adjacency.py``.  Semantics are
    identical; per frontier pair it costs O(OutDeg(v) × |Lbl|) dict
    probes instead of the CSR traversal's output-sensitive bound.
    """
    graph = cq.graph
    n = graph.vertex_count
    out = graph.out_array
    tgt_arr = graph.tgt_array
    ti_arr = graph.tgt_idx_array
    labels_arr = graph.label_array
    delta = cq.delta
    eps = cq.eps
    has_eps = cq.has_eps
    final = cq.final

    L: List[LengthMap] = [{} for _ in range(n)]
    B: List[BackMap] = [{} for _ in range(n)]

    next_pairs: List[Tuple[int, int]] = []
    source_map = L[source]
    for p in sorted(cq.initial_closure):
        source_map[p] = 0
        next_pairs.append((source, p))

    # λ = 0 edge case: the trivial walk ⟨s⟩ matches iff ε ∈ L(A).
    if (
        target is not None
        and target == source
        and (cq.initial_closure & final)
        and not saturate
    ):
        return Annotation(
            source=source,
            target=target,
            lam=0,
            L=L,
            B=B,
            target_states=frozenset(cq.initial_closure & final),
            final=final,
            initial_closure=cq.initial_closure,
        )

    stop = False
    level = 0
    while next_pairs and not stop:
        level += 1
        current, next_pairs = next_pairs, []
        for v, q in current:
            dq = delta[q]
            for e in out[v]:
                u = tgt_arr[e]
                level_map = L[u]
                back_map = B[u]
                ti = ti_arr[e]
                for a in labels_arr[e]:
                    targets = dq.get(a)
                    if not targets:
                        continue
                    for p in targets:
                        known = level_map.get(p)
                        if known is None:
                            # First time state p is reached at vertex u.
                            level_map[p] = level
                            next_pairs.append((u, p))
                            if u == target and p in final and not saturate:
                                stop = True
                            back_map.setdefault(p, {}).setdefault(
                                ti, []
                            ).append(q)
                            if has_eps and eps[p]:
                                # PossiblyVisit: ε-closure with the same
                                # predecessor q and edge e.
                                stack = list(eps[p])
                                while stack:
                                    r = stack.pop()
                                    known_r = level_map.get(r)
                                    if known_r is None:
                                        level_map[r] = level
                                        next_pairs.append((u, r))
                                        if (
                                            u == target
                                            and r in final
                                            and not saturate
                                        ):
                                            stop = True
                                        back_map.setdefault(r, {}).setdefault(
                                            ti, []
                                        ).append(q)
                                        stack.extend(eps[r])
                                    elif known_r == level:
                                        back_map[r].setdefault(ti, []).append(
                                            q
                                        )
                        elif known == level:
                            # Another walk of the same (minimal) length
                            # reaches p at u: record the extra witness.
                            back_map[p].setdefault(ti, []).append(q)

    if target is not None and not saturate:
        if stop:
            lam: Optional[int] = level
            target_states = frozenset(
                f for f in final if L[target].get(f) == level
            )
        else:
            lam, target_states = None, frozenset()
        return Annotation(
            source=source,
            target=target,
            lam=lam,
            L=L,
            B=B,
            target_states=target_states,
            steps=level,
            final=final,
            initial_closure=cq.initial_closure,
        )

    return Annotation(
        source=source,
        target=target,
        lam=None,
        L=L,
        B=B,
        target_states=frozenset(),
        saturated=True,
        steps=level,
        final=final,
        initial_closure=cq.initial_closure,
    )
