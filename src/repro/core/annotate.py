"""The ``Annotate`` preprocessing (paper, Figure 2 lines 6-33).

``Annotate`` performs a breadth-first traversal of the product
``D × A`` and populates, for every vertex ``u``:

* ``L_u`` — for each automaton state ``p``, the length of a shortest
  walk from ``s`` to ``u`` whose label can take ``A`` from an initial
  state to ``p`` (Lemma 10(1));
* ``B_u`` — for each state ``p`` and each in-edge position
  ``TgtIdx(e)``, the list of *predecessor states* ``q`` witnessing such
  a shortest walk ending with edge ``e`` (Lemma 10(2)).  Lists may
  contain duplicates (one entry per firing transition), bounded by
  ``Σ_a |Δ⁻¹(a, p)|`` (Lemma 10(3)).

The traversal stops at the end of the first BFS level in which the
target is reached in a final state — that level is λ.  With
``saturate=True`` it instead runs until no new ``(vertex, state)`` pair
exists, which is the one-source-to-many-targets mode of Section 5.3.

ε-transitions are eliminated on the fly, following Section 5.1's
``PossiblyVisit``: whenever a state ``p`` is newly reached at ``u``,
its ε-successors are reached too, with the *same* predecessor state and
edge.  (The "already reached at this level" branch deliberately does
not recurse — see the paper; completeness is preserved because the
direct target state always ends up in the certificate set.)

Complexity: O(|E| × |Δ|) plus O(|V| × |Δ_ε|) for ε-handling, i.e.
O(|D| × |A|) overall.

Packed annotation layout (primary form)
---------------------------------------

The BFS carries ``L`` as one flat per-(vertex, state) integer array
(``dist[v·|Q| + p]``, ``-1`` = unreached) and logs every ``B`` entry as
an append-only ``(key, TgtIdx, predecessor)`` triple; on return the log
is radix-packed into a :class:`~repro.datastructures.packed.PackedBack`
— entries grouped by product node, ``TgtIdx``-ascending within a node
(exactly Lemma 11's order), append order preserved within a cell.
**These arrays are the annotation's primary representation**: ``Trim``,
``ResumableTrim``, both enumerators, ``NextOutput`` and the counting DP
read them directly, with no dict-of-dicts ever materialized on the hot
path (Remark 17's entry count is the packed array length, an O(1)
read).

The documented mapping contract is preserved as *compatibility views*:
:attr:`Annotation.L` and :attr:`Annotation.B` lazily materialize the
historical ``L[u][p]`` / ``B[u][p][i]`` dicts on first access, with
the same cells and the same witness multisets (duplicates included, in
the traversal's own append order) as an in-place dict build of the
same traversal.  Within-cell *order* is traversal-specific, not part
of the contract: the label-indexed scan and the edge-major reference
discover a BFS level in different orders, so two frontier pairs of the
same vertex may append their witnesses to a shared cell in either
order — unobservable downstream, because ``Trim`` sorts and dedups the
certificates of every cell it keeps.  The reference traversals
(:func:`annotate_reference`,
:func:`~repro.core.cheapest.cheapest_annotate_reference`) still build
dicts natively; such annotations carry no packed form and downstream
consumers transparently fall back to the mapping views.

Label-indexed traversal
-----------------------

The product graph only has an edge ``(v, q) → (u, p)`` where an edge
label and an automaton transition *agree*, so :func:`annotate` expands
a frontier pair ``(v, q)`` by iterating only the labels in
``labels(Δ(q)) ∩ labels(Out(v))`` and, per such label ``a``, only the
edges of ``Out_a(v)`` — served in O(1) per label by the graph's
label-indexed CSR adjacency (:attr:`repro.graph.database.Graph.out_csr`)
and the query's dense transition layout
(:attr:`repro.core.compile.CompiledQuery.delta_dense`).  The per-pair
cost drops from O(OutDeg(v) × |Lbl|) dict probes to
O(Σ_{a ∈ labels(q)} |Out_a(v)|).  The pre-index traversal is retained
verbatim as :func:`annotate_reference`; the equivalence property tests
in ``tests/core/test_adjacency_equivalence.py`` and
``tests/core/test_packed_equivalence.py`` hold the two to identical
annotation contents.
"""

from __future__ import annotations

from array import array
from typing import FrozenSet, List, Optional, Tuple

from repro.core.compile import CompiledQuery
from repro.datastructures.packed import BackMap, LengthMap, PackedBack, PackedCells

__all__ = [
    "Annotation",
    "BackMap",
    "LengthMap",
    "annotate",
    "annotate_reference",
]


class Annotation:
    """Output of :func:`annotate` (and of the Dijkstra variant).

    ``lam`` is ``None`` when the target was given but no matching walk
    exists.  For saturated runs (multi-target), per-target values are
    derived with :meth:`target_info`.

    The interior is either *packed* (``dist`` + ``packed``, the primary
    form produced by :func:`annotate` and
    :func:`~repro.core.cheapest.cheapest_annotate`) or *mapping-based*
    (``L`` + ``B`` dicts, produced by the reference traversals); the
    :attr:`L` / :attr:`B` properties serve the documented mapping
    contract either way, materializing lazily from the packed arrays
    when needed.
    """

    __slots__ = (
        "source", "target", "lam", "target_states", "saturated", "steps",
        "final", "initial_closure", "n", "n_states", "dist", "packed",
        "_L", "_B", "_entries", "_cells",
    )

    def __init__(
        self,
        source: int,
        target: Optional[int],
        lam: Optional[int],
        target_states: FrozenSet[int],
        L: Optional[List[LengthMap]] = None,
        B: Optional[List[BackMap]] = None,
        saturated: bool = False,
        steps: int = 0,
        final: FrozenSet[int] = frozenset(),
        initial_closure: FrozenSet[int] = frozenset(),
        dist: Optional[array] = None,
        packed: Optional[PackedBack] = None,
        n: Optional[int] = None,
        n_states: Optional[int] = None,
    ) -> None:
        self.source = source
        self.target = target
        self.lam = lam
        self.target_states = target_states
        self.saturated = saturated
        self.steps = steps
        self.final = final
        self.initial_closure = initial_closure
        self._L = L
        self._B = B
        self.dist = dist
        self.packed = packed
        if n is None:
            n = len(L) if L is not None else 0
        self.n = n
        if n_states is None:
            n_states = packed.n_states if packed is not None else 0
        self.n_states = n_states
        self._entries: Optional[int] = None
        self._cells: Optional[PackedCells] = None

    def __repr__(self) -> str:
        form = "packed" if self.packed is not None else "maps"
        return (
            f"Annotation(source={self.source}, target={self.target}, "
            f"lam={self.lam}, |V|={self.n}, form={form})"
        )

    # -- the documented mapping views -----------------------------------

    @property
    def L(self) -> List[LengthMap]:
        """Per-vertex ``L`` maps (compatibility view; lazy)."""
        if self._L is None:
            assert self.dist is not None
            self._L = _unflatten(self.dist, self.n, self.n_states)
        return self._L

    @property
    def B(self) -> List[BackMap]:
        """Per-vertex ``B`` maps (compatibility view; lazy)."""
        if self._B is None:
            assert self.packed is not None
            self._B = self.packed.to_maps()
        return self._B

    # -- packed accessors ------------------------------------------------

    @property
    def vertex_count(self) -> int:
        """Number of vertices this annotation was built over."""
        return self.n if self._L is None else len(self._L)

    def packed_back(self) -> PackedBack:
        """The packed ``B`` store, building it from the mapping form
        when this annotation was produced by a reference traversal."""
        if self.packed is None:
            L = self._L or []
            B = self._B or []
            n = len(B)
            n_states = self.n_states or 1 + max(
                (p for row in L for p in row), default=-1
            )
            self.packed = PackedBack.from_maps(n, n_states, B)
            self.n = n
            self.n_states = n_states
        return self.packed

    def packed_cells(self, graph) -> PackedCells:
        """The shared ``Trim`` cell structure (built once, cached).

        Both :func:`~repro.core.trim.trim` and
        :func:`~repro.core.trim.resumable_trim` wrap this one object,
        so the O(entries) slicing pass runs at most once per
        annotation.
        """
        if self._cells is None:
            self._cells = PackedCells(graph, self.packed_back())
        return self._cells

    def target_info(self, t: int) -> Tuple[Optional[int], FrozenSet[int]]:
        """``(λ_t, S_t)`` for an arbitrary target ``t``.

        ``λ_t`` is the length (cost) of a shortest (cheapest) matching
        walk from the source to ``t``; ``S_t`` the final states reached
        at that length.  Only meaningful on saturated annotations or
        for the annotation's own target.

        ``t`` may exceed the vertex range this annotation was built
        over: live graphs (:mod:`repro.live`) grow, and a cached
        annotation whose query fires on no mutated label stays valid —
        a vertex added later is then provably unreachable for it (any
        edge into the new vertex carries only labels the query cannot
        fire on, else the entry would have been evicted), so the
        answer is the usual "no matching walk".
        """
        if not 0 <= t < self.vertex_count:
            return None, frozenset()
        if t == self.source and (self.initial_closure & self.final):
            return 0, frozenset(self.initial_closure & self.final)
        dist = self.dist
        if dist is not None:
            base = t * self.n_states
            reached = [
                (dist[base + f], f) for f in self.final if dist[base + f] >= 0
            ]
        else:
            row = self.L[t]
            reached = [(row[f], f) for f in self.final if f in row]
        if not reached:
            return None, frozenset()
        lam_t = min(level for level, _ in reached)
        return lam_t, frozenset(f for level, f in reached if level == lam_t)

    def annotation_entries(self) -> int:
        """Total number of predecessor entries stored in ``B``.

        Used by the memory experiment (EXP-MEM) to check Remark 17's
        O(|E| × |Δ|) bound.  O(1) on packed annotations (the count *is*
        the packed array length); computed once and cached on
        mapping-based ones.
        """
        if self.packed is not None:
            return len(self.packed)
        if self._entries is None:
            self._entries = sum(
                len(preds)
                for vertex_map in (self._B or [])
                for cells in vertex_map.values()
                for preds in cells.values()
            )
        return self._entries


def _unflatten(flat: array, n: int, n_states: int) -> List[LengthMap]:
    """Convert the flat per-(vertex, state) array back to ``L`` dicts.

    ``-1`` marks unreached pairs; O(|V| × |Q|), only ever run for the
    compatibility view.
    """
    L: List[LengthMap] = []
    pos = 0
    for _ in range(n):
        row: LengthMap = {}
        for p in range(n_states):
            d = flat[pos]
            if d >= 0:
                row[p] = d
            pos += 1
        L.append(row)
    return L


def annotate(
    cq: CompiledQuery,
    source: int,
    target: Optional[int] = None,
    saturate: bool = False,
) -> Annotation:
    """Run the ``Annotate`` BFS for query ``cq`` from ``source``.

    With a ``target``, stops at the end of level λ (the first level
    reaching the target in a final state); with ``saturate=True`` (or
    no target) runs to exhaustion of the reachable product.

    This is the label-indexed traversal (module docstring): frontier
    pairs expand over ``labels(Δ(q)) ∩ labels(Out(v))`` through the
    graph's CSR adjacency, recording ``B`` entries into the append-only
    packed log (no per-entry dict or list allocation).
    :func:`annotate_reference` is the retained edge-major original;
    both produce identical annotation contents.

    Queries compiled with ``eliminate_epsilon=False`` take the packed
    **edge-major** traversal (:func:`_annotate_eps_packed`): Section
    5.1's ``PossiblyVisit`` propagates witnesses through ε-closures
    only at *first* discovery, so its output depends on the edge visit
    order — the ε path therefore replicates
    :func:`annotate_reference`'s scan order exactly (``Out(v)`` in
    edge order, the edge's labels in label order, an explicit
    ε-closure stack) while recording into the packed entry log, so the
    compatibility ``B`` view is bit-identical to the reference's
    dicts.  The ε-eliminated default (the only mode the engine uses)
    has no such order sensitivity and uses the label-indexed CSR scan
    below.
    """
    if cq.has_eps:
        return _annotate_eps_packed(cq, source, target, saturate)
    graph = cq.graph
    n = graph.vertex_count
    n_states = cq.n_states
    tgt_arr = graph.tgt_array
    ti_arr = graph.tgt_idx_array
    indptr, csr_edges = graph.out_csr
    out_labels = graph.out_labels_array
    firing = cq.firing_labels
    firing_sets = cq.firing_sets
    dense = cq.delta_dense
    n_labels = cq.label_count
    final = cq.final

    # L, flattened: dist[v * |Q| + p], -1 = unreached.
    dist = array("q", [-1]) * (n * n_states)
    # The B entry log: (key, TgtIdx, predecessor) triples, append-only.
    ent_key = array("q")
    ent_ti = array("q")
    ent_pred = array("q")
    key_append = ent_key.append
    ti_append = ent_ti.append
    pred_append = ent_pred.append

    next_pairs: List[Tuple[int, int]] = []
    source_base = source * n_states
    for p in sorted(cq.initial_closure):
        dist[source_base + p] = 0
        next_pairs.append((source, p))

    # λ = 0 edge case: the trivial walk ⟨s⟩ matches iff ε ∈ L(A).
    if (
        target is not None
        and target == source
        and (cq.initial_closure & final)
        and not saturate
    ):
        return Annotation(
            source=source,
            target=target,
            lam=0,
            target_states=frozenset(cq.initial_closure & final),
            final=final,
            initial_closure=cq.initial_closure,
            dist=dist,
            packed=PackedBack.from_entries(n, n_states, ent_key, ent_ti, ent_pred),
            n=n,
            n_states=n_states,
        )

    stop = False
    level = 0
    while next_pairs and not stop:
        level += 1
        current, next_pairs = next_pairs, []
        for v, q in current:
            fire = firing[q]
            mine = out_labels[v]
            if not fire or not mine:
                continue
            if len(fire) > len(mine):
                # Intersect from the cheaper side.
                fset = firing_sets[q]
                fire = [a for a in mine if a in fset]
            q_base = q * n_labels
            for a in fire:
                b = a * n + v
                start, end = indptr[b], indptr[b + 1]
                if start == end:
                    continue
                targets = dense[q_base + a]
                for j in range(start, end):
                    e = csr_edges[j]
                    u = tgt_arr[e]
                    u_base = u * n_states
                    ti = ti_arr[e]
                    for p in targets:
                        known = dist[u_base + p]
                        if known < 0:
                            # First time state p is reached at vertex u.
                            dist[u_base + p] = level
                            next_pairs.append((u, p))
                            if u == target and p in final and not saturate:
                                stop = True
                            key_append(u_base + p)
                            ti_append(ti)
                            pred_append(q)
                        elif known == level:
                            # Another walk of the same (minimal) length
                            # reaches p at u: record the extra witness.
                            key_append(u_base + p)
                            ti_append(ti)
                            pred_append(q)

    packed = PackedBack.from_entries(n, n_states, ent_key, ent_ti, ent_pred)
    if target is not None and not saturate:
        if stop:
            lam: Optional[int] = level
            t_base = target * n_states
            target_states = frozenset(
                f for f in final if dist[t_base + f] == level
            )
        else:
            lam, target_states = None, frozenset()
        return Annotation(
            source=source,
            target=target,
            lam=lam,
            target_states=target_states,
            steps=level,
            final=final,
            initial_closure=cq.initial_closure,
            dist=dist,
            packed=packed,
            n=n,
            n_states=n_states,
        )

    return Annotation(
        source=source,
        target=target,
        lam=None,
        target_states=frozenset(),
        saturated=True,
        steps=level,
        final=final,
        initial_closure=cq.initial_closure,
        dist=dist,
        packed=packed,
        n=n,
        n_states=n_states,
    )


def _annotate_eps_packed(
    cq: CompiledQuery,
    source: int,
    target: Optional[int] = None,
    saturate: bool = False,
) -> Annotation:
    """The packed ε-aware ``Annotate``: edge-major with ``PossiblyVisit``.

    Mirrors :func:`annotate_reference`'s traversal order exactly (see
    :func:`annotate`'s docstring for why the order is load-bearing
    under ε) but carries ``L`` as the flat ``dist`` array and logs
    ``B`` entries into the append-only packed log, so ε-queries get
    the same packed downstream pipeline as ε-free ones.
    """
    graph = cq.graph
    n = graph.vertex_count
    n_states = cq.n_states
    out = graph.out_array
    tgt_arr = graph.tgt_array
    ti_arr = graph.tgt_idx_array
    labels_arr = graph.label_array
    delta = cq.delta
    eps = cq.eps
    final = cq.final

    dist = array("q", [-1]) * (n * n_states)
    ent_key = array("q")
    ent_ti = array("q")
    ent_pred = array("q")
    key_append = ent_key.append
    ti_append = ent_ti.append
    pred_append = ent_pred.append

    next_pairs: List[Tuple[int, int]] = []
    source_base = source * n_states
    for p in sorted(cq.initial_closure):
        dist[source_base + p] = 0
        next_pairs.append((source, p))

    def result(
        lam: Optional[int],
        target_states: FrozenSet[int],
        saturated: bool,
        steps: int,
    ) -> Annotation:
        return Annotation(
            source=source,
            target=target,
            lam=lam,
            target_states=target_states,
            saturated=saturated,
            steps=steps,
            final=final,
            initial_closure=cq.initial_closure,
            dist=dist,
            packed=PackedBack.from_entries(
                n, n_states, ent_key, ent_ti, ent_pred
            ),
            n=n,
            n_states=n_states,
        )

    # λ = 0 edge case: the trivial walk ⟨s⟩ matches iff ε ∈ L(A).
    if (
        target is not None
        and target == source
        and (cq.initial_closure & final)
        and not saturate
    ):
        return result(0, frozenset(cq.initial_closure & final), False, 0)

    stop = False
    level = 0
    while next_pairs and not stop:
        level += 1
        current, next_pairs = next_pairs, []
        for v, q in current:
            dq = delta[q]
            for e in out[v]:
                u = tgt_arr[e]
                u_base = u * n_states
                ti = ti_arr[e]
                for a in labels_arr[e]:
                    targets = dq.get(a)
                    if not targets:
                        continue
                    for p in targets:
                        known = dist[u_base + p]
                        if known < 0:
                            # First time state p is reached at vertex u.
                            dist[u_base + p] = level
                            next_pairs.append((u, p))
                            if u == target and p in final and not saturate:
                                stop = True
                            key_append(u_base + p)
                            ti_append(ti)
                            pred_append(q)
                            if eps[p]:
                                # PossiblyVisit: ε-closure with the same
                                # predecessor q and edge e.
                                stack = list(eps[p])
                                while stack:
                                    r = stack.pop()
                                    known_r = dist[u_base + r]
                                    if known_r < 0:
                                        dist[u_base + r] = level
                                        next_pairs.append((u, r))
                                        if (
                                            u == target
                                            and r in final
                                            and not saturate
                                        ):
                                            stop = True
                                        key_append(u_base + r)
                                        ti_append(ti)
                                        pred_append(q)
                                        stack.extend(eps[r])
                                    elif known_r == level:
                                        key_append(u_base + r)
                                        ti_append(ti)
                                        pred_append(q)
                        elif known == level:
                            # Another walk of the same (minimal) length
                            # reaches p at u: record the extra witness.
                            key_append(u_base + p)
                            ti_append(ti)
                            pred_append(q)

    if target is not None and not saturate:
        if stop:
            t_base = target * n_states
            target_states = frozenset(
                f for f in final if dist[t_base + f] == level
            )
            return result(level, target_states, False, level)
        return result(None, frozenset(), False, level)

    return result(None, frozenset(), True, level)


def annotate_reference(
    cq: CompiledQuery,
    source: int,
    target: Optional[int] = None,
    saturate: bool = False,
) -> Annotation:
    """The pre-index ``Annotate``: edge-major scan of ``Out(v)``.

    Retained as the correctness oracle for :func:`annotate` (the
    equivalence property tests run both on random instances) and as
    the baseline of ``benchmarks/bench_adjacency.py``.  Semantics are
    identical; per frontier pair it costs O(OutDeg(v) × |Lbl|) dict
    probes instead of the CSR traversal's output-sensitive bound, and
    it builds the mapping form natively (no packed arrays).
    """
    graph = cq.graph
    n = graph.vertex_count
    out = graph.out_array
    tgt_arr = graph.tgt_array
    ti_arr = graph.tgt_idx_array
    labels_arr = graph.label_array
    delta = cq.delta
    eps = cq.eps
    has_eps = cq.has_eps
    final = cq.final

    L: List[LengthMap] = [{} for _ in range(n)]
    B: List[BackMap] = [{} for _ in range(n)]

    next_pairs: List[Tuple[int, int]] = []
    source_map = L[source]
    for p in sorted(cq.initial_closure):
        source_map[p] = 0
        next_pairs.append((source, p))

    # λ = 0 edge case: the trivial walk ⟨s⟩ matches iff ε ∈ L(A).
    if (
        target is not None
        and target == source
        and (cq.initial_closure & final)
        and not saturate
    ):
        return Annotation(
            source=source,
            target=target,
            lam=0,
            L=L,
            B=B,
            target_states=frozenset(cq.initial_closure & final),
            final=final,
            initial_closure=cq.initial_closure,
            n_states=cq.n_states,
        )

    stop = False
    level = 0
    while next_pairs and not stop:
        level += 1
        current, next_pairs = next_pairs, []
        for v, q in current:
            dq = delta[q]
            for e in out[v]:
                u = tgt_arr[e]
                level_map = L[u]
                back_map = B[u]
                ti = ti_arr[e]
                for a in labels_arr[e]:
                    targets = dq.get(a)
                    if not targets:
                        continue
                    for p in targets:
                        known = level_map.get(p)
                        if known is None:
                            # First time state p is reached at vertex u.
                            level_map[p] = level
                            next_pairs.append((u, p))
                            if u == target and p in final and not saturate:
                                stop = True
                            back_map.setdefault(p, {}).setdefault(
                                ti, []
                            ).append(q)
                            if has_eps and eps[p]:
                                # PossiblyVisit: ε-closure with the same
                                # predecessor q and edge e.
                                stack = list(eps[p])
                                while stack:
                                    r = stack.pop()
                                    known_r = level_map.get(r)
                                    if known_r is None:
                                        level_map[r] = level
                                        next_pairs.append((u, r))
                                        if (
                                            u == target
                                            and r in final
                                            and not saturate
                                        ):
                                            stop = True
                                        back_map.setdefault(r, {}).setdefault(
                                            ti, []
                                        ).append(q)
                                        stack.extend(eps[r])
                                    elif known_r == level:
                                        back_map[r].setdefault(ti, []).append(
                                            q
                                        )
                        elif known == level:
                            # Another walk of the same (minimal) length
                            # reaches p at u: record the extra witness.
                            back_map[p].setdefault(ti, []).append(q)

    if target is not None and not saturate:
        if stop:
            lam: Optional[int] = level
            target_states = frozenset(
                f for f in final if L[target].get(f) == level
            )
        else:
            lam, target_states = None, frozenset()
        return Annotation(
            source=source,
            target=target,
            lam=lam,
            L=L,
            B=B,
            target_states=target_states,
            steps=level,
            final=final,
            initial_closure=cq.initial_closure,
            n_states=cq.n_states,
        )

    return Annotation(
        source=source,
        target=target,
        lam=None,
        L=L,
        B=B,
        target_states=frozenset(),
        saturated=True,
        steps=level,
        final=final,
        initial_closure=cq.initial_closure,
        n_states=cq.n_states,
    )
