"""Brute-force ground truth for the test suite.

Deliberately implemented with machinery *disjoint* from the core
algorithm: λ is found by a BFS over ``(vertex, automaton state set)``
pairs (deterministic simulation, no B/L maps), and the answer set by
exhaustive DFS over all walks of length λ followed by NFA matching.
Exponential in general — only ever run on the small instances produced
by the property-based tests.

One oracle per semantics mode (the differential matrix pairs each
engine mode with its own ground truth):

* :func:`oracle_lam` / :func:`oracle_answer_set` — plain **walks**
  (the paper's distinct shortest walks);
* :func:`oracle_restricted_set` — **trails** / **simple paths**:
  exhaustive DFS over *restricted* walks only (which the restriction
  itself bounds), reporting the minimal accepted length and every
  answer at it;
* :func:`oracle_walk_matches` — the **any-walk** validity check: a
  specific edge sequence is a matching walk of the instance (the
  any-walk λ is just :func:`oracle_lam` — one witness of the plain
  shortest length).

This module also hosts the shared seeded instance generators
(:func:`random_graph`, :func:`random_regex`,
:func:`random_regex_compact`) that every fuzz harness draws from —
previously copy-pasted per test file.
"""

from __future__ import annotations

import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.automata.nfa import NFA
from repro.graph.builder import GraphBuilder
from repro.graph.database import Graph

#: Default label alphabet of the random instance generators.
DEFAULT_ALPHABET = ("a", "b", "c")


def _initial_stateset(nfa: NFA) -> FrozenSet[int]:
    return nfa.eps_closure(nfa.initial)


def _step_stateset(
    nfa: NFA, states: FrozenSet[int], labels: Tuple[str, ...]
) -> FrozenSet[int]:
    """One edge move: any label of the edge may be read."""
    successors: Set[int] = set()
    for symbol in labels:
        for q in states:
            successors.update(nfa.delta(q, symbol))
    from repro.automata.nfa import ANY  # Local import to avoid cycles.

    for q in states:
        successors.update(nfa.delta(q, ANY))
    return nfa.eps_closure(successors)


def oracle_lam(
    graph: Graph, nfa: NFA, source: int, target: int
) -> Optional[int]:
    """λ by BFS over ``(vertex, state set)`` — or ``None``."""
    start = (source, _initial_stateset(nfa))
    if source == target and (start[1] & nfa.final):
        return 0
    dist: Dict[Tuple[int, FrozenSet[int]], int] = {start: 0}
    frontier = [start]
    level = 0
    while frontier:
        level += 1
        current, frontier = frontier, []
        for v, states in current:
            for e in graph.out_edges(v):
                nxt = _step_stateset(nfa, states, graph.label_names_of(e))
                if not nxt:
                    continue
                u = graph.tgt(e)
                node = (u, nxt)
                if node not in dist:
                    dist[node] = level
                    frontier.append(node)
                    if u == target and (nxt & nfa.final):
                        return level
    return None


def oracle_answer_set(
    graph: Graph,
    nfa: NFA,
    source: int,
    target: int,
    max_walks: int = 200_000,
) -> List[Tuple[int, ...]]:
    """All answers as a sorted list of edge-id tuples.

    Enumerates every walk of length λ from the source by DFS, carrying
    the reachable state set for pruning, and keeps those that end at
    the target in a final state.  ``max_walks`` caps the search as a
    safety net for pathological random instances.
    """
    lam = oracle_lam(graph, nfa, source, target)
    if lam is None:
        return []
    if lam == 0:
        return [()]

    answers: List[Tuple[int, ...]] = []
    visited = 0

    def explore(
        v: int, states: FrozenSet[int], depth: int, edges: List[int]
    ) -> None:
        nonlocal visited
        visited += 1
        if visited > max_walks:
            raise RuntimeError("oracle exceeded its walk budget")
        if depth == lam:
            if v == target and (states & nfa.final):
                answers.append(tuple(edges))
            return
        for e in graph.out_edges(v):
            nxt = _step_stateset(nfa, states, graph.label_names_of(e))
            if not nxt:
                continue
            edges.append(e)
            explore(graph.tgt(e), nxt, depth + 1, edges)
            edges.pop()

    explore(source, _initial_stateset(nfa), 0, [])
    return sorted(answers)


def oracle_restricted_set(
    graph: Graph,
    nfa: NFA,
    source: int,
    target: int,
    kind: str,
    max_walks: int = 200_000,
) -> Tuple[Optional[int], List[Tuple[int, ...]]]:
    """``(rλ, sorted answers)`` under a walk restriction.

    ``kind`` is ``"trails"`` (no repeated edge) or ``"simple"`` (no
    repeated vertex).  Enumerates **every** restricted walk from the
    source by DFS — the restriction itself bounds the depth (≤ |E|
    edges for trails, ≤ |V| − 1 for simple paths) — keeps the accepted
    ones, and reports the minimal accepted length with all answers at
    that length.  ``(None, [])`` when no restricted walk matches.
    """
    if kind not in ("trails", "simple"):
        raise ValueError(f"unknown restriction kind {kind!r}")
    simple = kind == "simple"
    best: Optional[int] = None
    answers: List[Tuple[int, ...]] = []
    visited = 0

    start_states = _initial_stateset(nfa)
    if source == target and (start_states & nfa.final):
        # The empty walk satisfies both restrictions.
        return 0, [()]

    used: Set[int] = {source} if simple else set()

    def explore(v: int, states: FrozenSet[int], edges: List[int]) -> None:
        nonlocal best, visited
        visited += 1
        if visited > max_walks:
            raise RuntimeError("restricted oracle exceeded its walk budget")
        if best is not None and len(edges) >= best:
            return  # Deeper walks cannot improve the minimal length.
        for e in graph.out_edges(v):
            u = graph.tgt(e)
            if simple:
                if u in used:
                    continue
            elif e in used:
                continue
            nxt = _step_stateset(nfa, states, graph.label_names_of(e))
            if not nxt:
                continue
            edges.append(e)
            if u == target and (nxt & nfa.final):
                length = len(edges)
                if best is None or length < best:
                    best = length
                    answers.clear()
                if length == best:
                    answers.append(tuple(edges))
            used.add(u if simple else e)
            explore(u, nxt, edges)
            used.discard(u if simple else e)
            edges.pop()

    explore(source, start_states, [])
    return best, sorted(answers)


def oracle_walk_matches(
    graph: Graph,
    nfa: NFA,
    edges: Sequence[int],
    source: int,
    target: int,
) -> bool:
    """Whether ``edges`` is a matching walk from ``source`` to
    ``target`` — the any-walk witness validity check."""
    v = source
    states = _initial_stateset(nfa)
    for e in edges:
        if graph.src(e) != v:
            return False
        states = _step_stateset(nfa, states, graph.label_names_of(e))
        if not states:
            return False
        v = graph.tgt(e)
    return v == target and bool(states & nfa.final)


# -- shared seeded instance generators ---------------------------------------


def random_graph(
    rng: random.Random,
    *,
    max_vertices: int = 6,
    max_edges: int = 12,
    max_labels: Optional[int] = None,
    alphabet: Tuple[str, ...] = DEFAULT_ALPHABET,
) -> Graph:
    """A seeded random multigraph over ``v0..v{n-1}``.

    The PRNG consumption order is part of the contract: the fuzz
    harnesses replay seeds across processes and releases, so the draw
    sequence (``n``, ``m``, then per edge ``src``, ``tgt``, labels)
    must stay stable.
    """
    if max_labels is None:
        max_labels = len(alphabet)
    n = rng.randint(1, max_vertices)
    m = rng.randint(0, max_edges)
    builder = GraphBuilder()
    builder.add_vertices([f"v{i}" for i in range(n)])
    for _ in range(m):
        src = rng.randrange(n)
        tgt = rng.randrange(n)
        labels = rng.sample(alphabet, rng.randint(1, max_labels))
        builder.add_edge(f"v{src}", f"v{tgt}", sorted(labels))
    return builder.build()


def random_regex(
    rng: random.Random,
    depth: int = 3,
    *,
    alphabet: Tuple[str, ...] = DEFAULT_ALPHABET,
) -> str:
    """The rich seeded regex grammar (concat/alt/star/plus/optional)."""
    if depth == 0:
        return rng.choice(alphabet)
    roll = rng.random()
    if roll < 0.25:
        return rng.choice(alphabet)
    if roll < 0.45:
        return (
            f"({random_regex(rng, depth - 1, alphabet=alphabet)} "
            f"{random_regex(rng, depth - 1, alphabet=alphabet)})"
        )
    if roll < 0.65:
        return (
            f"({random_regex(rng, depth - 1, alphabet=alphabet)} | "
            f"{random_regex(rng, depth - 1, alphabet=alphabet)})"
        )
    if roll < 0.80:
        return f"({random_regex(rng, depth - 1, alphabet=alphabet)})*"
    if roll < 0.90:
        return f"({random_regex(rng, depth - 1, alphabet=alphabet)})+"
    return f"({random_regex(rng, depth - 1, alphabet=alphabet)})?"


def random_regex_compact(
    rng: random.Random,
    depth: int = 2,
    *,
    alphabet: Tuple[str, ...] = DEFAULT_ALPHABET,
) -> str:
    """The compact grammar (early literal exit, no ``?``) used by the
    mutation/crash fuzzers, where the regex is not the star of the
    show and small λ keeps oracle rebuilds cheap."""
    if depth == 0 or rng.random() < 0.3:
        return rng.choice(alphabet)
    roll = rng.random()
    inner = random_regex_compact(rng, depth - 1, alphabet=alphabet)
    if roll < 0.35:
        return f"({inner} {random_regex_compact(rng, depth - 1, alphabet=alphabet)})"
    if roll < 0.6:
        return f"({inner} | {random_regex_compact(rng, depth - 1, alphabet=alphabet)})"
    if roll < 0.8:
        return f"({inner})*"
    return f"({inner})+"
