"""Brute-force ground truth for the test suite.

Deliberately implemented with machinery *disjoint* from the core
algorithm: λ is found by a BFS over ``(vertex, automaton state set)``
pairs (deterministic simulation, no B/L maps), and the answer set by
exhaustive DFS over all walks of length λ followed by NFA matching.
Exponential in general — only ever run on the small instances produced
by the property-based tests.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.automata.nfa import NFA
from repro.graph.database import Graph


def _initial_stateset(nfa: NFA) -> FrozenSet[int]:
    return nfa.eps_closure(nfa.initial)


def _step_stateset(
    nfa: NFA, states: FrozenSet[int], labels: Tuple[str, ...]
) -> FrozenSet[int]:
    """One edge move: any label of the edge may be read."""
    successors: Set[int] = set()
    for symbol in labels:
        for q in states:
            successors.update(nfa.delta(q, symbol))
    from repro.automata.nfa import ANY  # Local import to avoid cycles.

    for q in states:
        successors.update(nfa.delta(q, ANY))
    return nfa.eps_closure(successors)


def oracle_lam(
    graph: Graph, nfa: NFA, source: int, target: int
) -> Optional[int]:
    """λ by BFS over ``(vertex, state set)`` — or ``None``."""
    start = (source, _initial_stateset(nfa))
    if source == target and (start[1] & nfa.final):
        return 0
    dist: Dict[Tuple[int, FrozenSet[int]], int] = {start: 0}
    frontier = [start]
    level = 0
    while frontier:
        level += 1
        current, frontier = frontier, []
        for v, states in current:
            for e in graph.out_edges(v):
                nxt = _step_stateset(nfa, states, graph.label_names_of(e))
                if not nxt:
                    continue
                u = graph.tgt(e)
                node = (u, nxt)
                if node not in dist:
                    dist[node] = level
                    frontier.append(node)
                    if u == target and (nxt & nfa.final):
                        return level
    return None


def oracle_answer_set(
    graph: Graph,
    nfa: NFA,
    source: int,
    target: int,
    max_walks: int = 200_000,
) -> List[Tuple[int, ...]]:
    """All answers as a sorted list of edge-id tuples.

    Enumerates every walk of length λ from the source by DFS, carrying
    the reachable state set for pruning, and keeps those that end at
    the target in a final state.  ``max_walks`` caps the search as a
    safety net for pathological random instances.
    """
    lam = oracle_lam(graph, nfa, source, target)
    if lam is None:
        return []
    if lam == 0:
        return [()]

    answers: List[Tuple[int, ...]] = []
    visited = 0

    def explore(
        v: int, states: FrozenSet[int], depth: int, edges: List[int]
    ) -> None:
        nonlocal visited
        visited += 1
        if visited > max_walks:
            raise RuntimeError("oracle exceeded its walk budget")
        if depth == lam:
            if v == target and (states & nfa.final):
                answers.append(tuple(edges))
            return
        for e in graph.out_edges(v):
            nxt = _step_stateset(nfa, states, graph.label_names_of(e))
            if not nxt:
                continue
            edges.append(e)
            explore(graph.tgt(e), nxt, depth + 1, edges)
            edges.pop()

    explore(source, _initial_stateset(nfa), 0, [])
    return sorted(answers)
