"""The naive baseline: enumerate product paths, deduplicate by storage.

Section 1 of the paper: in ``D × A``, a single walk of ``D`` may be
witnessed by exponentially many product paths (nondeterminism in the
query × multi-labels in the data).  Enumerating shortest *product*
paths and filtering duplicates through a stored set therefore needs

* worst-case exponential **space** (the set of emitted walks), and
* worst-case exponential **delay** (all copies of one walk may be
  visited before the next new walk appears).

This module implements exactly that strawman — it is correct, and the
benchmarks use its :class:`NaiveStats` counters to *measure* the
blowup the paper's algorithm avoids (experiment EXP-NAIVE).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.core.compile import CompiledQuery
from repro.core.walks import Walk


@dataclass
class NaiveStats:
    """Work counters for the naive enumeration."""

    #: Shortest product paths visited (= leaves of the product DFS).
    product_paths: int = 0
    #: Outputs suppressed because the walk was already emitted.
    duplicates_suppressed: int = 0
    #: Distinct walks emitted.
    outputs: int = 0
    #: λ (None when no matching walk exists).
    lam: Optional[int] = None
    #: Peak size of the dedup set (== outputs; kept for clarity).
    dedup_set_size: int = field(default=0)


def naive_enumerate(
    cq: CompiledQuery,
    source: int,
    target: int,
    stats: Optional[NaiveStats] = None,
    max_product_paths: Optional[int] = None,
) -> Iterator[Walk]:
    """Enumerate ⟦A⟧(D, s, t) the naive way (ε-free queries).

    ``max_product_paths`` guards benchmarks against the exponential
    blowup; when the cap is hit a :class:`RuntimeError` is raised so
    the harness can record "did not finish".
    """
    if cq.has_eps:
        raise ValueError("naive baseline expects an ε-free compiled query")
    graph = cq.graph
    if stats is None:
        stats = NaiveStats()

    n_states = cq.n_states
    out = graph.out_array
    tgt_arr = graph.tgt_array
    labels_arr = graph.label_array
    delta = cq.delta
    final = cq.final

    def key(v: int, q: int) -> int:
        return v * n_states + q

    # BFS of the product graph, recording *all* equal-level parents.
    dist: Dict[int, int] = {}
    parents: Dict[int, List[Tuple[int, int]]] = {}
    frontier: List[Tuple[int, int]] = []
    for q in sorted(cq.initial_closure):
        dist[key(source, q)] = 0
        frontier.append((source, q))

    if source == target and (cq.initial_closure & final):
        stats.lam = 0
        stats.outputs = 1
        yield Walk(graph, (), start=target)
        return

    level = 0
    found = False
    while frontier and not found:
        level += 1
        current, frontier = frontier, []
        for v, q in current:
            from_key = key(v, q)
            dq = delta[q]
            for e in out[v]:
                u = tgt_arr[e]
                # One product edge per (e, p) pair: labels that fire the
                # same transition do not multiply product paths.
                successors: Set[int] = set()
                for a in labels_arr[e]:
                    successors.update(dq.get(a, ()))
                for p in successors:
                    k = key(u, p)
                    known = dist.get(k)
                    if known is None:
                        dist[k] = level
                        parents[k] = [(e, from_key)]
                        frontier.append((u, p))
                        if u == target and p in final:
                            found = True
                    elif known == level:
                        parents[k].append((e, from_key))
    if not found:
        stats.lam = None
        return
    stats.lam = level

    final_keys = [
        key(target, f) for f in final if dist.get(key(target, f)) == level
    ]
    emitted: Set[Tuple[int, ...]] = set()

    # Backward DFS over the parent DAG: every root-to-leaf path is one
    # shortest *product* path; many may map to the same walk.
    for final_key in final_keys:
        chosen: List[int] = []
        stack: List[Iterator[Tuple[int, int]]] = [
            iter(parents.get(final_key, ()))
        ]
        depth = level  # Remaining steps to the source.
        while stack:
            if depth == 0:
                stats.product_paths += 1
                if (
                    max_product_paths is not None
                    and stats.product_paths > max_product_paths
                ):
                    raise RuntimeError(
                        "naive enumeration exceeded "
                        f"{max_product_paths} product paths"
                    )
                edges = tuple(reversed(chosen))
                if edges in emitted:
                    stats.duplicates_suppressed += 1
                else:
                    emitted.add(edges)
                    stats.outputs += 1
                    stats.dedup_set_size = len(emitted)
                    yield Walk(graph, edges)
                stack.pop()
                depth += 1
                if chosen:
                    chosen.pop()
                continue
            step = next(stack[-1], None)
            if step is None:
                stack.pop()
                depth += 1
                if chosen:
                    chosen.pop()
                continue
            e, parent_key = step
            chosen.append(e)
            depth -= 1
            stack.append(iter(parents.get(parent_key, ())))
        depth = level
