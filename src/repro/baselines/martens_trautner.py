"""The Martens–Trautner reduction (paper, Theorem 1 and Appendix A).

Distinct Shortest Walks reduces to All Shortest Words: build a product
automaton ``A′`` whose

* alphabet is the database's edge set ``E``,
* states are pairs ``(v, q) ∈ V × Q``,
* transitions ``(v₁, q₁) --e--> (v₂, q₂)`` exist when ``Src(e) = v₁``,
  ``Tgt(e) = v₂`` and some label of ``e`` takes ``q₁`` to ``q₂``,
* initial states are ``{s} × I`` and final states ``{t} × F``.

Words of ``L(A′)`` are edge sequences, and the mapping word ↦ walk is
one-to-one, so enumerating the shortest words of ``A′`` (no duplicates,
radix order) *is* enumerating the distinct shortest walks.  Appendix A
gives the resulting complexity — delay O(λ×|Δ|×|E| + λ×|V|²×|Q|²) in
the worst case — which the benchmarks contrast with Theorem 2's
|D|-independent delay (experiment EXP-T1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Set, Tuple

from repro.baselines.all_shortest_words import all_shortest_words
from repro.core.compile import CompiledQuery
from repro.core.walks import Walk


@dataclass
class ProductAutomaton:
    """``A′`` over alphabet E, restricted to its reachable part."""

    #: transitions[state][edge id] -> list of successor states.
    transitions: Dict[int, Dict[int, List[int]]]
    initial: Set[int]
    final: Set[int]
    n_states: int = 0
    n_transitions: int = field(default=0)


def build_product_automaton(
    cq: CompiledQuery, source: int, target: int
) -> ProductAutomaton:
    """Construct the reachable part of ``A′`` by BFS from ``{s} × I``.

    ε-transitions of the query are folded in by closing successor sets.
    Cost O(|E| × |Δ|) time/space — this is exactly the part of the
    baseline that depends on the database size.
    """
    graph = cq.graph
    n_states = cq.n_states
    out = graph.out_array
    tgt_arr = graph.tgt_array
    labels_arr = graph.label_array
    delta = cq.delta
    eps = cq.eps
    has_eps = cq.has_eps

    def eps_close(states: Set[int]) -> Set[int]:
        if not has_eps:
            return states
        closed = set(states)
        stack = list(states)
        while stack:
            q = stack.pop()
            for r in eps[q]:
                if r not in closed:
                    closed.add(r)
                    stack.append(r)
        return closed

    def key(v: int, q: int) -> int:
        return v * n_states + q

    transitions: Dict[int, Dict[int, List[int]]] = {}
    start_states = {key(source, q) for q in eps_close(set(cq.initial))}
    seen: Set[int] = set(start_states)
    stack: List[Tuple[int, int]] = [
        (source, q) for q in eps_close(set(cq.initial))
    ]
    n_transitions = 0
    while stack:
        v, q = stack.pop()
        from_key = key(v, q)
        moves: Dict[int, List[int]] = {}
        dq = delta[q]
        for e in out[v]:
            u = tgt_arr[e]
            successors: Set[int] = set()
            for a in labels_arr[e]:
                successors.update(dq.get(a, ()))
            if not successors:
                continue
            successors = eps_close(successors)
            move_targets: List[int] = []
            for p in sorted(successors):
                k = key(u, p)
                move_targets.append(k)
                if k not in seen:
                    seen.add(k)
                    stack.append((u, p))
            moves[e] = move_targets
            n_transitions += len(move_targets)
        if moves:
            transitions[from_key] = moves

    final_states = {
        key(target, f) for f in cq.final if key(target, f) in seen
    }
    # The trivial walk ⟨s⟩ requires the ε-closed initial set to be final.
    if source == target:
        final_states |= {
            key(target, f)
            for f in cq.final
            if key(source, f) in start_states
        }
    return ProductAutomaton(
        transitions=transitions,
        initial=start_states,
        final=final_states,
        n_states=len(seen),
        n_transitions=n_transitions,
    )


def martens_trautner_walks(
    cq: CompiledQuery, source: int, target: int
) -> Iterator[Walk]:
    """Enumerate ⟦A⟧(D, s, t) via the All-Shortest-Words reduction.

    Output order is radix order on edge-id sequences (which generally
    differs from the main algorithm's TgtIdx-based order; both are
    duplicate-free enumerations of the same set).
    """
    graph = cq.graph
    product = build_product_automaton(cq, source, target)
    for word in all_shortest_words(
        product.initial, product.final, product.transitions
    ):
        if word:
            yield Walk(graph, word)
        else:
            yield Walk(graph, (), start=target)
