"""Baseline algorithms the paper compares against (or warns about).

* :mod:`repro.baselines.naive` — shortest-path enumeration in the
  product graph with a stored dedup set: the strawman of Section 1,
  which can emit exponentially many duplicates per answer;
* :mod:`repro.baselines.all_shortest_words` — from-scratch
  Ackerman–Shallit enumeration of the shortest words of an NFA's
  language in radix order (Theorem 21);
* :mod:`repro.baselines.martens_trautner` — the Theorem 1 / Appendix A
  reduction of Distinct Shortest Walks to All Shortest Words;
* :mod:`repro.baselines.untrimmed` — the factor-``d`` ablation of
  Section 3.2: ``Enumerate`` reading the raw ``B`` maps with no
  ``Trim`` step;
* :mod:`repro.baselines.oracle` — exhaustive ground truth used only by
  the test suite.
"""

from repro.baselines.all_shortest_words import all_shortest_words
from repro.baselines.martens_trautner import (
    ProductAutomaton,
    build_product_automaton,
    martens_trautner_walks,
)
from repro.baselines.naive import NaiveStats, naive_enumerate
from repro.baselines.oracle import oracle_answer_set, oracle_lam
from repro.baselines.untrimmed import UntrimmedStats, enumerate_untrimmed

__all__ = [
    "NaiveStats",
    "ProductAutomaton",
    "UntrimmedStats",
    "all_shortest_words",
    "build_product_automaton",
    "enumerate_untrimmed",
    "martens_trautner_walks",
    "naive_enumerate",
    "oracle_answer_set",
    "oracle_lam",
]
