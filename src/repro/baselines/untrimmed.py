"""Ablation baseline: ``Enumerate`` without the ``Trim`` step.

Section 3.2 of the paper motivates ``Trim`` with one sentence: browsing
``B_u[p]`` directly during the enumeration "would increase the delay by
a factor *d*, the maximal in-degree of D".  This module implements that
exact strawman so the claim can be measured (see
``benchmarks/bench_ablation.py``).

The traversal below is the same depth-first walk of the backward-search
tree ``T`` as :func:`repro.core.enumerate.enumerate_walks`, with one
difference: to find the children of a node at vertex ``u`` it scans the
raw annotation cells ``B_u[p][i]`` for *every* in-edge position
``i ∈ 0..InDeg(u)-1`` — including the empty ones — instead of peeking
at the heads of the ``TgtIdx``-sorted queues ``C_u[p]``.  Each tree
edge therefore costs O(InDeg(u) × |Q|) instead of O(|A|), giving a
delay of O(λ × d × |Q|).

Both variants visit cells in increasing ``TgtIdx`` order, so the output
*sequence* (not just the set) is identical to the trimmed algorithm's —
the test suite checks this on random instances.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, List, Optional

from repro.core.annotate import Annotation
from repro.core.enumerate import CostFn
from repro.core.walks import Walk
from repro.graph.database import Graph


class UntrimmedStats:
    """Work counters filled in by :func:`enumerate_untrimmed`.

    ``cells_scanned`` counts every ``B_u[p][i]`` lookup, i.e. the inner
    loop executions that ``Trim`` would have skipped.  The ablation
    benchmark reports it alongside wall-clock delay because it is
    deterministic across machines.
    """

    __slots__ = ("cells_scanned", "outputs", "tree_nodes")

    def __init__(self) -> None:
        self.cells_scanned = 0
        self.outputs = 0
        self.tree_nodes = 0

    def __repr__(self) -> str:
        return (
            f"UntrimmedStats(cells_scanned={self.cells_scanned}, "
            f"outputs={self.outputs}, tree_nodes={self.tree_nodes})"
        )


class _Frame:
    """One node of the backward-search tree during the DFS.

    ``next_cell`` is the in-edge position where the child scan resumes;
    unlike the trimmed algorithm there is no shared cursor state to
    restart — the cursor lives and dies with the frame.
    """

    __slots__ = ("vertex", "states", "remaining", "next_cell")

    def __init__(
        self, vertex: int, states: tuple, remaining: int, next_cell: int = 0
    ) -> None:
        self.vertex = vertex
        self.states = states
        self.remaining = remaining
        self.next_cell = next_cell


def enumerate_untrimmed(
    graph: Graph,
    annotation: Annotation,
    budget: Optional[int],
    target: int,
    start_states: FrozenSet[int],
    cost_of: Optional[CostFn] = None,
    stats: Optional[UntrimmedStats] = None,
) -> Iterator[Walk]:
    """Enumerate distinct shortest walks straight from the ``B`` maps.

    Parameters mirror :func:`repro.core.enumerate.enumerate_walks`;
    ``annotation`` replaces the trimmed structure.  ``stats``, when
    given, accumulates deterministic work counters.

    The answer sequence is identical to the trimmed enumeration's; only
    the per-step cost differs (O(InDeg × |Q|) here).
    """
    if budget is None or not start_states:
        return
    if budget == 0:
        if stats is not None:
            stats.outputs += 1
        yield Walk(graph, (), start=target)
        return
    if cost_of is None:
        cost_of = _unit_cost

    B = annotation.B
    in_array = graph.in_array
    src_arr = graph.src_array

    chosen: List[int] = []  # Edges from the target side, innermost last.
    stack: List[_Frame] = [
        _Frame(target, tuple(sorted(start_states)), budget)
    ]
    while stack:
        frame = stack[-1]
        if frame.remaining == 0:
            if stats is not None:
                stats.outputs += 1
            yield Walk(graph, tuple(reversed(chosen)))
            stack.pop()
            chosen.pop()
            continue

        # The factor-d scan: walk the in-edge positions one by one,
        # querying |S| maps per position, until a non-empty cell.
        per_state = B[frame.vertex]
        in_list = in_array[frame.vertex]
        in_degree = len(in_list)
        child_states: set = set()
        found_cell = -1
        i = frame.next_cell
        while i < in_degree:
            for p in frame.states:
                if stats is not None:
                    stats.cells_scanned += 1
                cells = per_state.get(p)
                if cells is None:
                    continue
                preds = cells.get(i)
                if preds:
                    child_states.update(preds)
            if child_states:
                found_cell = i
                break
            i += 1

        if found_cell < 0:
            # All positions exhausted: backtrack.  Nothing to restart —
            # cursors are frame-local.
            stack.pop()
            if chosen:
                chosen.pop()
            continue

        frame.next_cell = found_cell + 1
        edge = in_list[found_cell]
        if stats is not None:
            stats.tree_nodes += 1
        chosen.append(edge)
        stack.append(
            _Frame(
                src_arr[edge],
                tuple(sorted(child_states)),
                frame.remaining - cost_of(edge),
            )
        )


def _unit_cost(_e: int) -> int:
    return 1
