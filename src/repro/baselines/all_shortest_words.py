"""All Shortest Words — Ackerman–Shallit style enumeration (Appendix A).

Problem: given an NFA, enumerate **all shortest words** of its language,
without duplicates, in lexicographic (radix) order.  Theorem 21 of the
paper (after [1, 14]) gives O(λ×|Δ| + λ×|Q|²) preprocessing and
O(λ×|Δ|) delay; this module implements that algorithm from scratch.

Shape of the algorithm:

1. forward BFS from the initial states to find λ;
2. backward layers ``R[k]`` = states from which a final state is
   reachable in exactly ``k`` steps, for ``k = 0..λ``;
3. DFS over the prefix tree of shortest words: at a node with state
   set ``S`` and ``k`` letters remaining, the viable next letters are
   those ``a`` with ``Δ(S, a) ∩ R[k-1] ≠ ∅`` — tried in sorted order,
   which yields lexicographic output.

The function is generic over state and symbol types (symbols must be
sortable); the Martens–Trautner reduction instantiates it with integer
edge ids as symbols.
"""

from __future__ import annotations

from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Mapping,
    Set,
    Tuple,
)

State = Hashable
Symbol = Hashable
#: transitions[q][a] -> iterable of successor states.
Transitions = Mapping[State, Mapping[Symbol, Iterable[State]]]


def _candidates(
    transitions: Transitions,
    states: Iterable[State],
    viable: Set[State],
) -> List[Tuple[Symbol, FrozenSet[State]]]:
    """Viable ``(symbol, successor set)`` pairs, sorted by symbol."""
    per_symbol: Dict[Symbol, Set[State]] = {}
    for q in states:
        for symbol, targets in transitions.get(q, {}).items():
            survivors = viable.intersection(targets)
            if survivors:
                per_symbol.setdefault(symbol, set()).update(survivors)
    return [
        (symbol, frozenset(per_symbol[symbol]))
        for symbol in sorted(per_symbol)  # type: ignore[type-var]
    ]


def all_shortest_words(
    initial: Iterable[State],
    final: Iterable[State],
    transitions: Transitions,
) -> Iterator[Tuple[Symbol, ...]]:
    """Enumerate the shortest words of the NFA, lexicographically.

    The automaton must be ε-free (the reduction's product automaton is
    by construction).  Yields nothing when the language is empty.
    """
    initial_set: Set[State] = set(initial)
    final_set: Set[State] = set(final)
    if initial_set & final_set:
        # ε is accepted; it is the unique shortest word.
        yield ()
        return

    # 1. Forward BFS for λ.
    dist: Dict[State, int] = {q: 0 for q in initial_set}
    frontier: List[State] = list(initial_set)
    lam = None
    level = 0
    while frontier and lam is None:
        level += 1
        current, frontier = frontier, []
        for q in current:
            for targets in transitions.get(q, {}).values():
                for p in targets:
                    if p not in dist:
                        dist[p] = level
                        frontier.append(p)
                        if p in final_set:
                            lam = level
    if lam is None:
        return

    # 2. Backward layers R[0..λ].
    reverse: Dict[State, Set[State]] = {}
    for q, moves in transitions.items():
        for targets in moves.values():
            for p in targets:
                reverse.setdefault(p, set()).add(q)
    layers: List[Set[State]] = [set(final_set)]
    for _ in range(lam):
        layers.append(
            {q for p in layers[-1] for q in reverse.get(p, ())}
        )

    # 3. DFS over the prefix tree, letters in sorted order.
    word: List[Symbol] = []
    root = _candidates(transitions, initial_set, layers[lam - 1])
    stack: List[Tuple[List[Tuple[Symbol, FrozenSet[State]]], int]] = [
        (root, 0)
    ]
    while stack:
        options, index = stack[-1]
        if index >= len(options):
            stack.pop()
            if word:
                word.pop()
            continue
        stack[-1] = (options, index + 1)
        symbol, successors = options[index]
        word.append(symbol)
        if len(word) == lam:
            # successors ⊆ R[0] = F, so the word is accepted.
            yield tuple(word)
            word.pop()
            continue
        remaining = lam - len(word)
        stack.append(
            (_candidates(transitions, successors, layers[remaining - 1]), 0)
        )
