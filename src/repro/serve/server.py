"""The asyncio front-end of the serving tier.

One :class:`ServeServer` owns

* the **graph** — held as a :class:`~repro.live.LiveGraph` so the
  write path can apply deltas, published to workers as immutable
  shared-memory segments (:mod:`repro.serve.shm`);
* a pool of forked **worker processes** (:mod:`repro.serve.worker`),
  each mapped zero-copy onto the current segment with its own
  process-local plan/annotation caches;
* the **TCP listener** (and a stdio mode for tests/CLI pipelines)
  speaking the existing JSONL protocol of :mod:`repro.service` — the
  same request/response dicts, byte for byte.

Dispatch
--------
Queries fan out to workers with bounded in-flight per worker
(``max_inflight``) — the pipe send blocks logically behind a
semaphore, so a slow worker exerts backpressure instead of growing an
unbounded queue.  Two routing policies:

``round_robin``
    next worker with a free slot (scan from a rotating start);
``affinity``
    ``crc32((query, source)) % workers`` — requests for the same
    (query, source) pair always land on the same worker, so the
    pool's **aggregate** annotation-cache capacity scales with the
    worker count instead of every worker thrashing over the same
    working set.  This is the policy the EXP-CONC bench measures.

Per connection, responses are written strictly in request order
(requests still execute concurrently).  A ``{"mutate": ...}`` line is
a write barrier exactly as in ``QueryService.execute_batch``: the
queries before it finish first, then the mutation applies, then later
lines proceed — read-your-writes per connection.

Mutations (single-owner write path)
-----------------------------------
Only the server process mutates: it applies the batch to its
``LiveGraph``, compacts, publishes the compacted graph as a **new**
segment ``<base>-e<epoch>``, bumps the old segment's epoch word (so
stragglers can detect staleness), sends an in-band ``reload`` down
every worker pipe, and unlinks the old block (safe while still
mapped).  Pipe FIFO ordering guarantees a worker processes every
pre-mutation request against the old mapping before it reloads —
coarse v1 invalidation: the whole per-worker cache state is dropped on
reload; label-footprint-precise cross-process invalidation is a
ROADMAP follow-on.  Edge ids are renumbered by compaction, so cursors
obtained before a mutation are invalid after it (same contract as
``Database.mutate`` with compaction).

Failure handling
----------------
A worker crash (pipe EOF) fails its in-flight futures; each is
retried once on the respawned pool — a worker request is always a
read-only query, so the retry is safe — and answered with a
structured ``code="worker_crashed"`` error if the retry dies too.  A
worker that stops responding past the request's ``timeout_ms`` plus a
grace window is killed and the request answered
``code="worker_timeout"``.  ``SIGTERM``/``SIGINT`` trigger a graceful
drain: stop accepting, let in-flight connections finish (bounded),
stop workers, unlink the segment.
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing as mp
import threading
import zlib
from typing import Any, Dict, List, Optional, Set

from repro.exceptions import InvalidDeltaError, ReproError
from repro.graph.database import Graph
from repro.obs import Observability, merge_snapshots, render_prometheus
from repro.serve import shm
from repro.serve.worker import _error_payload, worker_main

#: JSONL line-length cap for the TCP reader (1 MiB, matching the
#: service's appetite for large mutation batches).
MAX_LINE = 1 << 20


class WorkerCrashed(Exception):
    """Internal: the worker serving a request died before answering."""


class _Worker:
    """One generation of one worker slot (respawn replaces the object)."""

    __slots__ = (
        "index",
        "process",
        "conn",
        "sem",
        "inflight",
        "pending",
        "ready",
        "stopped",
        "pid",
    )

    def __init__(self, index: int, process, conn, max_inflight: int) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.sem = asyncio.Semaphore(max_inflight)
        self.inflight = 0
        self.pending: Dict[int, asyncio.Future] = {}
        self.ready = asyncio.Event()
        self.stopped = False
        self.pid: Optional[int] = None


class ServeServer:
    """Multi-process serving tier over one shared-memory graph."""

    def __init__(
        self,
        graph,
        *,
        workers: int = 2,
        max_inflight: int = 8,
        routing: str = "round_robin",
        plan_cache_size: int = 256,
        annotation_cache_size: int = 128,
        default_mode: str = "memoryless",
        graph_name: str = "default",
        segment_base: Optional[str] = None,
        timeout_grace_s: float = 10.0,
        mp_start: str = "fork",
        obs: Optional[Observability] = None,
        slow_ms: float = 0.0,
    ) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if routing not in ("round_robin", "affinity"):
            raise ValueError(
                f"unknown routing policy {routing!r}; "
                "expected 'round_robin' or 'affinity'"
            )
        from repro.live import LiveGraph

        if isinstance(graph, LiveGraph):
            self._live = graph
        elif isinstance(graph, Graph):
            self._live = LiveGraph(graph)
        else:
            raise TypeError(f"cannot serve a {type(graph).__name__}")
        #: Owner-side observability: the live graph's overlay gauges
        #: and compaction metrics land here; worker registries are
        #: merged in on :meth:`collect_stats`.  ``slow_ms`` is
        #: forwarded to every worker's slow-query log threshold.
        self.obs = obs if obs is not None else Observability(slow_ms=slow_ms)
        self.slow_ms = slow_ms
        if self.obs.enabled:
            self._live.attach_metrics(self.obs.registry)
            self.obs.registry.register_collector(self._serve_collector)
        self.workers = workers
        self.max_inflight = max_inflight
        self.routing = routing
        self.plan_cache_size = plan_cache_size
        self.annotation_cache_size = annotation_cache_size
        self.default_mode = default_mode
        self.graph_name = graph_name
        self.timeout_grace_s = timeout_grace_s
        self._segment_base = segment_base or shm.default_segment_name()
        self._mp = mp.get_context(mp_start)

        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._segment: Optional[shm.GraphSegment] = None
        self._epoch = 0
        self._pool: List[_Worker] = []
        self._rr = 0
        self._next_rid = 0
        self._draining = False
        self._started = False
        self._mutation_lock: Optional[asyncio.Lock] = None
        self._tcp_server: Optional[asyncio.AbstractServer] = None
        self._conn_tasks: Set[asyncio.Task] = set()
        self._stats = {
            "requests": 0,
            "mutations": 0,
            "retries": 0,
            "respawns": 0,
            "hard_timeouts": 0,
            "worker_errors": 0,
        }
        self._metrics_server: Optional[asyncio.AbstractServer] = None
        #: Last pre-stop aggregation, captured by :meth:`shutdown` so a
        #: drained pool's numbers survive the workers (the SIGTERM
        #: snapshot short smoke runs read).
        self.final_stats: Optional[Dict[str, Any]] = None

    def _serve_collector(self) -> Dict[str, Dict[str, float]]:
        """Export the dispatcher counters into the owner registry."""
        return {
            "counters": {
                f"serve.{key}": value
                for key, value in self._stats.items()
            },
            "gauges": {"serve.workers": len(self._pool)},
        }

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        """Publish epoch 0 and boot the worker pool (waits for ready)."""
        if self._started:
            raise RuntimeError("server already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._mutation_lock = asyncio.Lock()
        snapshot = self._live.compact()
        self._segment = shm.GraphSegment.create(
            snapshot, name=self._segment_name(0), epoch=0
        )
        self._pool = [self._spawn(i) for i in range(self.workers)]
        await asyncio.gather(*(w.ready.wait() for w in self._pool))

    def _segment_name(self, epoch: int) -> str:
        return f"{self._segment_base}-e{epoch}"

    def _spawn(self, index: int) -> _Worker:
        parent_conn, child_conn = self._mp.Pipe()
        process = self._mp.Process(
            target=worker_main,
            args=(child_conn, self._segment.name),
            kwargs={
                "graph_name": self.graph_name,
                "plan_cache_size": self.plan_cache_size,
                "annotation_cache_size": self.annotation_cache_size,
                "default_mode": self.default_mode,
                "slow_ms": self.slow_ms,
            },
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(index, process, parent_conn, self.max_inflight)
        threading.Thread(
            target=self._read_worker,
            args=(worker,),
            name=f"serve-reader-{index}",
            daemon=True,
        ).start()
        return worker

    def _read_worker(self, worker: _Worker) -> None:
        """Blocking pipe reader (one thread per worker generation)."""
        while True:
            try:
                msg = worker.conn.recv()
            except (EOFError, OSError):
                break
            try:
                self._loop.call_soon_threadsafe(self._on_message, worker, msg)
            except RuntimeError:  # pragma: no cover - loop already closed
                return
        try:
            self._loop.call_soon_threadsafe(self._on_worker_died, worker)
        except RuntimeError:  # pragma: no cover - loop already closed
            pass

    def _on_message(self, worker: _Worker, msg) -> None:
        kind = msg[0]
        if kind == "res":
            fut = worker.pending.pop(msg[1], None)
            if fut is not None and not fut.done():
                fut.set_result(msg[2])
        elif kind == "ready":
            worker.pid = msg[1]
            worker.ready.set()

    def _on_worker_died(self, worker: _Worker) -> None:
        """Loop-thread crash handler: fail in-flight, respawn the slot."""
        if worker.stopped:
            return
        worker.stopped = True
        for fut in list(worker.pending.values()):
            if not fut.done():
                fut.set_exception(WorkerCrashed())
        worker.pending.clear()
        worker.conn.close()
        if self._draining:
            return
        self._stats["respawns"] += 1
        # Replace the slot in place *before* any retry wakes up, so
        # retries route to the fresh process.
        self._pool[worker.index] = self._spawn(worker.index)

    async def shutdown(self, drain_timeout_s: float = 10.0) -> None:
        """Graceful drain: stop accepting, finish, stop workers, unlink.

        Before the workers stop, their observability state is
        aggregated one last time into :attr:`final_stats` — the drain
        snapshot that keeps short-lived (SIGTERM'd) runs from exiting
        blind.
        """
        self._draining = True
        if self._tcp_server is not None:
            self._tcp_server.close()
            await self._tcp_server.wait_closed()
        if self._metrics_server is not None:
            self._metrics_server.close()
            await self._metrics_server.wait_closed()
            self._metrics_server = None
        if self._conn_tasks:
            done, pending = await asyncio.wait(
                self._conn_tasks, timeout=drain_timeout_s
            )
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        if self._pool and self.obs.enabled:
            try:
                self.final_stats = await self.collect_stats(timeout_s=2.0)
            except Exception:  # noqa: BLE001 — never block the drain.
                pass
        for worker in self._pool:
            worker.stopped = True
            try:
                worker.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for worker in self._pool:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # pragma: no cover - stuck child
                worker.process.kill()
                worker.process.join(timeout=1.0)
            worker.conn.close()
        self._pool = []
        if self._segment is not None:
            self._segment.close(unlink=True)
            self._segment = None

    # -- dispatch ----------------------------------------------------------

    def _pick(self, payload: Dict[str, Any]) -> _Worker:
        pool = self._pool
        if self.routing == "affinity":
            key = repr((payload.get("query"), payload.get("source")))
            return pool[zlib.crc32(key.encode()) % len(pool)]
        start = self._rr
        self._rr = (self._rr + 1) % len(pool)
        for off in range(len(pool)):
            worker = pool[(start + off) % len(pool)]
            if worker.inflight < self.max_inflight:
                return worker
        return pool[start]

    async def dispatch_query(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Route one query payload to a worker; retry once on crash."""
        self._stats["requests"] += 1
        rid_hint = payload.get("id") if isinstance(payload, dict) else None
        for attempt in range(2):
            worker = self._pick(payload)
            worker.inflight += 1
            async with worker.sem:
                try:
                    return await self._roundtrip(worker, payload)
                except WorkerCrashed:
                    self._stats["retries"] += 1
                    continue
                finally:
                    worker.inflight -= 1
        self._stats["worker_errors"] += 1
        return _error_payload(
            "worker crashed while serving the request (retried once)",
            code="worker_crashed",
            rid=rid_hint,
        )

    async def _roundtrip(
        self, worker: _Worker, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        rid = self._next_rid
        self._next_rid += 1
        fut = self._loop.create_future()
        worker.pending[rid] = fut
        try:
            worker.conn.send(("req", rid, payload))
        except (BrokenPipeError, OSError):
            worker.pending.pop(rid, None)
            raise WorkerCrashed() from None
        timeout_ms = (
            payload.get("timeout_ms") if isinstance(payload, dict) else None
        )
        if isinstance(timeout_ms, (int, float)) and timeout_ms > 0:
            # The engine enforces timeout_ms itself (answers
            # status="timeout" in-band); this watchdog only catches a
            # worker that stopped responding altogether.
            hard = timeout_ms / 1000.0 + self.timeout_grace_s
            try:
                return await asyncio.wait_for(fut, hard)
            except asyncio.TimeoutError:
                worker.pending.pop(rid, None)
                self._stats["hard_timeouts"] += 1
                if not worker.stopped:
                    worker.process.kill()  # reader EOF → respawn
                return _error_payload(
                    f"worker unresponsive past timeout_ms + "
                    f"{self.timeout_grace_s:.0f}s grace; worker killed",
                    code="worker_timeout",
                    rid=payload.get("id"),
                )
        try:
            return await fut
        finally:
            worker.pending.pop(rid, None)

    # -- the single-owner write path ---------------------------------------

    async def apply_mutation(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Apply one ``{"mutate": ...}`` payload and republish."""
        from repro.service.requests import (
            MutationRequest,
            MutationResponse,
            RequestError,
        )

        rid = payload.get("id") if isinstance(payload, dict) else None
        async with self._mutation_lock:
            try:
                request = MutationRequest.from_dict(payload)
                if request.graph not in (None, self.graph_name):
                    raise RequestError(
                        f"unknown graph {request.graph!r}; this server "
                        f"serves {self.graph_name!r}"
                    )
                batch, snapshot = await asyncio.get_running_loop().run_in_executor(
                    None, self._apply_and_compact, request.parsed_ops
                )
                epoch = await self._republish(snapshot)
                self._stats["mutations"] += 1
                result = batch.summary()
                result["serve_epoch"] = epoch
                response = MutationResponse(
                    status="ok", result=result, id=rid
                )
            except InvalidDeltaError as exc:
                response = MutationResponse(
                    status="error",
                    error=str(exc),
                    code="invalid_delta",
                    id=rid,
                )
            except (RequestError, ReproError) as exc:
                response = MutationResponse(
                    status="error", error=str(exc), id=rid
                )
            except Exception as exc:  # noqa: BLE001 — owner backstop.
                response = MutationResponse(
                    status="error",
                    error=f"internal error: {type(exc).__name__}: {exc}",
                    code="internal",
                    id=rid,
                )
        return response.to_dict()

    def _apply_and_compact(self, ops):
        batch = self._live.apply(ops)
        return batch, self._live.compact()

    async def _republish(self, snapshot: Graph) -> int:
        """Publish ``snapshot`` as the next epoch and rotate the pool.

        Pipe FIFO ordering makes the in-band ``reload`` a precise
        barrier per worker: requests already in a pipe are answered
        against the old mapping, every later request sees the new one.
        Unlinking the old block immediately is safe — workers keep
        their mapping alive until they process the reload.
        """
        epoch = self._epoch + 1
        new_segment = await asyncio.get_running_loop().run_in_executor(
            None,
            lambda: shm.GraphSegment.create(
                snapshot, name=self._segment_name(epoch), epoch=epoch
            ),
        )
        old, self._segment, self._epoch = self._segment, new_segment, epoch
        for worker in self._pool:
            worker.ready.clear()
            try:
                worker.conn.send(("reload", new_segment.name))
            except (BrokenPipeError, OSError):
                pass  # crash path will respawn onto the new segment
        old.bump_epoch()  # stale marker for any straggling reader
        old.close(unlink=True)
        return epoch

    # -- connection handling ------------------------------------------------

    async def handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One JSONL client: concurrent execution, in-order responses."""
        order: asyncio.Queue = asyncio.Queue()
        writer_task = asyncio.create_task(self._write_in_order(order, writer))
        prior: List[asyncio.Task] = []
        barrier: Optional[asyncio.Task] = None
        try:
            while True:
                try:
                    line = await reader.readline()
                except (
                    asyncio.LimitOverrunError,
                    ValueError,
                ):  # pragma: no cover - line past MAX_LINE
                    task = asyncio.create_task(
                        _completed(
                            _error_payload("request line too long")
                        )
                    )
                    prior.append(task)
                    await order.put(task)
                    continue
                if not line:
                    break
                text = line.decode("utf-8", errors="replace").strip()
                if not text or text.startswith("#"):
                    continue
                try:
                    payload = json.loads(text)
                except json.JSONDecodeError as exc:
                    task = asyncio.create_task(
                        _completed(_error_payload(f"bad JSON: {exc}"))
                    )
                else:
                    if isinstance(payload, dict) and "mutate" in payload:
                        task = asyncio.create_task(
                            self._mutation_after(list(prior), payload)
                        )
                        barrier = task
                    elif isinstance(payload, dict) and "stats" in payload:
                        # Admin request: aggregate now, no barrier —
                        # a stats read must not wait on (or block) the
                        # query traffic around it.
                        task = asyncio.create_task(
                            self._stats_request(payload)
                        )
                    else:
                        task = asyncio.create_task(
                            self._query_after(barrier, payload)
                        )
                prior.append(task)
                await order.put(task)
        finally:
            await order.put(None)
            await writer_task
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _query_after(
        self, barrier: Optional[asyncio.Task], payload
    ) -> Dict[str, Any]:
        if barrier is not None:
            await asyncio.wait([barrier])
        return await self.dispatch_query(payload)

    async def _mutation_after(
        self, prior: List[asyncio.Task], payload
    ) -> Dict[str, Any]:
        if prior:
            await asyncio.wait(prior)
        return await self.apply_mutation(payload)

    async def _write_in_order(
        self, order: asyncio.Queue, writer: asyncio.StreamWriter
    ) -> None:
        while True:
            task = await order.get()
            if task is None:
                return
            try:
                response = await task
            except Exception as exc:  # noqa: BLE001 — belt and braces.
                response = _error_payload(
                    f"internal error: {type(exc).__name__}: {exc}",
                    code="internal",
                )
            try:
                writer.write(
                    json.dumps(response, sort_keys=False).encode() + b"\n"
                )
                await writer.drain()
            except (ConnectionError, OSError):
                return  # client went away; keep draining the queue

    # -- listeners ----------------------------------------------------------

    async def start_tcp(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> int:
        """Start the TCP listener; returns the bound port."""
        self._tcp_server = await asyncio.start_server(
            self._client_connected, host, port, limit=MAX_LINE
        )
        return self._tcp_server.sockets[0].getsockname()[1]

    async def _client_connected(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        try:
            await self.handle_connection(reader, writer)
        finally:
            self._conn_tasks.discard(task)

    async def run_stdio(self) -> None:
        """Serve one connection over stdin/stdout (tests, pipelines).

        ``connect_read_pipe``/``connect_write_pipe`` only accept pipes,
        sockets and character devices; when either end is redirected to
        a regular file (``repro serve --stdio < in.jsonl > out.jsonl``)
        the corresponding side falls back to thread-pool blocking I/O.
        """
        import sys

        loop = asyncio.get_running_loop()
        reader = asyncio.StreamReader(limit=MAX_LINE)
        try:
            await loop.connect_read_pipe(
                lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
            )
        except ValueError:
            pump = asyncio.create_task(
                _pump_file(reader, sys.stdin.buffer, loop)
            )
            pump.add_done_callback(lambda _t: None)
        try:
            transport, protocol = await loop.connect_write_pipe(
                asyncio.streams.FlowControlMixin, sys.stdout
            )
            writer = asyncio.StreamWriter(transport, protocol, reader, loop)
        except ValueError:
            writer = _BlockingWriter(sys.stdout.buffer, loop)
        await self.handle_connection(reader, writer)

    # -- introspection ------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Current mutation epoch (segments published so far − 1)."""
        return self._epoch

    @property
    def segment_name(self) -> Optional[str]:
        """Name of the currently published segment."""
        return self._segment.name if self._segment is not None else None

    def worker_pids(self) -> List[Optional[int]]:
        """PIDs of the current worker generation (for tests/ops)."""
        return [w.process.pid for w in self._pool]

    def stats(self) -> Dict[str, Any]:
        """Serving counters + pool geometry snapshot."""
        return {
            **self._stats,
            "workers": len(self._pool),
            "epoch": self._epoch,
            "routing": self.routing,
            "segment": self.segment_name,
        }

    # -- cross-worker stats aggregation -------------------------------------

    async def collect_stats(self, timeout_s: float = 5.0) -> Dict[str, Any]:
        """Snapshot every worker over the control pipe and merge.

        Counters sum, histogram buckets add, gauges take the max (see
        :func:`repro.obs.merge_snapshots`); the owner's own registry
        (dispatcher counters, live-graph gauges) merges in last.  A
        worker that is dead, wedged past ``timeout_s``, or crashes
        mid-aggregation contributes a labeled ``status="unavailable"``
        entry instead of blocking the answer — ``partial`` is then
        true, but every reachable worker's numbers are still in.
        """
        sent = []
        for worker in list(self._pool):
            rid = self._next_rid
            self._next_rid += 1
            fut = self._loop.create_future()
            worker.pending[rid] = fut
            try:
                worker.conn.send(("stats", rid))
            except (BrokenPipeError, OSError):
                worker.pending.pop(rid, None)
                fut = None
            sent.append((worker, rid, fut))

        workers_out: List[Dict[str, Any]] = []
        partial = False
        for worker, rid, fut in sent:
            entry: Dict[str, Any]
            if fut is None:
                entry = {"status": "unavailable", "reason": "pipe closed"}
            else:
                try:
                    entry = await asyncio.wait_for(fut, timeout_s)
                except asyncio.TimeoutError:
                    worker.pending.pop(rid, None)
                    entry = {"status": "unavailable", "reason": "timeout"}
                except WorkerCrashed:
                    entry = {"status": "unavailable", "reason": "crashed"}
            if entry.get("status") != "ok":
                partial = True
            entry.setdefault("pid", worker.process.pid)
            entry["index"] = worker.index
            workers_out.append(entry)

        snapshots = [
            w.get("metrics")
            for w in workers_out
            if w.get("status") == "ok"
        ]
        if self.obs.enabled:
            snapshots.append(self.obs.registry.snapshot())
        merged_service: Dict[str, float] = {}
        for w in workers_out:
            if w.get("status") != "ok":
                continue
            for key, value in w.get("service", {}).items():
                if isinstance(value, bool) or not isinstance(
                    value, (int, float)
                ):
                    continue  # nested cache dicts stay per-worker
                merged_service[key] = merged_service.get(key, 0) + value
        return {
            "server": self.stats(),
            "workers": workers_out,
            "merged": {
                "metrics": merge_snapshots(snapshots),
                "service": merged_service,
            },
            "partial": partial,
        }

    async def _stats_request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Answer one ``{"stats": ...}`` JSONL admin request."""
        try:
            stats = await self.collect_stats()
            response: Dict[str, Any] = {"status": "ok", "stats": stats}
        except Exception as exc:  # noqa: BLE001 — admin-path backstop.
            response = {
                "status": "error",
                "error": f"internal error: {type(exc).__name__}: {exc}",
                "code": "internal",
            }
        rid = payload.get("id")
        if rid is not None:
            response["id"] = rid
        return response

    async def start_metrics(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> int:
        """Start the Prometheus text-exposition listener; returns its port.

        A deliberately minimal HTTP/1.1 responder: any request gets the
        merged cross-worker metrics as ``text/plain`` (format 0.0.4)
        and the connection closes — all a scraper needs.
        """
        self._metrics_server = await asyncio.start_server(
            self._metrics_connected, host, port
        )
        return self._metrics_server.sockets[0].getsockname()[1]

    @property
    def metrics_port(self) -> Optional[int]:
        """Bound port of the metrics listener, or ``None``."""
        if self._metrics_server is None:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]

    async def _metrics_connected(self, reader, writer) -> None:
        try:
            while True:  # drain the request head; any path answers
                line = await asyncio.wait_for(reader.readline(), 10.0)
                if not line or line in (b"\r\n", b"\n"):
                    break
            stats = await self.collect_stats(timeout_s=2.0)
            body = render_prometheus(stats["merged"]["metrics"]).encode()
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; "
                b"charset=utf-8\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n" + body
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass


async def _completed(response: Dict[str, Any]) -> Dict[str, Any]:
    return response


async def _pump_file(
    reader: asyncio.StreamReader, fileobj, loop
) -> None:
    """Feed a regular-file stdin into ``reader`` from the thread pool."""
    while True:
        chunk = await loop.run_in_executor(None, fileobj.read, 1 << 16)
        if not chunk:
            reader.feed_eof()
            return
        reader.feed_data(chunk)


class _BlockingWriter:
    """``StreamWriter`` stand-in for a regular-file stdout.

    Implements the subset ``handle_connection`` uses — ``write`` /
    ``drain`` / ``close`` / ``wait_closed`` — with the actual writes
    pushed to the thread pool so the event loop never blocks on disk.
    The underlying file (the process's stdout) is flushed, not closed.
    """

    def __init__(self, fileobj, loop) -> None:
        self._file = fileobj
        self._loop = loop
        self._buffer = bytearray()

    def write(self, data: bytes) -> None:
        self._buffer += data

    async def drain(self) -> None:
        if self._buffer:
            data = bytes(self._buffer)
            del self._buffer[:]
            await self._loop.run_in_executor(None, self._flush, data)

    def _flush(self, data: bytes) -> None:
        self._file.write(data)
        self._file.flush()

    def close(self) -> None:
        if self._buffer:
            self._flush(bytes(self._buffer))
            del self._buffer[:]

    async def wait_closed(self) -> None:
        return None


async def serve(
    graph,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    stdio: bool = False,
    metrics_port: Optional[int] = None,
    on_final_stats=None,
    on_ready=None,
    **server_kwargs,
) -> None:
    """Boot a server, announce readiness, run until SIGTERM/SIGINT.

    ``on_ready(server, port)`` fires after the listener is up (port is
    ``None`` in stdio mode).  The CLI uses it to print the endpoint;
    tests use it to grab the bound port.  ``metrics_port`` additionally
    starts the Prometheus text exposition on that port (0 = ephemeral;
    read it back via ``server.metrics_port`` in ``on_ready``).
    ``on_final_stats(stats)`` fires after the drain with the last
    cross-worker aggregation, so a SIGTERM'd run still reports.
    """
    import signal

    server = ServeServer(graph, **server_kwargs)
    await server.start()
    if metrics_port is not None:
        await server.start_metrics(host, metrics_port)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, ValueError):  # pragma: no cover
            pass
    try:
        if stdio:
            if on_ready is not None:
                on_ready(server, None)
            stdio_task = asyncio.create_task(server.run_stdio())
            done, _pending = await asyncio.wait(
                [stdio_task, asyncio.create_task(stop.wait())],
                return_when=asyncio.FIRST_COMPLETED,
            )
            if stdio_task in done:
                stdio_task.result()
            else:  # pragma: no cover - signal before stdin EOF
                stdio_task.cancel()
                await asyncio.gather(stdio_task, return_exceptions=True)
        else:
            bound = await server.start_tcp(host, port)
            if on_ready is not None:
                on_ready(server, bound)
            await stop.wait()
    finally:
        await server.shutdown()
        if on_final_stats is not None and server.final_stats is not None:
            on_final_stats(server.final_stats)
