"""Blocking JSONL TCP client for the serving tier.

The wire protocol is the existing :mod:`repro.service` JSONL model:
one JSON object per line in, one JSON object per line out, responses
in request order.  :class:`ServeClient` is deliberately simple — a
socket, a buffered reader and ``json`` — so benchmarks and smoke
tests measure the server, not a client framework, and so any language
with sockets + JSON could replicate it.

>>> with ServeClient("127.0.0.1", port) as client:          # doctest: +SKIP
...     resp = client.query("h* s (h | s)*", "Alix", "Bob")
...     resp["status"], resp["lam"]
('ok', 3)
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict, Iterable, List, Optional


class ServeClient:
    """One JSONL connection to a :class:`repro.serve.ServeServer`."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout_s: Optional[float] = 30.0,
        connect_retries: int = 20,
        retry_delay_s: float = 0.1,
    ) -> None:
        last: Optional[Exception] = None
        for _ in range(max(1, connect_retries)):
            try:
                self._sock = socket.create_connection(
                    (host, port), timeout=timeout_s
                )
                break
            except OSError as exc:
                last = exc
                import time

                time.sleep(retry_delay_s)
        else:
            raise ConnectionError(
                f"could not connect to {host}:{port}: {last}"
            ) from last
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._file = self._sock.makefile("rwb")

    # -- raw protocol ------------------------------------------------------

    def send(self, payload: Dict[str, Any]) -> None:
        """Write one request line without waiting for its response."""
        self._file.write(json.dumps(payload).encode() + b"\n")

    def flush(self) -> None:
        """Push buffered request lines to the server without reading."""
        self._file.flush()

    def recv(self) -> Dict[str, Any]:
        """Read the next response line (responses arrive in order)."""
        self._file.flush()
        line = self._file.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line)

    def request(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """One round trip."""
        self.send(payload)
        return self.recv()

    def pipeline(
        self, payloads: Iterable[Dict[str, Any]]
    ) -> List[Dict[str, Any]]:
        """Send every request, then collect the responses in order.

        Mutation lines act as write barriers server-side, so a mixed
        pipeline has the same semantics as
        :meth:`QueryService.execute_batch`.
        """
        n = 0
        for payload in payloads:
            self.send(payload)
            n += 1
        return [self.recv() for _ in range(n)]

    # -- sugar -------------------------------------------------------------

    def query(
        self,
        query: str,
        source,
        target,
        **fields: Any,
    ) -> Dict[str, Any]:
        """Run one pair query (extra JSONL fields pass through)."""
        return self.request(
            {"query": query, "source": source, "target": target, **fields}
        )

    def mutate(
        self, ops: List[Dict[str, Any]], **fields: Any
    ) -> Dict[str, Any]:
        """Apply one mutation batch through the owner process."""
        return self.request({"mutate": ops, **fields})

    def stats(self, **fields: Any) -> Dict[str, Any]:
        """Fetch the server's cross-worker stats aggregation.

        Answers even when no graph is registered worker-side; the
        response's ``stats`` key carries ``server`` counters, the
        per-``workers`` snapshots (with unreachable workers labeled
        ``status="unavailable"``) and the ``merged`` roll-up.
        """
        return self.request({"stats": True, **fields})

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
