"""``repro.serve`` — the multi-process serving tier.

The GIL escape hatch the ROADMAP promised: every CPU-bound stage of
the paper's Annotate → Trim → Enumerate pipeline runs in worker
*processes*, all mapping one read-only packed graph **zero-copy** from
a shared-memory segment, behind an asyncio front-end speaking the
JSONL protocol the single-process :class:`repro.service.QueryService`
already speaks.

Architecture (one box per process)::

                       TCP / stdio (JSONL)
                              │
    ┌─────────────────────────▼─────────────────────────┐
    │ ServeServer (asyncio)                — the OWNER   │
    │  · per-connection in-order response writer         │
    │  · dispatch: round-robin / (query,source) affinity │
    │    with bounded in-flight per worker (backpressure)│
    │  · crash → respawn + one retry or code=            │
    │    "worker_crashed"; SIGTERM → graceful drain      │
    │  · the ONLY writer: LiveGraph.apply → compact →    │
    │    publish segment e(N+1) → bump old epoch →       │
    │    in-band "reload" per pipe → unlink old          │
    └──────┬──────────────────┬──────────────────┬───────┘
           │ mp.Pipe          │                  │
    ┌──────▼──────┐    ┌──────▼──────┐    ┌──────▼──────┐
    │  worker 0   │    │  worker 1   │    │  worker N   │
    │ QueryService│    │ QueryService│    │ QueryService│
    │ plan+annot  │    │   caches    │    │   caches    │
    │ caches      │    │ (process-   │    │             │
    │ (local LRU) │    │   local)    │    │             │
    └──────┬──────┘    └──────┬──────┘    └──────┬──────┘
           │   zero-copy memoryview casts        │
    ┌──────▼──────────────────▼──────────────────▼───────┐
    │  shared-memory segment  <base>-e<epoch>            │
    │  CRC'd header (magic, version, epoch, meta) +      │
    │  packed 'q' buffers: src/tgt/tgt_idx/cost,         │
    │  Lbl CSR, out/in label-indexed CSR, name tables    │
    └────────────────────────────────────────────────────┘

Module map: :mod:`repro.serve.shm` (segment layout,
``Graph.to_shared`` / ``from_shared``), :mod:`repro.serve.worker`
(child process loop), :mod:`repro.serve.server`
(:class:`ServeServer`, :func:`serve`), :mod:`repro.serve.client`
(:class:`ServeClient`, the blocking JSONL helper the bench and smoke
tests use).

Consistency model (v1, documented trade-offs):

* mutations are serialized through the owner; a mutation **republishes
  the whole compacted graph** and coarsely drops every worker's local
  caches (label-footprint-precise cross-process invalidation is a
  ROADMAP follow-on);
* per connection you get read-your-writes: a ``{"mutate": ...}`` line
  is a barrier, and the in-band reload marker reaches each worker pipe
  before any post-mutation query does;
* compaction renumbers edge ids, so cursors do not survive a mutation
  (the same contract as ``Database.mutate`` with compaction);
* across *different* connections a query racing a mutation may see
  either side of it — last-write-wins on the epoch chain.

Start one from the CLI with ``python -m repro serve GRAPH --port 7687
--workers 4`` or in code via :func:`repro.serve.serve`.
"""

from repro.serve.client import ServeClient
from repro.serve.server import ServeServer, serve
from repro.serve.shm import GraphSegment, SharedGraph, attach

__all__ = [
    "GraphSegment",
    "ServeClient",
    "ServeServer",
    "SharedGraph",
    "attach",
    "serve",
]
