"""Worker process: attach the shared graph, serve queries over a pipe.

Each worker is a forked child holding one end of a
``multiprocessing.Pipe``.  It attaches the published segment
(:func:`repro.serve.shm.attach`), registers the resulting
:class:`~repro.serve.shm.SharedGraph` with a **process-local**
:class:`~repro.service.QueryService` — so every worker gets its own
plan + annotation LRU caches over the *shared* read-only pages — and
loops over pickled control tuples:

parent → child
    ``("req", rid, payload)``  execute one JSONL query payload;
    ``("stats", rid)``         snapshot this worker's observability
    state (service counters, metrics registry, slow-query log);
    ``("reload", name)``       detach, attach segment ``name`` instead
    (the coarse v1 invalidation: the process-local caches are dropped
    wholesale by re-registering the new graph);
    ``("stop",)``              drain nothing further and exit 0.

child → parent
    ``("ready", pid, segment_name, epoch)``  after every successful
    (re-)attach; ``("res", rid, response_dict)`` per request (stats
    snapshots answer with the same kind, so the owner's pending-future
    plumbing serves both).

Mutations never reach a worker: the server owns the write path
(:mod:`repro.serve.server`).  A ``{"mutate": ...}`` payload that does
arrive is answered with a structured ``code="not_owner"`` error rather
than being applied, so a routing bug cannot fork the data.

``timeout_ms`` is honored by the engine itself (the enumeration's
deadline checks), so a worker answers ``status="timeout"`` responses
in-band; the server adds a generous out-of-band watchdog on top for
workers that stop responding entirely.
"""

from __future__ import annotations

import os
from typing import Any, Dict, Optional

from repro.exceptions import ReproError


def _error_payload(
    message: str, code: Optional[str] = None, rid: Any = None
) -> Dict[str, Any]:
    """A minimal JSONL error response dict (wire shape of QueryResponse)."""
    out: Dict[str, Any] = {
        "status": "error",
        "lam": None,
        "walks": [],
        "next_cursor": None,
        "error": message,
    }
    if code is not None:
        out["code"] = code
    if rid is not None:
        out["id"] = rid
    return out


def execute_payload(service, payload: Dict[str, Any]) -> Dict[str, Any]:
    """One parsed JSONL payload → one response dict, never raising.

    Shared by the worker loop and the server's stdio fallback: wraps
    request parsing (the one stage :meth:`QueryService.execute` cannot
    guard, since it happens before a request object exists) and maps
    worker-side mutations to ``code="not_owner"``.
    """
    from repro.service.requests import QueryRequest, RequestError

    if not isinstance(payload, dict):
        return _error_payload("request payload must be a JSON object")
    if "mutate" in payload:
        return _error_payload(
            "mutations must go through the serving owner process",
            code="not_owner",
            rid=payload.get("id"),
        )
    try:
        request = QueryRequest.from_dict(payload)
    except (RequestError, ReproError) as exc:
        return _error_payload(str(exc), rid=payload.get("id"))
    except Exception as exc:  # noqa: BLE001 — parse-stage backstop.
        return _error_payload(
            f"internal error: {type(exc).__name__}: {exc}",
            code="internal",
            rid=payload.get("id"),
        )
    return service.execute(request).to_dict()


def worker_stats(service) -> Dict[str, Any]:
    """This process's observability snapshot (JSON-ready), never raising.

    Works without a graph registered: the service counters and the
    registry exist from construction, so a stats request against an
    idle pool still answers.
    """
    try:
        return {
            "status": "ok",
            "pid": os.getpid(),
            "service": service.stats(),
            "metrics": service.obs.registry.snapshot(),
            "slowlog": service.obs.slowlog.entries(),
        }
    except Exception as exc:  # noqa: BLE001 — stats must never kill serving.
        return {
            "status": "error",
            "pid": os.getpid(),
            "error": f"{type(exc).__name__}: {exc}",
        }


def worker_main(
    conn,
    segment_name: str,
    *,
    graph_name: str = "default",
    plan_cache_size: int = 256,
    annotation_cache_size: int = 128,
    default_mode: str = "memoryless",
    slow_ms: float = 0.0,
) -> None:
    """Entry point of one serving worker (runs in the forked child).

    Exits cleanly on ``("stop",)``, on EOF from the parent (server
    died), and on any reload that names a vanished segment — the
    parent sees the pipe close and respawns/reroutes.
    """
    import signal

    # The parent's SIGTERM/SIGINT handlers were inherited across the
    # fork; the drain protocol is the pipe, not signals.
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass

    from repro.serve import shm
    from repro.service import QueryService

    def fresh_service(name: str):
        graph = shm.attach(name)
        service = QueryService(
            plan_cache_size=plan_cache_size,
            annotation_cache_size=annotation_cache_size,
            default_mode=default_mode,
            max_workers=1,
            slow_ms=slow_ms,
        )
        service.register_graph(graph_name, graph, warm=True)
        return graph, service

    graph, service = fresh_service(segment_name)
    conn.send(("ready", os.getpid(), segment_name, graph.attached_epoch))

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        kind = msg[0]
        if kind == "stop":
            break
        if kind == "reload":
            # Coarse v1 invalidation: drop the whole process-local
            # cache state with the old graph and re-attach the new
            # segment.  Fine-grained label-footprint eviction stays a
            # follow-on (ROADMAP item 2).
            segment_name = msg[1]
            old = graph
            graph, service = fresh_service(segment_name)
            old.detach()
            conn.send(
                ("ready", os.getpid(), segment_name, graph.attached_epoch)
            )
            continue
        if kind == "stats":
            try:
                conn.send(("res", msg[1], worker_stats(service)))
            except (BrokenPipeError, OSError):
                break
            continue
        if kind == "req":
            rid, payload = msg[1], msg[2]
            try:
                response = execute_payload(service, payload)
            except Exception as exc:  # noqa: BLE001 — last-ditch guard.
                response = _error_payload(
                    f"internal error: {type(exc).__name__}: {exc}",
                    code="internal",
                )
            try:
                conn.send(("res", rid, response))
            except (BrokenPipeError, OSError):
                break
            continue
        # Unknown control message: protocol skew between parent and
        # child builds — die loudly so the parent respawns.
        raise RuntimeError(f"unknown worker control message {msg[0]!r}")

    graph.detach()
    conn.close()
