"""Shared-memory segment layout for zero-copy graph serving.

One published graph = one named ``multiprocessing.shared_memory``
block.  The block starts with a fixed 40-byte header::

    offset  0   magic      8 bytes  b"RPQSHM01"
    offset  8   version    u32      LAYOUT_VERSION
    offset 12   flags      u32      reserved, 0
    offset 16   epoch      u64      mutation epoch (mutable in place)
    offset 24   meta_len   u32      length of the JSON meta blob
    offset 28   meta_crc   u32      crc32 of the meta blob
    offset 32   data_crc   u32      crc32 of the packed data region
    offset 36   reserved   u32      0

followed by ``meta_len`` bytes of UTF-8 JSON meta, then (8-byte
aligned) the packed ``'q'`` data region.  The meta blob carries the
interned vertex/label name tables, the counts, and a ``segments``
table mapping segment name → ``[offset relative to the data region,
item count]`` for:

``src`` / ``tgt`` / ``tgt_idx``
    the edge-indexed endpoint columns (``cost`` too when the graph
    carries explicit costs),
``lbl_indptr`` / ``lbl_payload``
    ``Lbl(e)`` as a CSR over edge ids (payload = sorted label ids),
``out_indptr`` / ``out_payload`` and ``in_indptr`` / ``in_payload``
    the two label-indexed CSR adjacency views of
    :attr:`repro.graph.Graph.out_csr` / ``in_csr`` (bucket
    ``a·|V| + v``), published pre-built so attaching workers never pay
    the O(|D|) counting sort.

Everything after the epoch word is immutable for the lifetime of the
segment: a mutation produces a *new* segment (see
:mod:`repro.serve.server`) and bumps the old segment's epoch word so a
straggling reader can detect that it is stale.  ``meta_crc`` guards
the header against torn/garbage blocks; ``data_crc`` guards the
payload.

The owner side is :class:`GraphSegment` (created by
:meth:`Graph.to_shared`); readers use :func:`attach` (via
:meth:`Graph.from_shared`) and get a :class:`SharedGraph` — a real
:class:`~repro.graph.database.Graph` whose flat buffers are
``memoryview`` casts over the block, so the annotate/trim/enumerate
hot loops run on shared pages without copying.  Owner cleanup is
belt-and-braces: ``close(unlink=True)``, an ``atexit`` sweep of every
still-open owned segment, and create-time reclaim of a stale block
left behind under the same name by a crashed run.
"""

from __future__ import annotations

import atexit
import json
import os
import struct
import threading
import uuid
import zlib
from array import array
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

from repro.exceptions import ShmError
from repro.graph.database import Graph

MAGIC = b"RPQSHM01"
LAYOUT_VERSION = 1

#: magic, version, flags, epoch, meta_len, meta_crc, data_crc, reserved
_HEADER = struct.Struct("<8sIIQIIII")
_EPOCH_OFFSET = 16
_EPOCH_WORD = struct.Struct("<Q")

#: Flat buffers published per graph, in layout order.  ``cost`` is
#: present only when the graph carries explicit costs.
_SEGMENT_ORDER = (
    "src",
    "tgt",
    "tgt_idx",
    "cost",
    "lbl_indptr",
    "lbl_payload",
    "out_indptr",
    "out_payload",
    "in_indptr",
    "in_payload",
)


def default_segment_name() -> str:
    """A collision-resistant default shm name for one publication."""
    return f"repro-{os.getpid():x}-{uuid.uuid4().hex[:12]}"


def _align8(n: int) -> int:
    return (n + 7) & ~7


def _as_byte_view(buf) -> memoryview:
    """A flat unsigned-byte view over any ``'q'`` buffer (zero-copy)."""
    return memoryview(buf).cast("B")


def _attach_raw(name: str, track: bool = True) -> shared_memory.SharedMemory:
    """Open an existing block, optionally without tracker registration.

    On 3.11 the attach side of ``SharedMemory`` registers the block
    with the ``resource_tracker`` as if it owned it.  Inside the
    serving tier that is harmless — forked workers share the owner's
    tracker, so the registration is an idempotent set-add and the
    tracker doubles as SIGKILL litter collection.  An attacher from an
    *unrelated* process tree has its own tracker, which would unlink
    the segment out from under the owner when that process exits; such
    callers pass ``track=False`` to drop the registration again.
    """
    seg = shared_memory.SharedMemory(name=name)
    if not track:
        try:  # pragma: no cover - tracker internals vary across versions
            from multiprocessing import resource_tracker

            resource_tracker.unregister(seg._name, "shared_memory")
        except Exception:
            pass
    return seg


# -- owner side -------------------------------------------------------------

#: Owned, still-open segments; swept by the ``atexit`` hook so owner
#: crashes short of SIGKILL do not leak /dev/shm blocks.
_OWNED: Dict[int, "GraphSegment"] = {}
_OWNED_LOCK = threading.Lock()


def _cleanup_owned() -> None:  # pragma: no cover - exercised in subprocess
    for segment in list(_OWNED.values()):
        try:
            segment.close(unlink=True)
        except Exception:
            pass


atexit.register(_cleanup_owned)


def _pack_meta(graph: Graph) -> Tuple[dict, Dict[str, object]]:
    """The JSON meta dict (sans segment table) plus the data buffers."""
    names = tuple(graph.vertex_name(v) for v in graph.vertices())
    try:
        vertices = json.loads(json.dumps(list(names), allow_nan=False))
    except (TypeError, ValueError) as exc:
        raise ShmError(
            "to_shared needs JSON-internable vertex names "
            f"(str/int/float/bool/None): {exc}"
        ) from None
    if tuple(vertices) != names:
        raise ShmError(
            "vertex names do not survive the JSON interning table "
            "round-trip; rename them to str/int/float/bool/None"
        )

    lbl_indptr = array("q", [0]) * (graph.edge_count + 1)
    lbl_payload = array("q")
    total = 0
    for e, labels in enumerate(graph.label_array):
        total += len(labels)
        lbl_indptr[e + 1] = total
        lbl_payload.extend(labels)

    out_indptr, out_payload = graph.out_csr
    in_indptr, in_payload = graph.in_csr
    buffers: Dict[str, object] = {
        "src": graph.src_array,
        "tgt": graph.tgt_array,
        "tgt_idx": graph.tgt_idx_array,
        "lbl_indptr": lbl_indptr,
        "lbl_payload": lbl_payload,
        "out_indptr": out_indptr,
        "out_payload": out_payload,
        "in_indptr": in_indptr,
        "in_payload": in_payload,
    }
    if graph.has_costs:
        buffers["cost"] = graph.cost_array

    meta = {
        "vertices": vertices,
        "labels": list(graph.alphabet),
        "edge_count": graph.edge_count,
        "has_costs": graph.has_costs,
    }
    return meta, buffers


class GraphSegment:
    """Owner handle for one published shared-memory graph.

    Create with :meth:`create` (or ``Graph.to_shared``).  The owner —
    and only the owner — unlinks the block: explicitly via
    :meth:`close`, or implicitly through the module's ``atexit``
    sweep.  Readers attach by name with :func:`attach`.
    """

    def __init__(
        self, seg: shared_memory.SharedMemory, name: str, epoch: int
    ) -> None:
        self._seg = seg
        self._name = name
        self._epoch = epoch
        self._closed = False
        with _OWNED_LOCK:
            _OWNED[id(self)] = self

    @classmethod
    def create(
        cls,
        graph: Graph,
        name: Optional[str] = None,
        epoch: int = 0,
    ) -> "GraphSegment":
        """Publish ``graph`` under ``name`` (default: fresh unique name).

        A stale block already registered under ``name`` — the litter of
        a crashed previous run — is unlinked and the name reused rather
        than erroring the new start.
        """
        name = name or default_segment_name()
        meta, buffers = _pack_meta(graph)

        # Segment offsets are relative to the data region, so the meta
        # blob (and hence the region's absolute start) is fixed before
        # any byte is laid out.
        segments: Dict[str, List[int]] = {}
        data_size = 0
        for key in _SEGMENT_ORDER:
            if key not in buffers:
                continue
            n = len(buffers[key])  # type: ignore[arg-type]
            segments[key] = [data_size, n]
            data_size += _align8(8 * n)
        meta["segments"] = segments
        meta_bytes = json.dumps(meta, separators=(",", ":")).encode()
        data_start = _align8(_HEADER.size + len(meta_bytes))
        total_size = data_start + max(data_size, 8)

        seg = cls._create_block(name, total_size)
        try:
            view = seg.buf
            for key, (rel, n) in segments.items():
                if n:
                    start = data_start + rel
                    view[start:start + 8 * n] = _as_byte_view(buffers[key])
            _HEADER.pack_into(
                view,
                0,
                MAGIC,
                LAYOUT_VERSION,
                0,
                epoch,
                len(meta_bytes),
                zlib.crc32(meta_bytes),
                zlib.crc32(view[data_start:data_start + data_size]),
                0,
            )
            view[_HEADER.size:_HEADER.size + len(meta_bytes)] = meta_bytes
        except Exception:
            seg.close()
            try:
                seg.unlink()
            except FileNotFoundError:
                pass
            raise
        return cls(seg, name, epoch)

    @staticmethod
    def _create_block(name: str, size: int) -> shared_memory.SharedMemory:
        try:
            return shared_memory.SharedMemory(name=name, create=True, size=size)
        except FileExistsError:
            stale = _attach_raw(name)
            stale.close()
            try:
                stale.unlink()
            except FileNotFoundError:
                pass
            return shared_memory.SharedMemory(name=name, create=True, size=size)

    # -- owner API ---------------------------------------------------------

    @property
    def name(self) -> str:
        """The shm block name readers pass to :func:`attach`."""
        return self._name

    @property
    def epoch(self) -> int:
        """The mutation epoch currently stamped in the header."""
        return self._epoch

    def bump_epoch(self) -> int:
        """Increment the header epoch word in place; returns the new value.

        The data region is untouched (``data_crc`` covers the data, the
        epoch word is outside both CRCs), so attached readers can poll
        :meth:`SharedGraph.current_epoch` to learn that the segment
        they map has been superseded.
        """
        if self._closed:
            raise ShmError(f"segment {self._name!r} is closed")
        self._epoch += 1
        _EPOCH_WORD.pack_into(self._seg.buf, _EPOCH_OFFSET, self._epoch)
        return self._epoch

    def attach(self) -> "SharedGraph":
        """Map this segment read-only in the current process."""
        return attach(self._name)

    def close(self, unlink: bool = True) -> None:
        """Release the owner mapping; by default also unlink the block."""
        if self._closed:
            return
        self._closed = True
        with _OWNED_LOCK:
            _OWNED.pop(id(self), None)
        self._seg.close()
        if unlink:
            try:
                self._seg.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "GraphSegment":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else f"epoch={self._epoch}"
        return f"GraphSegment({self._name!r}, {state})"


# -- reader side ------------------------------------------------------------


class SharedGraph(Graph):
    """A :class:`Graph` whose flat buffers live in an attached segment.

    Behaves exactly like an immutable graph built in-process — the
    whole accessor contract holds — but ``src/tgt/tgt_idx/cost`` and
    both label-indexed CSR views are zero-copy ``memoryview`` casts
    over shared pages.  Only the Python-level interning dicts, the
    per-edge label tuples and the ``Out``/``In`` adjacency tuples are
    rebuilt locally at attach time (O(|D|), once per worker).

    Call :meth:`detach` when done; detaching never unlinks (that is
    the owner's job).
    """

    __slots__ = ("_shm_seg", "_shm_name", "_attached_epoch", "_shm_views")

    def __init__(
        self,
        seg: shared_memory.SharedMemory,
        name: str,
        epoch: int,
        meta: dict,
        views: Dict[str, memoryview],
    ) -> None:
        # Deliberately no super().__init__: every Graph slot is filled
        # from the attached buffers instead of from sequences.
        self._shm_seg = seg
        self._shm_name = name
        self._attached_epoch = epoch
        self._shm_views = views

        self._vertex_names = tuple(meta["vertices"])
        self._vertex_ids = {v: i for i, v in enumerate(self._vertex_names)}
        self._label_names = tuple(meta["labels"])
        self._label_ids = {a: i for i, a in enumerate(self._label_names)}
        self._src = views["src"]
        self._tgt = views["tgt"]
        self._tgt_idx = views["tgt_idx"]
        self._costs = views.get("cost")

        lbl_indptr = views["lbl_indptr"]
        lbl_payload = views["lbl_payload"]
        self._labels = tuple(
            tuple(lbl_payload[lbl_indptr[e]:lbl_indptr[e + 1]])
            for e in range(meta["edge_count"])
        )

        n = len(self._vertex_names)
        out_lists: List[List[int]] = [[] for _ in range(n)]
        in_lists: List[List[int]] = [[] for _ in range(n)]
        for e in range(meta["edge_count"]):
            out_lists[self._src[e]].append(e)
            in_lists[self._tgt[e]].append(e)
        self._out = tuple(tuple(es) for es in out_lists)
        self._in = tuple(tuple(es) for es in in_lists)

        self._out_csr = (views["out_indptr"], views["out_payload"])
        self._in_csr = (views["in_indptr"], views["in_payload"])
        self._out_label_tuples = None
        self._in_label_tuples = None
        self._cost_cache = None
        self._lazy_lock = threading.Lock()

    # -- segment introspection --------------------------------------------

    @property
    def segment_name(self) -> str:
        """Name of the shm block this graph maps."""
        return self._shm_name

    @property
    def attached_epoch(self) -> int:
        """Header epoch observed at attach time."""
        return self._attached_epoch

    def current_epoch(self) -> int:
        """Re-read the (mutable) epoch word from the shared header.

        A value greater than :attr:`attached_epoch` means the owner has
        published a successor segment: re-attach and drop graph-derived
        caches.
        """
        if self._shm_seg is None:
            raise ShmError(f"segment {self._shm_name!r} is detached")
        return _EPOCH_WORD.unpack_from(self._shm_seg.buf, _EPOCH_OFFSET)[0]

    def is_stale(self) -> bool:
        """True once the owner bumped the epoch past our attach point."""
        return self.current_epoch() != self._attached_epoch

    def detach(self) -> None:
        """Release every view and the mapping (idempotent; no unlink)."""
        seg, self._shm_seg = self._shm_seg, None
        if seg is None:
            return
        # The 'q' casts pin seg.buf; release them before closing or
        # SharedMemory.close() raises BufferError.
        self._src = self._tgt = self._tgt_idx = ()
        self._costs = None
        self._out_csr = self._in_csr = None
        views, self._shm_views = self._shm_views, {}
        for view in views.values():
            view.release()
        seg.close()

    def __repr__(self) -> str:
        state = (
            "detached"
            if self._shm_seg is None
            else f"epoch={self._attached_epoch}"
        )
        return (
            f"SharedGraph({self._shm_name!r}, |V|={len(self._vertex_names)}, "
            f"|E|={len(self._labels)}, {state})"
        )


def read_header(buf) -> Tuple[int, dict, int, int]:
    """Validate the fixed header + meta blob in ``buf``.

    Returns ``(epoch, meta, data_start, data_crc)``; raises
    :class:`ShmError` on bad magic, unsupported version, truncation or
    meta CRC mismatch.
    """
    if len(buf) < _HEADER.size:
        raise ShmError("segment too small to hold a header")
    (
        magic,
        version,
        _flags,
        epoch,
        meta_len,
        meta_crc,
        data_crc,
        _reserved,
    ) = _HEADER.unpack_from(buf, 0)
    if magic != MAGIC:
        raise ShmError(f"bad magic {magic!r}: not a repro graph segment")
    if version != LAYOUT_VERSION:
        raise ShmError(
            f"unsupported segment layout version {version} "
            f"(this build reads {LAYOUT_VERSION})"
        )
    if _HEADER.size + meta_len > len(buf):
        raise ShmError("truncated segment: meta blob overruns the block")
    meta_bytes = bytes(buf[_HEADER.size:_HEADER.size + meta_len])
    if zlib.crc32(meta_bytes) != meta_crc:
        raise ShmError("header CRC mismatch: torn or corrupt segment")
    return (
        epoch,
        json.loads(meta_bytes.decode()),
        _align8(_HEADER.size + meta_len),
        data_crc,
    )


def attach(name: str, track: bool = True) -> SharedGraph:
    """Attach the segment published as ``name`` and rebuild the graph.

    Validates magic, layout version, header CRC and the data-region
    CRC before exposing anything, so a torn or stale block surfaces as
    :class:`~repro.exceptions.ShmError` rather than garbage answers.
    Pass ``track=False`` when attaching from a process tree that does
    not share the owner's ``resource_tracker`` (see
    :func:`_attach_raw`).
    """
    try:
        seg = _attach_raw(name, track=track)
    except FileNotFoundError:
        raise ShmError(f"no shared graph segment named {name!r}") from None
    # The parent view rides in the dict too so detach() releases every
    # export before SharedMemory.close() (else BufferError) — and the
    # error path below must do the same before bailing out.
    views: Dict[str, memoryview] = {}
    try:
        epoch, meta, data_start, data_crc = read_header(seg.buf)
        segments = meta["segments"]
        data_size = max(
            (_align8(rel + 8 * n) for rel, n in segments.values()),
            default=0,
        )
        if data_start + data_size > len(seg.buf):
            raise ShmError("truncated segment: data region overruns block")
        data_view = memoryview(seg.buf)
        views["__data__"] = data_view
        crc = zlib.crc32(data_view[data_start:data_start + data_size])
        if crc != data_crc:
            raise ShmError("data CRC mismatch: torn or corrupt segment")
        for key, (rel, n) in segments.items():
            off = data_start + rel
            views[key] = data_view[off:off + 8 * n].cast("q")
        return SharedGraph(seg, name, epoch, meta, views)
    except Exception:
        for view in views.values():
            view.release()
        seg.close()
        raise
