"""Timing utilities for the complexity experiments.

Enumeration algorithms are judged by *preprocessing time* and *delay*
(time between consecutive outputs) — see the paper's introduction and
[21].  :func:`measure_delays` wraps any iterator and records a
timestamp around every ``next()``, yielding the statistics that the
EXP-T2-DELAY / EXP-T1 / EXP-T18 experiments compare.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Sequence


@dataclass
class DelayStats:
    """Per-output delay statistics for one enumeration run."""

    #: Seconds from iterator creation to the first output.
    first_output_s: float = 0.0
    #: Delays between consecutive outputs, in seconds.
    delays_s: List[float] = field(default_factory=list)
    #: Number of outputs observed.
    outputs: int = 0

    @property
    def max_delay_s(self) -> float:
        """Worst observed inter-output delay (0 for < 2 outputs)."""
        return max(self.delays_s, default=0.0)

    @property
    def mean_delay_s(self) -> float:
        """Average inter-output delay (0 for < 2 outputs)."""
        if not self.delays_s:
            return 0.0
        return sum(self.delays_s) / len(self.delays_s)

    def percentile_delay_s(self, fraction: float) -> float:
        """Delay percentile, e.g. ``0.95`` for p95 (0 for < 2 outputs)."""
        if not self.delays_s:
            return 0.0
        ordered = sorted(self.delays_s)
        index = min(len(ordered) - 1, int(fraction * len(ordered)))
        return ordered[index]


def measure_delays(
    make_iterator: Callable[[], Iterable],
    limit: Optional[int] = None,
) -> DelayStats:
    """Consume (up to ``limit`` outputs of) an iterator, timing each gap.

    ``make_iterator`` is called inside the timed region so that lazy
    setup work is charged to the first output, exactly as the
    enumeration-complexity model prescribes.
    """
    stats = DelayStats()
    started = time.perf_counter()
    previous = started
    iterator = iter(make_iterator())
    for output_index, _ in enumerate(iterator):
        now = time.perf_counter()
        if output_index == 0:
            stats.first_output_s = now - started
        else:
            stats.delays_s.append(now - previous)
        previous = now
        stats.outputs += 1
        if limit is not None and stats.outputs >= limit:
            closer = getattr(iterator, "close", None)
            if closer is not None:
                closer()
            break
    return stats


def measure_preprocessing(preprocess: Callable[[], object]) -> float:
    """Wall-clock seconds for one preprocessing call."""
    started = time.perf_counter()
    preprocess()
    return time.perf_counter() - started


def time_call(fn: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for ``fn()``."""
    best = math.inf
    for _ in range(repeat):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def loglog_slope(
    xs: Sequence[float], ys: Sequence[float]
) -> float:
    """Least-squares slope of log(y) against log(x).

    A slope ≈ 1 confirms linear scaling, ≈ 2 quadratic, ≈ 0
    independence; the scaling experiments assert ranges around these.
    """
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two sequences of equal length >= 2")
    log_xs = [math.log(x) for x in xs]
    log_ys = [math.log(max(y, 1e-12)) for y in ys]
    mean_x = sum(log_xs) / len(log_xs)
    mean_y = sum(log_ys) / len(log_ys)
    sxx = sum((x - mean_x) ** 2 for x in log_xs)
    sxy = sum(
        (x - mean_x) * (y - mean_y) for x, y in zip(log_xs, log_ys)
    )
    if sxx == 0:
        raise ValueError("x values are all equal")
    return sxy / sxx
