"""Plain-text tables for benchmark output.

Every benchmark prints the rows it measured in the same format they
are recorded in ``EXPERIMENTS.md``, so regenerating the document is a
matter of re-running ``pytest benchmarks/ -s``.
"""

from __future__ import annotations

from typing import List, Sequence


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an aligned monospace table with a header rule.

    >>> print(format_table(["n", "t"], [[10, 0.5], [100, 5.0]]))
    n    t
    ---  ---
    10   0.5
    100  5.0
    """
    rendered: List[List[str]] = [[str(h) for h in headers]]
    rendered.extend([_cell(value) for value in row] for row in rows)
    widths = [
        max(len(row[column]) for row in rendered)
        for column in range(len(headers))
    ]
    lines = [
        "  ".join(cell.ljust(width) for cell, width in zip(rendered[0], widths)).rstrip(),
        "  ".join("-" * width for width in widths),
    ]
    for row in rendered[1:]:
        lines.append(
            "  ".join(
                cell.ljust(width) for cell, width in zip(row, widths)
            ).rstrip()
        )
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100:
            return f"{value:.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4g}"
    return str(value)
