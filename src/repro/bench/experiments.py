"""Regenerate the experiment tables behind ``EXPERIMENTS.md``.

Usage::

    python -m repro.bench.experiments                # all experiments
    python -m repro.bench.experiments -k figure3     # a subset
    python -m repro.bench.experiments -o tables.txt  # write to a file

Runs the benchmark suites (``pytest benchmarks/ --benchmark-only -s``)
in a subprocess, extracts every ``## EXP-…`` table from the output,
and prints (or writes) them in a stable order.  ``EXPERIMENTS.md``
quotes these tables; re-run this tool after algorithm changes to
refresh them.
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path
from typing import List, Optional

#: A table starts at '## EXP-…' and runs until a line that is neither
#: table content nor blank-within-table (pytest progress dots etc.).
_HEADER = re.compile(r"^## (EXP-[A-Z0-9-]+.*)$")


def extract_tables(output: str) -> List[str]:
    """The ``## EXP-…`` tables of a benchmark run, in output order."""
    tables: List[str] = []
    current: Optional[List[str]] = None
    for line in output.splitlines():
        if _HEADER.match(line):
            if current:
                tables.append("\n".join(current).rstrip())
            current = [line]
            continue
        if current is not None:
            # Tables end at pytest progress markers: runs of status
            # characters starting with a dot ('.', '..', '.s' ...),
            # optionally followed by a percentage annotation.
            if re.fullmatch(
                r"\.[.sxEF]*\s*(\[\s*\d+%\])?", line.strip()
            ):
                tables.append("\n".join(current).rstrip())
                current = None
            else:
                current.append(line)
    if current:
        tables.append("\n".join(current).rstrip())
    return tables


def run_benchmarks(
    keyword: Optional[str] = None, benchmarks_dir: str = "benchmarks"
) -> str:
    """Run the benchmark suites and return their raw stdout."""
    command = [
        sys.executable,
        "-m",
        "pytest",
        benchmarks_dir,
        "--benchmark-only",
        "--benchmark-disable-gc",
        "-s",
        "-q",
    ]
    if keyword:
        command += ["-k", keyword]
    completed = subprocess.run(
        command, capture_output=True, text=True, check=False
    )
    if completed.returncode not in (0, 5):  # 5 = no tests collected.
        sys.stderr.write(completed.stdout[-2000:])
        sys.stderr.write(completed.stderr[-2000:])
        raise RuntimeError(
            f"benchmark run failed with exit code {completed.returncode}"
        )
    return completed.stdout


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro.bench.experiments",
        description="regenerate the EXPERIMENTS.md tables",
    )
    parser.add_argument(
        "-k", dest="keyword", default=None,
        help="pytest -k expression selecting a subset of suites",
    )
    parser.add_argument(
        "-o", dest="output", default=None,
        help="write tables to this file instead of stdout",
    )
    parser.add_argument(
        "--benchmarks-dir", default="benchmarks",
        help="benchmark suite directory (default: benchmarks)",
    )
    args = parser.parse_args(argv)

    raw = run_benchmarks(args.keyword, args.benchmarks_dir)
    tables = extract_tables(raw)
    if not tables:
        print("no experiment tables produced", file=sys.stderr)
        return 1
    text = ("\n\n".join(tables)) + "\n"
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"{len(tables)} table(s) written to {args.output}")
    else:
        print(text, end="")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
