"""Measurement harness shared by ``benchmarks/`` and ``EXPERIMENTS.md``.

* :mod:`repro.bench.harness` — preprocessing timers and the per-output
  delay recorder that the Theorem 2 experiments rely on;
* :mod:`repro.bench.reporting` — plain-text table rendering so every
  benchmark can print the rows recorded in EXPERIMENTS.md.
"""

from repro.bench.harness import (
    DelayStats,
    loglog_slope,
    measure_delays,
    measure_preprocessing,
    time_call,
)
from repro.bench.reporting import format_table

__all__ = [
    "DelayStats",
    "format_table",
    "loglog_slope",
    "measure_delays",
    "measure_preprocessing",
    "time_call",
]
