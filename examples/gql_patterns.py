#!/usr/bin/env python
"""Query the fraud network with GQL-flavoured path patterns.

The paper motivates Distinct Shortest Walks as the core task of the
all-shortest-walks semantics used by GSQL (TigerGraph), G-Core, PGQL
and the GQL ISO standard (Section 1).  Those languages write queries
as *path patterns*; this example runs several of them over the Figure 1
database through :func:`repro.parse_pattern`:

* ``ALL SHORTEST`` — every distinct shortest matching walk (the
  paper's problem);
* ``ANY SHORTEST`` — one representative walk;
* multi-segment patterns with anonymous interior nodes;
* GQL-style ``:label`` sigils and per-segment quantifiers.

Run:  python examples/gql_patterns.py
"""

from repro import parse_pattern
from repro.workloads.fraud import example9_graph


PATTERNS = [
    # Example 9, verbatim semantics: all shortest, each walk once.
    "ALL SHORTEST (Alix)-[:h* :s (:h|:s)*]->(Bob)",
    # One representative answer (GQL's ANY SHORTEST).
    "ANY SHORTEST (Alix)-[h* s (h|s)*]->(Bob)",
    # Two hops of anything, then one suspicious transfer.
    "ALL SHORTEST (Alix)-->()-->()-[s]->(Bob)",
    # One-or-more high-value transfers, then suspicious ones.
    "ALL SHORTEST (Alix)-[h]->+()-[s]->{1,2}(Bob)",
]


def main() -> None:
    graph = example9_graph()
    print(f"database: {graph}\n")

    for text in PATTERNS:
        pattern = parse_pattern(text)
        print(text)
        print(f"  compiled RPQ: {pattern.regex}")
        walks = list(pattern.run(graph))
        if not walks:
            print("  no matching walk\n")
            continue
        for walk in walks:
            print(f"  {walk.describe()}")
        print()


if __name__ == "__main__":
    main()
