#!/usr/bin/env python
"""Why this algorithm exists: the duplicate explosion, measured.

The paper's introduction: in the product D × A, one walk of D can be
witnessed by exponentially many product paths once edges carry several
labels or the query is nondeterministic.  This script builds that
worst case (the "duplicate bomb"), runs the naive strawman and the
paper's algorithm side by side, and prints the delay statistics for a
large answer set — the numbers behind Theorem 2.

Run:  python examples/delay_anatomy.py
"""

import time

from repro import DistinctShortestWalks
from repro.baselines.naive import NaiveStats, naive_enumerate
from repro.bench import measure_delays
from repro.core.compile import compile_query
from repro.workloads.worstcase import diamond_chain, duplicate_bomb


def duplicate_explosion() -> None:
    print("=" * 64)
    print("1. The duplicate bomb: one answer, m^k product paths")
    print("=" * 64)
    k, m = 9, 3
    graph, nfa, s, t = duplicate_bomb(k, m)
    cq = compile_query(graph, nfa)
    sid, tid = graph.vertex_id(s), graph.vertex_id(t)

    started = time.perf_counter()
    stats = NaiveStats()
    naive_answers = list(naive_enumerate(cq, sid, tid, stats))
    naive_time = time.perf_counter() - started

    started = time.perf_counter()
    engine = DistinctShortestWalks(graph, nfa, sid, tid)
    our_answers = list(engine.enumerate())
    our_time = time.perf_counter() - started

    assert len(naive_answers) == len(our_answers) == 1
    print(f"chain length k={k}, automaton states m={m}")
    print(f"  naive:   visited {stats.product_paths} product paths "
          f"({stats.duplicates_suppressed} duplicates) in {naive_time:.3f}s")
    print(f"  ours:    1 output, no duplicates possible, in {our_time*1e3:.2f}ms")
    print(f"  speedup: {naive_time / max(our_time, 1e-9):.0f}x — and the gap")
    print("  doubles with every +1 to k while ours stays linear.")


def bounded_delay() -> None:
    print()
    print("=" * 64)
    print("2. Bounded delay on a large answer set (2^12 walks)")
    print("=" * 64)
    graph, nfa, s, t = diamond_chain(12, parallel=2)
    engine = DistinctShortestWalks(graph, nfa, s, t)
    engine.preprocess()
    print(f"preprocessing: {engine.timings['total'] * 1e3:.2f} ms "
          f"(|D| = {graph.size()}, λ = {engine.lam})")

    stats = measure_delays(engine.enumerate)
    print(f"outputs:    {stats.outputs}")
    print(f"first out:  {stats.first_output_s * 1e6:.1f} µs")
    print(f"mean delay: {stats.mean_delay_s * 1e6:.2f} µs")
    print(f"p95 delay:  {stats.percentile_delay_s(0.95) * 1e6:.2f} µs")
    print(f"max delay:  {stats.max_delay_s * 1e6:.2f} µs")
    print("The max/mean ratio stays small: no output ever waits for an")
    print("exponential duplicate scan — that is Theorem 2's guarantee.")


def memoryless_mode() -> None:
    print()
    print("=" * 64)
    print("3. Memoryless mode: resume from any previous answer")
    print("=" * 64)
    from repro.core.memoryless import next_output
    from repro.core.trim import resumable_trim

    graph, nfa, s, t = diamond_chain(5, parallel=2)
    engine = DistinctShortestWalks(graph, nfa, s, t, mode="memoryless")
    walks = list(engine.enumerate())
    print(f"{len(walks)} answers; picking #10 and asking for its successor")
    tenth = walks[9]

    resumable = resumable_trim(graph, engine.annotation)
    successor = next_output(
        graph,
        resumable,
        engine.lam,
        engine.target,
        engine.annotation.target_states,
        tenth.edges,
    )
    print(f"  answer #10: {tenth.describe()}")
    print(f"  successor:  {successor.describe()}")
    assert successor.edges == walks[10].edges
    print("No cursor state was kept between the two calls — the")
    print("ResumableTrim skip-index reconstructs it in O(λ × |A|).")


if __name__ == "__main__":
    duplicate_explosion()
    bounded_delay()
    memoryless_mode()
