#!/usr/bin/env python
"""One source, many targets: sweeping a fraud network (§5.3).

An investigator starts from one account and asks: *which accounts can
be reached by a laundering-style chain, how far are they, and through
which transfers?*  Running the full algorithm once per candidate target
would repeat the preprocessing |V| times; the paper's one-source-to-
many-targets extension saturates a single ``Annotate`` pass and then
enumerates per target at no extra preprocessing cost.

Run:  python examples/investigation_sweep.py
"""

from collections import defaultdict

from repro import MultiTargetShortestWalks, rpq
from repro.workloads.fraud import fraud_network


def main() -> None:
    # A 300-account transfer network with a planted mule chain.
    graph = fraud_network(
        n_accounts=300, n_transfers=1500, suspicious_rate=0.12, seed=5
    )
    print(f"network: {graph}")

    # Laundering pattern: suspicious transfers possibly capped by one
    # high-value cash-out.
    query = rpq("s s* h?")
    print(f"query:   {query.expression}\n")

    sweep = MultiTargetShortestWalks(graph, query.automaton, "acct0")
    reached = sweep.reached_targets()
    print(f"accounts reachable by the pattern: {len(reached)}\n")

    # Group by distance: the fraud ring's "shells" around the source.
    by_distance = defaultdict(list)
    for target in reached:
        by_distance[sweep.lam_for(target)].append(target)

    for distance in sorted(by_distance)[:4]:
        members = by_distance[distance]
        print(f"λ = {distance}: {len(members)} account(s)")
        # Show the full evidence for the first account of each shell.
        sample = members[0]
        name = graph.vertex_name(sample)
        walks = list(sweep.walks_to(sample))
        print(f"  e.g. {name} — {len(walks)} distinct shortest chain(s):")
        for walk in walks[:3]:
            print(f"    {walk.describe()}")
        if len(walks) > 3:
            print(f"    ... and {len(walks) - 3} more")
        print()

    # The same sweep with per-target engines would redo Annotate once
    # per account; the shared pass does it once (see EXP-EXT-MT for the
    # measured gap).


if __name__ == "__main__":
    main()
