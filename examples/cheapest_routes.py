#!/usr/bin/env python
"""Distinct Cheapest Walks: label-constrained routing with edge costs.

A small intermodal transport network: cities connected by ``train``,
``bus`` and ``flight`` edges carrying travel costs.  The Section 5.3
extension replaces the BFS of ``Annotate`` with a Dijkstra traversal,
enumerating **all cost-minimal** walks that match the query — here,
"no more flying after the first ground segment", the kind of policy
constraint plain shortest-path algorithms cannot express.

Run:  python examples/cheapest_routes.py
"""

from repro import DistinctCheapestWalks, GraphBuilder, rpq


def build_network():
    builder = GraphBuilder()
    legs = [
        # src, dst, mode, cost
        ("Paris", "Lyon", "train", 40),
        ("Paris", "Lyon", "bus", 25),
        ("Paris", "Nice", "flight", 80),
        ("Lyon", "Nice", "train", 45),
        ("Lyon", "Nice", "bus", 30),
        ("Lyon", "Marseille", "train", 35),
        ("Marseille", "Nice", "train", 20),
        ("Marseille", "Nice", "bus", 15),
        ("Paris", "Marseille", "flight", 70),
        ("Paris", "Marseille", "train", 60),
        ("Nice", "Genoa", "bus", 25),
        ("Marseille", "Genoa", "flight", 55),
    ]
    for src, dst, mode, cost in legs:
        builder.add_edge(src, dst, [mode], cost=cost)
    return builder.build()


def main() -> None:
    graph = build_network()
    print(f"transport network: {graph}\n")

    # Policy: any number of flights first, then ground only.
    policy = rpq("flight* (train | bus)*")
    engine = DistinctCheapestWalks(graph, policy.automaton, "Paris", "Genoa")

    print(f"policy: {policy.expression}")
    print(f"cheapest compliant cost Paris → Genoa: {engine.cheapest_cost}")
    print("all cost-minimal itineraries:")
    for walk in engine.enumerate():
        modes = " + ".join(labels[0] for labels in walk.label_sets())
        print(f"  {walk.describe()}")
        print(f"      total {walk.cost()}, modes: {modes}")

    # Contrast: unconstrained cheapest (any label sequence).
    anything = rpq("(train | bus | flight)+")
    free = DistinctCheapestWalks(graph, anything.automaton, "Paris", "Genoa")
    print(f"\nwithout the policy the cheapest cost is {free.cheapest_cost}:")
    for walk in free.enumerate():
        print(f"  {walk.describe()}  (total {walk.cost()})")

    # Ties are first-class citizens: every cost-minimal walk is listed,
    # exactly once — the "distinct" in Distinct Cheapest Walks.
    ground = rpq("(train | bus)+")
    tie_engine = DistinctCheapestWalks(graph, ground.automaton, "Paris", "Nice")
    walks = list(tie_engine.enumerate())
    print(
        f"\nground-only Paris → Nice: {len(walks)} tie(s) at cost "
        f"{tie_engine.cheapest_cost}"
    )
    for walk in walks:
        print(f"  {walk.describe()}")

    # At scale: the same policies over a generated 200-city network
    # (ring of train/bus legs + flight hubs).  The decrease-key pairing
    # heap is a drop-in alternative to the default binary heap.
    from repro.workloads.transport import (
        TRANSPORT_QUERIES,
        antipodal_pair,
        transport_network,
    )

    big = transport_network(200, seed=0)
    src, tgt = antipodal_pair(big)
    print(f"\ngenerated network: {big} — {src} → {tgt}")
    for name, expr in sorted(TRANSPORT_QUERIES.items()):
        engine = DistinctCheapestWalks(
            big, rpq(expr).automaton, src, tgt, heap="pairing"
        )
        count = engine.count(method="dp")
        print(
            f"  {name:<15} cheapest {str(engine.cheapest_cost):>5}, "
            f"{count} tie(s)"
        )


if __name__ == "__main__":
    main()
