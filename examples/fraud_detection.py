#!/usr/bin/env python
"""Fraud detection on a synthetic bank-transfer network.

Scales the Example 9 scenario up: 500 accounts, a few thousand
transfers labeled ``h`` (high value), ``s`` (suspicious), ``w`` (wire),
``c`` (cash).  Shows:

* RPQ queries with the full expression syntax (unions, stars, bounded
  repetitions);
* the query planner explaining which engine runs;
* multiplicities as a crude "how suspicious is this walk" signal;
* one-source-to-many-targets: where can the mule account reach?

Run:  python examples/fraud_detection.py
"""

from repro import rpq
from repro.query import analyze
from repro.workloads.fraud import fraud_network


def main() -> None:
    graph = fraud_network(
        n_accounts=500, n_transfers=3_000, seed=2024, chain_length=5
    )
    print(f"transfer network: {graph}")
    source, sink = "acct0", "acct499"

    # 1. Classic laundering pattern: anything, then a suspicious hop,
    #    then anything — restricted to "money actually moving" labels.
    laundering = rpq("(h | w | c)* s (h | w | c | s)*")
    engine = laundering.engine(graph, source, sink)
    print(f"\nquery: {laundering.expression}")
    print(f"  λ = {engine.lam}")
    walks = list(engine.enumerate())
    print(f"  distinct shortest walks: {len(walks)}")
    for walk in walks[:5]:
        print(f"    {walk.describe()}")
    if len(walks) > 5:
        print(f"    ... and {len(walks) - 5} more")

    # 2. The planner explains itself (multi-labeled data -> general
    #    algorithm; Theorem 2 bounds).
    print("\nplanner analysis:")
    print(analyze(graph, laundering.automaton).explain())

    # 3. Multiplicities: walks whose label sets admit many accepting
    #    runs are "suspicious in many ways".
    print("\nwalks ranked by number of accepting runs:")
    ranked = sorted(
        laundering.shortest_walks_with_multiplicity(graph, source, sink),
        key=lambda pair: -pair[1],
    )
    for walk, runs in ranked[:3]:
        print(f"  {runs:4d} runs  {walk.describe()}")

    # 4. Multi-target: everything reachable from the mule account by a
    #    short chain of exclusively-suspicious transfers.
    short_chain = rpq("s{1,3}")
    multi = short_chain.to_all_targets(graph, source)
    reached = multi.reached_target_names()
    print(
        f"\naccounts reachable from {source} via 1-3 suspicious hops: "
        f"{len(reached)}"
    )
    for name in sorted(reached)[:10]:
        print(f"  {name} (λ = {multi.lam_for(name)})")


if __name__ == "__main__":
    main()
