#!/usr/bin/env python
"""Query rewriting with the automata toolbox.

A query optimizer rewrites RPQs — simplifying unions, narrowing
wildcards, merging alternatives — and must prove each rewrite safe.
This example exercises the toolbox the library provides for that:

* :func:`repro.equivalent` / ``counterexample`` — is the rewrite the
  same query?  If not, which word separates them?
* :func:`repro.minimize` / ``language_key`` — canonical forms for
  caching per-query artifacts across syntactic variants;
* closure combinators (``union_nfa``, ``difference_nfa``, ...) —
  compose queries algebraically, then run them on the database.

Run:  python examples/query_rewriting.py
"""

from repro import DistinctShortestWalks, equivalent, language_key, minimize, rpq
from repro.automata import counterexample, difference_nfa, is_subset, union_nfa
from repro.workloads.fraud import example9_graph


def main() -> None:
    graph = example9_graph()

    # 1. A rewrite that IS safe: factor the union out of the star.
    original = rpq("(h | s)* s (h | s)*").automaton
    rewritten = rpq("(h* s)+ h*").automaton
    print("rewrite  (h|s)* s (h|s)*  →  (h* s)+ h*")
    print(f"  equivalent: {equivalent(original, rewritten)}")
    assert equivalent(original, rewritten)

    # 1b. A classic non-obvious equivalence: Example 9's query already
    # IS "at least one suspicious transfer" — anchoring the first s
    # after h* loses nothing, because the first s of any word works.
    example9 = rpq("h* s (h | s)*").automaton
    print("\nrewrite  (h|s)* s (h|s)*  →  h* s (h|s)*")
    print(f"  equivalent: {equivalent(original, example9)}")
    assert equivalent(original, example9)

    # 2. A rewrite that is NOT safe — with the shortest witness.
    wrong = rpq("s (h | s)*").automaton  # "Starts suspicious" ≠ original.
    witness = counterexample(original, wrong)
    print("\nrewrite  (h|s)* s (h|s)*  →  s (h|s)*")
    print(f"  equivalent: {equivalent(original, wrong)}")
    print(f"  shortest separating word: {''.join(witness)!r}")
    # The rewrite only narrowed the query; the tool confirms which way:
    print(f"  s (h|s)*  ⊆  (h|s)* s (h|s)*: {is_subset(wrong, original)}")
    assert witness is not None
    assert is_subset(wrong, original)
    assert not is_subset(original, wrong)

    # 3. Canonical keys deduplicate per-query caches.
    variants = ["s | h s", "(h? s)", "h s | s"]
    keys = {language_key(rpq(v).automaton) for v in variants}
    print(f"\n{len(variants)} syntactic variants, {len(keys)} language(s)")
    assert len(keys) == 1
    dfa = minimize(rpq(variants[0]).automaton)
    print(f"  minimal DFA: {dfa.n_states} states")

    # 4. Compose queries algebraically and run the result.
    fraud = rpq("h* s (h | s)*").automaton
    benign = rpq("h+").automaton
    either = union_nfa(fraud, benign)
    engine = DistinctShortestWalks(graph, either, "Alix", "Bob")
    print(f"\nunion query (fraud ∪ all-high-value): λ = {engine.lam}, "
          f"{engine.count()} answer(s)")
    assert engine.lam == 2  # hh now matches via the benign branch.

    # Fraud-only answers = union minus benign.
    only_fraud = difference_nfa(fraud, benign)
    engine2 = DistinctShortestWalks(graph, only_fraud, "Alix", "Bob")
    print(f"difference query (fraud \\ high-value): λ = {engine2.lam}, "
          f"{engine2.count()} answer(s)")
    assert engine2.lam == 3


if __name__ == "__main__":
    main()
