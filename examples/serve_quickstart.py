"""Quickstart for the multi-process serving tier (``repro serve``).

Boots the CLI server on a small graph with 2 workers, then exercises
the full serving story over real TCP:

1. queries and a mutation through one JSONL connection (the mutation
   is a write barrier — the next query sees the new edge);
2. a pipelined burst with a worker SIGKILL'd mid-stream — every
   request is still answered (retried on the respawned pool or failed
   with the structured ``code="worker_crashed"``), and the server
   keeps serving afterwards;
3. graceful SIGTERM drain, exit 0, no shared-memory litter.

CI runs this as the ``serve-smoke`` job; it is Linux-specific (worker
pids come from ``/proc``).  Run it yourself with::

    PYTHONPATH=src python examples/serve_quickstart.py
"""

from __future__ import annotations

import os
import re
import signal
import subprocess
import sys
import tempfile
import time

from repro.serve import ServeClient

GRAPH = """\
Alix -> Dan : h, s
Dan  -> Eve : h
Eve  -> Bob : s
Alix -> Bob : t
"""


def _worker_pids(server_pid: int) -> list:
    """Direct children of the server process (Linux /proc)."""
    path = f"/proc/{server_pid}/task/{server_pid}/children"
    with open(path, encoding="ascii") as fh:
        return [int(pid) for pid in fh.read().split()]


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="serve-quickstart-") as tmp:
        graph_path = os.path.join(tmp, "graph.txt")
        with open(graph_path, "w", encoding="utf-8") as fh:
            fh.write(GRAPH)

        server = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", graph_path,
             "--workers", "2"],
            stdout=subprocess.PIPE,
            stderr=subprocess.DEVNULL,
            text=True,
        )
        try:
            boot = server.stdout.readline()
            match = re.match(r"listening on ([\d.]+):(\d+)", boot)
            assert match, f"unexpected boot line: {boot!r}"
            host, port = match.group(1), int(match.group(2))
            print(f"server up at {host}:{port} (pid {server.pid})")

            with ServeClient(host, port) as client:
                # 1. Query → mutate → read-your-writes query.
                first = client.query("h* s (h | s)*", "Alix", "Bob")
                assert first["status"] == "ok" and first["lam"] == 3, first
                receipt = client.mutate(
                    [{"op": "add_edge", "src": "Bob", "tgt": "Alix",
                      "labels": ["h"]}]
                )
                assert receipt["status"] == "ok", receipt
                assert receipt["result"]["serve_epoch"] == 1, receipt
                after = client.query("h", "Bob", "Alix")
                assert after["status"] == "ok" and after["lam"] == 1, after
                print("query/mutate/read-your-writes: OK")

                # 2. Pipelined burst with a worker killed mid-stream.
                burst = 32
                for i in range(burst):
                    client.send(
                        {"query": "h* s (h | s)*", "source": "Alix",
                         "target": "Bob", "id": i}
                    )
                client.flush()
                victim = _worker_pids(server.pid)[0]
                os.kill(victim, signal.SIGKILL)
                print(f"killed worker {victim} with {burst} requests "
                      "in flight")
                answered = [client.recv() for _ in range(burst)]
                assert len(answered) == burst
                crashed = 0
                for response in answered:
                    if response["status"] == "ok":
                        assert response["lam"] == 3, response
                    else:
                        assert response.get("code") == "worker_crashed", (
                            response
                        )
                        crashed += 1
                print(f"all {burst} in-flight requests answered "
                      f"({burst - crashed} ok, {crashed} worker_crashed)")

                # The pool healed: the same connection keeps working.
                healed = client.query("h* s (h | s)*", "Alix", "Bob")
                assert healed["status"] == "ok" and healed["lam"] == 3
                print("post-crash query on the respawned pool: OK")

            # 3. Graceful drain.
            server.send_signal(signal.SIGTERM)
            assert server.wait(timeout=30) == 0, server.returncode
        finally:
            if server.poll() is None:  # pragma: no cover - failure path
                server.kill()
                server.wait(timeout=10)

        for _ in range(50):  # segment unlink races process exit briefly
            litter = [
                name for name in os.listdir("/dev/shm")
                if name.startswith(f"repro-{server.pid:x}-")
            ] if os.path.isdir("/dev/shm") else []
            if not litter:
                break
            time.sleep(0.1)
        assert not litter, f"shared-memory litter left behind: {litter}"
        print("graceful SIGTERM drain, exit 0, /dev/shm clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
