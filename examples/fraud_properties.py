#!/usr/bin/env python
"""Labels as boolean tests on data values (property-graph workflow).

The paper abstracts real systems' data as multi-labeled graphs and
notes that multiple labels arise "as a theoretical abstraction of
boolean tests on data values" (Section 1); Example 9's discussion makes
the same point — parallel transfers "might have different amounts,
dates, operating banks".

This example runs the abstraction in the forward direction:

1. store the *raw* transfer records of Figure 1 (amounts and compliance
   flags) in a :class:`~repro.graph.property_graph.PropertyGraph`;
2. declare the labels as predicates: ``h`` ⇔ amount ≥ 10 000 and
   ``s`` ⇔ flagged by compliance;
3. project to the multi-labeled database, run Example 9's query; and
4. join every answer walk back to the underlying transfer records.

Run:  python examples/fraud_properties.py
"""

from repro import DistinctShortestWalks
from repro.graph import LabelRule, PropertyGraph, project


def build_transfer_records() -> PropertyGraph:
    """Figure 1's transfers, with the data the labels abstract."""
    pg = PropertyGraph()
    transfers = [
        # (src, tgt, amount, flagged by compliance?)
        ("Alix", "Dan", 25_000, True),
        ("Dan", "Cassie", 900, True),
        ("Alix", "Cassie", 12_000, False),
        ("Dan", "Eve", 48_000, False),
        ("Cassie", "Eve", 31_000, False),
        ("Cassie", "Eve", 700, True),
        ("Eve", "Bob", 64_000, True),
        ("Cassie", "Bob", 15_000, False),
    ]
    for src, tgt, amount, flagged in transfers:
        pg.add_edge(
            src, tgt, rel_type="transfer", amount=amount, flagged=flagged
        )
    return pg


def main() -> None:
    pg = build_transfer_records()
    print(f"raw records: {pg}")

    rules = [
        LabelRule(
            "h", lambda e: e["amount"] >= 10_000,
            description="high value (amount >= 10k)",
        ),
        LabelRule(
            "s", lambda e: e["flagged"],
            description="suspicious (compliance flag)",
        ),
    ]
    projection = project(pg, rules)
    print(f"projection:  {projection}")
    print(f"database:    {projection.graph}\n")

    engine = DistinctShortestWalks(
        projection.graph, "h* s (h | s)*", "Alix", "Bob"
    )
    print(f"λ = {engine.lam}; answers with their underlying records:\n")
    for walk in engine.enumerate():
        print(f"  {walk.describe()}")
        for src, tgt, props in projection.original_edges(walk):
            flag = "FLAGGED" if props["flagged"] else "clean"
            print(f"      {src:>6} -> {tgt:<6}  {props['amount']:>7,} €  {flag}")
        print()

    # The projection kept every edge: all of Figure 1's transfers are
    # high-value or flagged.
    assert not projection.dropped


if __name__ == "__main__":
    main()
