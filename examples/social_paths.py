#!/usr/bin/env python
"""Shortest connection paths in a social network.

A preferential-attachment social graph with ``knows`` / ``follows`` /
``mentions`` edges (some edges carry several labels at once — the
multi-labeled data model the paper is built for).  Shows:

* "degrees of separation" with the wildcard query ``. .``-style;
* asymmetric relations (``follows+ mentions``);
* why *distinct walk* semantics matters: parallel interactions between
  the same two people are different answers;
* streaming consumption: take the first k answers and stop — the
  enumeration is lazy, that is the whole point of bounded delay.

Run:  python examples/social_paths.py
"""

from repro import DistinctShortestWalks, rpq
from repro.workloads.social import social_network


def main() -> None:
    graph = social_network(n_people=400, avg_degree=8, seed=7)
    print(f"social graph: {graph}")
    alice, bob = "p3", "p250"

    # 1. Degrees of separation, any relationship at all.
    separation = rpq(".{1,6}")
    lam = separation.lam(graph, alice, bob)
    print(f"\n{alice} and {bob} are {lam} hops apart (any relation)")

    # 2. Influence chains: follows... then a mention.
    influence = rpq("follows+ mentions")
    engine = influence.engine(graph, alice, bob)
    if engine.is_empty:
        print(f"no follows-chain from {alice} ends with a mention of {bob}")
    else:
        print(
            f"shortest follows→mention chains ({engine.lam} hops): "
            f"{engine.count()}"
        )

    # 3. Friend-of-friend walks — stream just the first few.
    fof = rpq("knows knows")
    engine = DistinctShortestWalks(graph, fof.automaton, alice, "p10")
    print(f"\nfirst friend-of-friend walks {alice} → p10:")
    for walk in engine.first(3):
        print(f"  {walk.describe()}")

    # 4. Distinctness on multi-edges: between a popular pair there may
    #    be both a follows-edge and a follows+mentions edge; walks
    #    through either are distinct answers even though the vertex
    #    sequences coincide.
    mixed = rpq("(knows | follows | mentions){2}")
    walks = list(mixed.shortest_walks(graph, alice, "p10"))
    by_vertices = {}
    for walk in walks:
        by_vertices.setdefault(tuple(walk.vertex_names()), []).append(walk)
    duplicated_routes = {
        route: ws for route, ws in by_vertices.items() if len(ws) > 1
    }
    print(
        f"\n2-hop walks {alice} → p10: {len(walks)} distinct walks over "
        f"{len(by_vertices)} vertex routes"
    )
    for route, ws in list(duplicated_routes.items())[:2]:
        print(f"  route {' -> '.join(map(str, route))} has {len(ws)} walks:")
        for walk in ws:
            print(f"    {walk.describe()}")


if __name__ == "__main__":
    main()
