#!/usr/bin/env python
"""Quickstart: the paper's Example 9, end to end — via ``repro.api``.

Builds the Figure 1 database (people connected by bank transfers,
labels ``h`` = high value and ``s`` = suspicious), opens a cached
:class:`~repro.api.Database` over it, and runs the query
``h* s (h | s)*`` from Alix through the façade's orthogonal axes:
the plain pair shape (with Section 5.3 multiplicities), the
``to_all`` fan-out, and a paginated resume through a cursor.

Run:  python examples/quickstart.py
"""

from repro import Database, GraphBuilder


def build_database() -> Database:
    """Figure 1: 5 people, 8 multi-labeled transfers."""
    builder = GraphBuilder()
    builder.add_edge("Alix", "Cassie", ["h"])           # e1
    builder.add_edge("Alix", "Dan", ["h", "s"])         # e2
    builder.add_edge("Dan", "Cassie", ["s"])            # e3
    builder.add_edge("Dan", "Eve", ["h"])               # e4
    builder.add_edge("Cassie", "Eve", ["h"])            # e5
    builder.add_edge("Cassie", "Eve", ["s"])            # e6
    builder.add_edge("Cassie", "Bob", ["h"])            # e7
    builder.add_edge("Eve", "Bob", ["h", "s"])          # e8
    return Database(builder.build())


def main() -> None:
    db = build_database()

    # "Sequences of transfers from Alix to Bob that contain only high
    # value or suspicious transfers, with at least one suspicious."
    expression = "h* s (h | s)*"
    print(f"query: {expression}\n")

    pair = db.query(expression).from_("Alix").to("Bob")
    result = pair.with_multiplicity().run()
    print(f"shortest matching walk length λ = {result.lam}")
    print("distinct shortest walks (each exactly once):\n")
    for row in result:
        print(f"  {row.walk.describe()}")
        print(f"      accepting runs: {row.multiplicity}")

    # The shortest Alix→Bob walk overall has length 2 — but hh does not
    # match the query, which is why λ = 3 above.
    assert pair.run().lam == 3
    print("\nNote: the unconstrained shortest walk (Alix-Cassie-Bob) has")
    print("length 2 but label word 'hh', which the query rejects.")

    # One preprocessing, every reachable target (and the repeat pair
    # query above was already a cache hit — see .stats()).
    print("\nreachable from Alix (shared preprocessing):")
    for name, lam in db.query(expression).from_("Alix").to_all().targets():
        print(f"  {name}: λ = {lam}")

    # Pagination: a 2-walk page, then resume through the cursor.
    page = pair.limit(2).run()
    rows = page.all()
    rest = pair.cursor(page.next_cursor).run().all()
    print(f"\npaged: {len(rows)} + {len(rest)} walks "
          f"(cursor resume, O(λ) seek)")

    stats = pair.stats()
    print(f"cache hits on this repeat: {stats['cached']}")


if __name__ == "__main__":
    main()
