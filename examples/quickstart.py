#!/usr/bin/env python
"""Quickstart: the paper's Example 9, end to end.

Builds the Figure 1 database (people connected by bank transfers,
labels ``h`` = high value and ``s`` = suspicious), runs the query
``h* s (h | s)*`` from Alix to Bob, and prints every distinct shortest
matching walk exactly once — including the multiplicity (number of
accepting runs) the Section 5.3 extension provides.

Run:  python examples/quickstart.py
"""

from repro import GraphBuilder, rpq


def build_database():
    """Figure 1: 5 people, 8 multi-labeled transfers."""
    builder = GraphBuilder()
    builder.add_edge("Alix", "Cassie", ["h"])           # e1
    builder.add_edge("Alix", "Dan", ["h", "s"])         # e2
    builder.add_edge("Dan", "Cassie", ["s"])            # e3
    builder.add_edge("Dan", "Eve", ["h"])               # e4
    builder.add_edge("Cassie", "Eve", ["h"])            # e5
    builder.add_edge("Cassie", "Eve", ["s"])            # e6
    builder.add_edge("Cassie", "Bob", ["h"])            # e7
    builder.add_edge("Eve", "Bob", ["h", "s"])          # e8
    return builder.build()


def main() -> None:
    graph = build_database()
    print(f"database: {graph}")

    # "Sequences of transfers from Alix to Bob that contain only high
    # value or suspicious transfers, with at least one suspicious."
    query = rpq("h* s (h | s)*")
    print(f"query:    {query.expression}\n")

    engine = query.engine(graph, "Alix", "Bob")
    print(f"shortest matching walk length λ = {engine.lam}")
    print("distinct shortest walks (each exactly once):\n")
    for walk, multiplicity in engine.enumerate_with_multiplicity():
        print(f"  {walk.describe()}")
        print(f"      accepting runs: {multiplicity}")

    # The shortest Alix→Bob walk overall has length 2 — but hh does not
    # match the query, which is why λ = 3 above.
    hops = query.lam(graph, "Alix", "Bob")
    assert hops == 3
    print("\nNote: the unconstrained shortest walk (Alix-Cassie-Bob) has")
    print("length 2 but label word 'hh', which the query rejects.")


if __name__ == "__main__":
    main()
