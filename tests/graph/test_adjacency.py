"""Unit tests for the label-indexed CSR adjacency layer."""

import pytest
from hypothesis import given, settings

from repro.exceptions import UnknownLabelError, UnknownVertexError
from repro.graph.builder import GraphBuilder

from tests.conftest import small_graphs


def build(edges, vertices=()):
    b = GraphBuilder()
    b.add_vertices(vertices)
    for src, tgt, labels in edges:
        b.add_edge(src, tgt, labels)
    return b.build()


class TestOutByLabel:
    def test_multi_labeled_edge_appears_in_every_bucket(self):
        g = build([("u", "v", ["a", "b"])])
        u = g.vertex_id("u")
        a, bl = g.label_id("a"), g.label_id("b")
        assert g.out_by_label(u, a) == (0,)
        assert g.out_by_label(u, bl) == (0,)

    def test_parallel_edges_keep_edge_id_order(self):
        g = build(
            [
                ("u", "v", ["a"]),
                ("u", "v", ["b"]),
                ("u", "v", ["a"]),
                ("u", "w", ["a"]),
            ]
        )
        u = g.vertex_id("u")
        a = g.label_id("a")
        assert g.out_by_label(u, a) == (0, 2, 3)
        assert g.out_by_label(u, g.label_id("b")) == (1,)

    def test_unused_label_is_empty_everywhere(self):
        # "c" enters the alphabet through w->u only; u and v have no
        # out-edge carrying it.
        g = build([("u", "v", ["a"]), ("w", "u", ["c"])])
        c = g.label_id("c")
        assert g.out_by_label(g.vertex_id("u"), c) == ()
        assert g.out_by_label(g.vertex_id("v"), c) == ()
        assert g.out_by_label(g.vertex_id("w"), c) == (1,)

    def test_isolated_vertex(self):
        g = build([("u", "v", ["a"])], vertices=["lonely"])
        lone = g.vertex_id("lonely")
        assert g.out_by_label(lone, g.label_id("a")) == ()
        assert g.in_by_label(lone, g.label_id("a")) == ()
        assert g.out_labels(lone) == ()
        assert g.in_labels(lone) == ()

    def test_self_loop(self):
        g = build([("u", "u", ["a"])])
        u = g.vertex_id("u")
        a = g.label_id("a")
        assert g.out_by_label(u, a) == (0,)
        assert g.in_by_label(u, a) == (0,)

    def test_unknown_vertex_raises(self):
        g = build([("u", "v", ["a"])])
        with pytest.raises(UnknownVertexError):
            g.out_by_label(99, 0)
        with pytest.raises(UnknownVertexError):
            g.in_by_label(-1, 0)
        with pytest.raises(UnknownVertexError):
            g.out_labels(99)

    def test_unknown_label_raises(self):
        g = build([("u", "v", ["a"])])
        with pytest.raises(UnknownLabelError):
            g.out_by_label(0, 5)
        with pytest.raises(UnknownLabelError):
            g.in_by_label(0, -1)


class TestInByLabel:
    def test_in_bucket_matches_in_edges(self):
        g = build(
            [
                ("u", "w", ["a"]),
                ("v", "w", ["a", "b"]),
                ("w", "w", ["b"]),
            ]
        )
        w = g.vertex_id("w")
        assert g.in_by_label(w, g.label_id("a")) == (0, 1)
        assert g.in_by_label(w, g.label_id("b")) == (1, 2)


class TestLabelSummaries:
    def test_out_and_in_labels_sorted_distinct(self):
        g = build(
            [
                ("u", "v", ["b"]),
                ("u", "v", ["a", "b"]),
                ("v", "u", ["c"]),
            ]
        )
        u, v = g.vertex_id("u"), g.vertex_id("v")
        a, bl, c = (g.label_id(x) for x in "abc")
        assert g.out_labels(u) == tuple(sorted((a, bl)))
        assert g.in_labels(v) == tuple(sorted((a, bl)))
        assert g.out_labels(v) == (c,)
        assert g.in_labels(u) == (c,)


class TestCsrConsistency:
    """The CSR view must be a re-bucketing of Out/In/Lbl exactly."""

    @given(small_graphs(max_vertices=8, max_edges=20))
    @settings(max_examples=50, deadline=None)
    def test_out_csr_matches_scan(self, g):
        for v in g.vertices():
            for a in range(g.label_count):
                expected = tuple(
                    e for e in g.out_edges(v) if a in g.labels(e)
                )
                assert g.out_by_label(v, a) == expected

    @given(small_graphs(max_vertices=8, max_edges=20))
    @settings(max_examples=50, deadline=None)
    def test_in_csr_matches_scan(self, g):
        for v in g.vertices():
            for a in range(g.label_count):
                expected = tuple(
                    e for e in g.in_edges(v) if a in g.labels(e)
                )
                assert g.in_by_label(v, a) == expected

    @given(small_graphs(max_vertices=8, max_edges=20))
    @settings(max_examples=50, deadline=None)
    def test_payload_size_is_label_occurrences(self, g):
        for csr in (g.out_csr, g.in_csr):
            indptr, payload = csr
            assert len(payload) == g.total_label_occurrences
            assert indptr[0] == 0
            assert indptr[-1] == len(payload)
            assert all(
                indptr[i] <= indptr[i + 1] for i in range(len(indptr) - 1)
            )

    def test_csr_is_cached(self):
        g = build([("u", "v", ["a"])])
        assert g.out_csr is g.out_csr
        assert g.in_csr is g.in_csr
        assert g.out_labels_array is g.out_labels_array


class TestCostArrayCache:
    def test_unit_costs_memoized(self):
        g = build([("u", "v", ["a"]), ("v", "u", ["a"])])
        first = g.cost_array
        assert list(first) == [1, 1]
        assert g.cost_array is first

    def test_explicit_costs_returned_directly(self):
        b = GraphBuilder()
        b.add_edge("u", "v", ["a"], cost=7)
        g = b.build()
        assert list(g.cost_array) == [7]
        assert g.cost_array is g.cost_array
