"""Unit tests for graph persistence (JSON and edge-list formats)."""

import pytest

from repro.exceptions import GraphError
from repro.graph import (
    GraphBuilder,
    graph_from_dict,
    graph_to_dict,
    load_edge_list,
    load_json,
    save_edge_list,
    save_json,
    validate_graph,
)
from repro.workloads.fraud import example9_graph


def _assert_graphs_equal(g1, g2):
    assert g1.vertex_count == g2.vertex_count
    assert g1.edge_count == g2.edge_count
    for e in g1.edges():
        assert str(g1.vertex_name(g1.src(e))) == str(g2.vertex_name(g2.src(e)))
        assert str(g1.vertex_name(g1.tgt(e))) == str(g2.vertex_name(g2.tgt(e)))
        assert g1.label_names_of(e) == g2.label_names_of(e)
        assert g1.tgt_idx(e) == g2.tgt_idx(e)
        assert g1.cost(e) == g2.cost(e)


class TestDictRoundtrip:
    def test_example9(self):
        g = example9_graph()
        clone = graph_from_dict(graph_to_dict(g))
        _assert_graphs_equal(g, clone)
        validate_graph(clone)

    def test_costs_preserved(self):
        b = GraphBuilder()
        b.add_edge("x", "y", ["a"], cost=5)
        g = b.build()
        clone = graph_from_dict(graph_to_dict(g))
        assert clone.has_costs
        assert clone.cost(0) == 5

    def test_bad_format_rejected(self):
        with pytest.raises(GraphError):
            graph_from_dict({"format": "something-else"})

    def test_empty_graph(self):
        clone = graph_from_dict(graph_to_dict(GraphBuilder().build()))
        assert clone.vertex_count == 0


class TestJsonFiles:
    def test_roundtrip(self, tmp_path):
        g = example9_graph()
        path = tmp_path / "g.json"
        save_json(g, path)
        _assert_graphs_equal(g, load_json(path))


class TestEdgeList:
    def test_roundtrip(self, tmp_path):
        g = example9_graph()
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        _assert_graphs_equal(g, load_edge_list(path))

    def test_parse_with_comments_and_blanks(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text(
            "# header comment\n"
            "\n"
            "Alix -> Bob : h, s   # inline comment\n"
            "Bob -> Alix : h\n"
        )
        g = load_edge_list(path)
        assert g.vertex_count == 2
        assert g.edge_count == 2
        assert set(g.label_names_of(0)) == {"h", "s"}

    def test_parse_with_costs(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a -> b : x @ 42\n")
        g = load_edge_list(path)
        assert g.has_costs
        assert g.cost(0) == 42

    def test_bad_line_raises_with_lineno(self, tmp_path):
        path = tmp_path / "g.txt"
        path.write_text("a -> b : x\nthis is nonsense\n")
        with pytest.raises(GraphError, match="line 2"):
            load_edge_list(path)

    def test_costs_roundtrip(self, tmp_path):
        b = GraphBuilder()
        b.add_edge("x", "y", ["a"], cost=3)
        b.add_edge("y", "x", ["b", "a"], cost=9)
        path = tmp_path / "g.txt"
        save_edge_list(b.build(), path)
        g = load_edge_list(path)
        assert g.cost(0) == 3 and g.cost(1) == 9


class TestPropertyGraphJson:
    def _sample(self):
        from repro.graph.property_graph import PropertyGraph

        pg = PropertyGraph()
        pg.add_vertex("Alix", country="FR")
        pg.add_edge(
            "Alix", "Dan", rel_type="transfer", cost=3,
            amount=25_000, flagged=True,
        )
        pg.add_edge("Dan", "Bob", amount=900, flagged=False)
        return pg

    def test_dict_round_trip(self):
        from repro.graph.io import (
            property_graph_from_dict,
            property_graph_to_dict,
        )

        pg = self._sample()
        clone = property_graph_from_dict(property_graph_to_dict(pg))
        assert clone.vertex_count == pg.vertex_count
        assert clone.edge_count == pg.edge_count
        assert clone.vertex_properties("Alix") == {"country": "FR"}
        assert clone.edge(0) == pg.edge(0)
        assert clone.edge(1) == pg.edge(1)

    def test_file_round_trip(self, tmp_path):
        from repro.graph.io import (
            load_property_graph_json,
            save_property_graph_json,
        )

        pg = self._sample()
        path = tmp_path / "pg.json"
        save_property_graph_json(pg, path)
        clone = load_property_graph_json(path)
        assert clone.edge(0) == pg.edge(0)

    def test_projection_survives_round_trip(self, tmp_path):
        from repro.graph.io import (
            load_property_graph_json,
            save_property_graph_json,
        )
        from repro.graph.property_graph import project
        from repro.workloads.fraud import (
            example9_property_graph,
            example9_rules,
        )

        path = tmp_path / "fraud.json"
        save_property_graph_json(example9_property_graph(), path)
        clone = load_property_graph_json(path)
        original = project(example9_property_graph(), example9_rules())
        reloaded = project(clone, example9_rules())
        assert original.graph.edge_count == reloaded.graph.edge_count
        for e in range(original.graph.edge_count):
            assert original.graph.label_names_of(e) == (
                reloaded.graph.label_names_of(e)
            )

    def test_bad_format_rejected(self):
        import pytest

        from repro.exceptions import GraphError
        from repro.graph.io import property_graph_from_dict

        with pytest.raises(GraphError, match="format"):
            property_graph_from_dict({"format": "something-else"})
