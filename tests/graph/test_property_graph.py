"""Unit and property tests for the property-graph substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import DistinctShortestWalks
from repro.exceptions import GraphError
from repro.graph.property_graph import (
    LabelRule,
    PropertyGraph,
    project,
    type_is,
)
from repro.workloads.fraud import (
    example9_graph,
    example9_property_graph,
    example9_query,
    example9_rules,
)


class TestPropertyGraph:
    def test_vertices_and_properties(self):
        pg = PropertyGraph()
        pg.add_vertex("Alix", country="FR")
        pg.add_vertex("Alix", risk="low")  # Merge, not replace.
        assert pg.vertex_properties("Alix") == {"country": "FR", "risk": "low"}
        assert pg.vertex_count == 1

    def test_edges_with_type_and_cost(self):
        pg = PropertyGraph()
        eid = pg.add_edge("a", "b", rel_type="wire", cost=3, amount=10)
        src, tgt, props = pg.edge(eid)
        assert (src, tgt) == ("a", "b")
        assert props == {"type": "wire", "cost": 3, "amount": 10}

    def test_unknown_lookups_raise(self):
        pg = PropertyGraph()
        with pytest.raises(GraphError):
            pg.vertex_properties("ghost")
        with pytest.raises(GraphError):
            pg.edge(0)

    def test_multi_edges_kept(self):
        pg = PropertyGraph()
        pg.add_edge("a", "b", amount=1)
        pg.add_edge("a", "b", amount=2)
        assert pg.edge_count == 2


class TestProjection:
    def _small(self):
        pg = PropertyGraph()
        pg.add_edge("a", "b", amount=50, flagged=False)
        pg.add_edge("b", "c", amount=5, flagged=True)
        pg.add_edge("a", "c", amount=5, flagged=False)  # No labels.
        return pg

    def _rules(self):
        return [
            LabelRule("h", lambda e: e["amount"] >= 10),
            LabelRule("s", lambda e: e["flagged"]),
        ]

    def test_labels_follow_predicates(self):
        projection = project(self._small(), self._rules())
        graph = projection.graph
        assert graph.edge_count == 2  # The unlabeled edge is dropped.
        assert graph.label_names_of(0) == ("h",)
        assert graph.label_names_of(1) == ("s",)
        assert projection.dropped == (2,)

    def test_error_mode(self):
        with pytest.raises(GraphError, match="satisfies no rule"):
            project(self._small(), self._rules(), on_unlabeled="error")
        with pytest.raises(GraphError, match="on_unlabeled"):
            project(self._small(), self._rules(), on_unlabeled="ignore")

    def test_duplicate_rule_labels_rejected(self):
        rules = [
            LabelRule("h", lambda e: True),
            LabelRule("h", lambda e: False),
        ]
        with pytest.raises(GraphError, match="duplicate"):
            project(self._small(), rules)

    def test_edge_id_mapping(self):
        projection = project(self._small(), self._rules())
        # Projected edge 1 is the original edge 1 (b -> c).
        src, tgt, props = projection.source.edge(
            projection.original_edge_ids[1]
        )
        assert (src, tgt) == ("b", "c")
        assert props["flagged"] is True

    def test_costs_forwarded(self):
        pg = PropertyGraph()
        pg.add_edge("a", "b", cost=7, amount=100)
        projection = project(pg, [LabelRule("h", lambda e: True)])
        assert projection.graph.cost(0) == 7
        no_costs = project(
            pg, [LabelRule("h", lambda e: True)], include_costs=False
        )
        assert no_costs.graph.cost(0) == 1

    def test_type_is_predicate(self):
        pg = PropertyGraph()
        pg.add_edge("a", "b", rel_type="wire")
        pg.add_edge("a", "b", rel_type="cash")
        projection = project(pg, [LabelRule("w", type_is("wire"))])
        assert projection.graph.edge_count == 1
        assert projection.original_edge_ids == (0,)

    def test_isolated_vertices_preserved(self):
        pg = PropertyGraph()
        pg.add_vertex("lonely")
        pg.add_edge("a", "b", amount=100, flagged=False)
        projection = project(pg, self._rules())
        assert projection.graph.has_vertex("lonely")


class TestExample9RoundTrip:
    def test_projection_reproduces_figure1(self):
        """Projecting the raw transfers recovers Figure 1's database."""
        reference = example9_graph()
        projection = project(example9_property_graph(), example9_rules())
        graph = projection.graph
        assert graph.edge_count == reference.edge_count == 8
        for e in range(8):
            ref_names = (
                reference.vertex_name(reference.src(e)),
                reference.vertex_name(reference.tgt(e)),
                reference.label_names_of(e),
            )
            got_names = (
                graph.vertex_name(graph.src(e)),
                graph.vertex_name(graph.tgt(e)),
                graph.label_names_of(e),
            )
            assert got_names == ref_names

    def test_example9_answers_over_projection(self):
        projection = project(example9_property_graph(), example9_rules())
        engine = DistinctShortestWalks(
            projection.graph, example9_query, "Alix", "Bob"
        )
        walks = list(engine.enumerate())
        assert len(walks) == 4
        assert engine.lam == 3
        # Join answers back to the raw records: every walk's transfers
        # must be h-or-s with at least one flagged one, by construction.
        for walk in walks:
            records = projection.original_edges(walk)
            assert any(props["flagged"] for _, _, props in records)
            for _, _, props in records:
                assert props["amount"] >= 10_000 or props["flagged"]


class TestProperties:
    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),  # src
                st.integers(min_value=0, max_value=3),  # tgt
                st.integers(min_value=0, max_value=100),  # amount
                st.booleans(),  # flagged
            ),
            max_size=20,
        ),
        st.integers(min_value=0, max_value=100),  # threshold
    )
    @settings(max_examples=60, deadline=None)
    def test_projection_matches_predicates(self, edges, threshold):
        pg = PropertyGraph()
        for src, tgt, amount, flagged in edges:
            pg.add_edge(f"v{src}", f"v{tgt}", amount=amount, flagged=flagged)
        rules = [
            LabelRule("h", lambda e: e["amount"] >= threshold),
            LabelRule("s", lambda e: e["flagged"]),
        ]
        projection = project(pg, rules)
        graph = projection.graph
        # Every projected edge's labels match a re-evaluation.
        for e in range(graph.edge_count):
            _, _, props = pg.edge(projection.original_edge_ids[e])
            expected = set()
            if props["amount"] >= threshold:
                expected.add("h")
            if props["flagged"]:
                expected.add("s")
            assert set(graph.label_names_of(e)) == expected
        # Kept + dropped partitions the original edges.
        assert len(projection.original_edge_ids) + len(
            projection.dropped
        ) == pg.edge_count
        for eid in projection.dropped:
            _, _, props = pg.edge(eid)
            assert props["amount"] < threshold and not props["flagged"]
