"""Unit tests for the graph database and its O(1) accessor contract."""

import pytest

from repro.exceptions import (
    UnknownEdgeError,
    UnknownLabelError,
    UnknownVertexError,
)
from repro.graph import GraphBuilder
from repro.workloads.fraud import EXAMPLE9_EDGE_IDS, example9_graph


@pytest.fixture
def tiny():
    b = GraphBuilder()
    b.add_edge("x", "y", ["a", "b"])
    b.add_edge("y", "z", ["b"])
    b.add_edge("x", "z", ["a"])
    b.add_edge("y", "z", ["a", "b"])  # Multi-edge x2 between y and z.
    return b.build()


class TestCounts:
    def test_vertex_edge_label_counts(self, tiny):
        assert tiny.vertex_count == 3
        assert tiny.edge_count == 4
        assert tiny.label_count == 2

    def test_size_formula(self, tiny):
        # |D| = |V| + |E| + Σ|Lbl(e)| = 3 + 4 + (2+1+1+2).
        assert tiny.size() == 3 + 4 + 6
        assert tiny.total_label_occurrences == 6

    def test_stats_keys(self, tiny):
        stats = tiny.stats()
        assert stats["vertices"] == 3
        assert stats["edges"] == 4
        assert stats["size"] == tiny.size()


class TestNames:
    def test_vertex_roundtrip(self, tiny):
        for v in tiny.vertices():
            assert tiny.vertex_id(tiny.vertex_name(v)) == v

    def test_label_roundtrip(self, tiny):
        for a in range(tiny.label_count):
            assert tiny.label_id(tiny.label_name(a)) == a

    def test_unknown_vertex(self, tiny):
        with pytest.raises(UnknownVertexError):
            tiny.vertex_id("nope")
        with pytest.raises(UnknownVertexError):
            tiny.vertex_name(99)

    def test_unknown_label(self, tiny):
        with pytest.raises(UnknownLabelError):
            tiny.label_id("nope")
        with pytest.raises(UnknownLabelError):
            tiny.label_name(99)

    def test_resolve_vertex_accepts_names_and_ids(self, tiny):
        assert tiny.resolve_vertex("x") == tiny.vertex_id("x")
        assert tiny.resolve_vertex(1) == 1
        with pytest.raises(UnknownVertexError):
            tiny.resolve_vertex("missing")
        with pytest.raises(UnknownVertexError):
            tiny.resolve_vertex(77)

    def test_resolve_vertex_prefers_names(self):
        b = GraphBuilder()
        b.add_vertex(1)
        b.add_vertex(0)
        g = b.build()
        # Vertex *named* 1 has id 0; names win over raw ids.
        assert g.resolve_vertex(1) == 0


class TestAdjacency:
    def test_out_edges_partition(self, tiny):
        all_edges = sorted(
            e for v in tiny.vertices() for e in tiny.out_edges(v)
        )
        assert all_edges == list(tiny.edges())

    def test_in_edges_partition(self, tiny):
        all_edges = sorted(
            e for v in tiny.vertices() for e in tiny.in_edges(v)
        )
        assert all_edges == list(tiny.edges())

    def test_degrees(self, tiny):
        x = tiny.vertex_id("x")
        z = tiny.vertex_id("z")
        assert tiny.out_degree(x) == 2
        assert tiny.in_degree(z) == 3
        assert tiny.max_in_degree() == 3

    def test_tgt_idx_contract(self, tiny):
        """TgtIdx(e) is the position of e in In(Tgt(e)) — Section 2.2."""
        for e in tiny.edges():
            assert tiny.in_edges(tiny.tgt(e))[tiny.tgt_idx(e)] == e

    def test_parallel_edges(self, tiny):
        y, z = tiny.vertex_id("y"), tiny.vertex_id("z")
        assert len(tiny.parallel_edges(y, z)) == 2


class TestEdges:
    def test_labels_sorted_and_unique(self, tiny):
        for e in tiny.edges():
            labels = tiny.labels(e)
            assert list(labels) == sorted(set(labels))

    def test_label_names_of(self, tiny):
        e = tiny.parallel_edges(tiny.vertex_id("x"), tiny.vertex_id("y"))[0]
        assert set(tiny.label_names_of(e)) == {"a", "b"}

    def test_unknown_edge(self, tiny):
        with pytest.raises(UnknownEdgeError):
            tiny.src(99)
        with pytest.raises(UnknownEdgeError):
            tiny.labels(-1)

    def test_default_costs_are_unit(self, tiny):
        assert not tiny.has_costs
        assert all(tiny.cost(e) == 1 for e in tiny.edges())
        assert list(tiny.cost_array) == [1, 1, 1, 1]

    def test_edge_str(self, tiny):
        text = tiny.edge_str(0)
        assert "x" in text and "y" in text and "a" in text


class TestFigure1:
    """The paper's example database has the exact shape of Figure 1."""

    def test_shape(self):
        g = example9_graph()
        assert g.vertex_count == 5
        assert g.edge_count == 8
        assert set(g.alphabet) == {"h", "s"}

    def test_figure3_tgt_idx(self):
        """TgtIdx values match the numbers printed in Figure 3."""
        g = example9_graph()
        expected = {
            "e1": 1, "e2": 0, "e3": 0, "e4": 0,
            "e5": 1, "e6": 2, "e7": 1, "e8": 0,
        }
        for name, ti in expected.items():
            assert g.tgt_idx(EXAMPLE9_EDGE_IDS[name]) == ti, name

    def test_labels_match_figure1(self):
        g = example9_graph()
        expected = {
            "e1": {"h"}, "e2": {"h", "s"}, "e3": {"s"}, "e4": {"h"},
            "e5": {"h"}, "e6": {"s"}, "e7": {"h"}, "e8": {"h", "s"},
        }
        for name, labels in expected.items():
            e = EXAMPLE9_EDGE_IDS[name]
            assert set(g.label_names_of(e)) == labels, name
