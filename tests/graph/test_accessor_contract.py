"""The shared accessor contract, parametrized over Graph and LiveGraph.

The entire enumeration pipeline (``annotate`` → ``trim`` →
``enumerate``/``memoryless`` → counting DP) consumes a graph only
through the paper's accessor contract plus the label-indexed CSR
views.  :class:`~repro.live.LiveGraph` promises to honour that
contract bit-for-bit so the pipeline runs on it unmodified; this
module is the guard that keeps the two implementations aligned —
every invariant is asserted against an immutable :class:`Graph`, a
fresh overlay, a mutated overlay (adds + tombstones + label edits +
new vertices/labels) and a just-compacted overlay.

Two layers of checking:

* **internal consistency** — the merged point reads
  (``out_by_label``, ``out_edges`` …), the flat hot-loop views
  (``out_csr``, ``tgt_idx_array`` …) and the per-edge accessors must
  all describe the same graph;
* **semantic equivalence** — a ``LiveGraph`` must describe the same
  labeled multigraph as the immutable ``Graph`` rebuilt from its live
  edge list (modulo edge-id renumbering).
"""

from __future__ import annotations

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.database import Graph
from repro.live import LiveGraph


def _seed_graph() -> Graph:
    b = GraphBuilder()
    b.add_edge("A", "B", ["h"])
    b.add_edge("B", "C", ["h", "s"])
    b.add_edge("C", "A", ["s"])
    b.add_edge("A", "C", ["x"])
    b.add_edge("B", "C", ["h"])  # Parallel edge.
    b.add_edge("C", "C", ["x"])  # Self-loop.
    b.add_vertex("isolated")
    return b.build()


def _mutated_live() -> LiveGraph:
    live = LiveGraph(_seed_graph())
    live.add_edge("C", "D", ["h", "ferry"])  # New vertex + new label.
    live.add_edge("D", "A", ["s"])
    live.remove_edge(1)  # Tombstone a base edge.
    live.remove_edge(live.add_edge("A", "D", ["x"]))  # Overlay tombstone.
    live.set_edge_labels(3, ["h", "night"])  # Base label edit, new label.
    live.set_edge_labels(6, ["ferry"])  # Overlay label edit.
    live.add_vertex("late_isolated")
    return live


def _compacted_live() -> LiveGraph:
    live = _mutated_live()
    live.compact()
    live.add_edge("D", "B", ["h"])  # Keep an overlay on the new base.
    return live


FACTORIES = {
    "immutable": _seed_graph,
    "live_fresh": lambda: LiveGraph(_seed_graph()),
    "live_mutated": _mutated_live,
    "live_compacted": _compacted_live,
}


def _live_ids(graph):
    if isinstance(graph, LiveGraph):
        return list(graph.live_edges())
    return list(graph.edges())


@pytest.fixture(params=sorted(FACTORIES), name="graph")
def _graph(request):
    return FACTORIES[request.param]()


class TestSharedContract:
    """Invariants every accessor-compatible graph must satisfy."""

    def test_out_by_label_matches_csr_buckets(self, graph) -> None:
        indptr, payload = graph.out_csr
        n = graph.vertex_count
        for a in range(graph.label_count):
            for v in graph.vertices():
                b = a * n + v
                bucket = tuple(payload[indptr[b]:indptr[b + 1]])
                assert bucket == graph.out_by_label(v, a)

    def test_in_by_label_matches_csr_buckets(self, graph) -> None:
        indptr, payload = graph.in_csr
        n = graph.vertex_count
        for a in range(graph.label_count):
            for v in graph.vertices():
                b = a * n + v
                bucket = tuple(payload[indptr[b]:indptr[b + 1]])
                assert bucket == graph.in_by_label(v, a)

    def test_buckets_sorted_and_labeled(self, graph) -> None:
        for a in range(graph.label_count):
            for v in graph.vertices():
                for bucket, endpoint in (
                    (graph.out_by_label(v, a), graph.src),
                    (graph.in_by_label(v, a), graph.tgt),
                ):
                    assert list(bucket) == sorted(bucket)
                    for e in bucket:
                        assert endpoint(e) == v
                        assert a in graph.labels(e)

    def test_out_edges_union_of_buckets(self, graph) -> None:
        for v in graph.vertices():
            from_buckets = {
                e
                for a in range(graph.label_count)
                for e in graph.out_by_label(v, a)
            }
            assert set(graph.out_edges(v)) == from_buckets
            assert graph.out_degree(v) == len(graph.out_edges(v))

    def test_out_label_summaries(self, graph) -> None:
        for v in graph.vertices():
            expected = tuple(
                sorted(
                    {a for e in graph.out_edges(v) for a in graph.labels(e)}
                )
            )
            assert graph.out_labels(v) == expected
            assert graph.out_labels_array[v] == expected

    def test_in_label_summaries(self, graph) -> None:
        for v in graph.vertices():
            expected = tuple(
                sorted(
                    {
                        a
                        for a_ in range(graph.label_count)
                        for e in graph.in_by_label(v, a_)
                        for a in graph.labels(e)
                    }
                )
            )
            assert graph.in_labels(v) == expected
            assert graph.in_labels_array[v] == expected

    def test_tgt_idx_positions(self, graph) -> None:
        """``In(Tgt(e))[TgtIdx(e)] == e`` for every live edge."""
        for e in _live_ids(graph):
            v = graph.tgt(e)
            in_list = graph.in_edges(v)
            ti = graph.tgt_idx(e)
            assert in_list[ti] == e
            assert graph.in_array[v][ti] == e
            assert graph.tgt_idx_array[e] == ti
            assert ti < graph.in_degree(v)

    def test_flat_edge_arrays_agree_with_accessors(self, graph) -> None:
        for e in _live_ids(graph):
            assert graph.src_array[e] == graph.src(e)
            assert graph.tgt_array[e] == graph.tgt(e)
            assert graph.label_array[e] == graph.labels(e)
            assert graph.cost_array[e] == graph.cost(e)
            assert graph.labels(e) == tuple(sorted(set(graph.labels(e))))

    def test_out_array_agrees_with_out_edges(self, graph) -> None:
        for v in graph.vertices():
            assert graph.out_array[v] == graph.out_edges(v)
            for e in graph.out_edges(v):
                assert graph.src(e) == v

    def test_name_interning_round_trips(self, graph) -> None:
        for v in graph.vertices():
            name = graph.vertex_name(v)
            assert graph.vertex_id(name) == v
            assert graph.resolve_vertex(name) == v
            assert graph.has_vertex(name)
        for a in range(graph.label_count):
            name = graph.label_name(a)
            assert graph.label_id(name) == a
            assert graph.has_label(name)
        assert len(graph.alphabet) == graph.label_count

    def test_size_accounting(self, graph) -> None:
        live = _live_ids(graph)
        occurrences = sum(len(graph.labels(e)) for e in live)
        assert graph.total_label_occurrences == occurrences
        assert graph.size() == (
            graph.vertex_count + len(live) + occurrences
        )


@pytest.mark.parametrize(
    "factory_name", ["live_fresh", "live_mutated", "live_compacted"]
)
def test_livegraph_equals_rebuilt_immutable(factory_name: str) -> None:
    """A LiveGraph describes the same multigraph as a from-scratch build.

    Edge ids differ (the rebuild closes tombstone slots), so edges are
    compared as (src name, tgt name, label names, cost) multisets, and
    adjacency per vertex as multisets of the same rendering.
    """
    live = FACTORIES[factory_name]()
    rebuilt = live.to_graph()

    def rendered(graph, e):
        return (
            graph.vertex_name(graph.src(e)),
            graph.vertex_name(graph.tgt(e)),
            graph.label_names_of(e),
            graph.cost(e),
        )

    live_edges = sorted(rendered(live, e) for e in live.live_edges())
    rebuilt_edges = sorted(rendered(rebuilt, e) for e in rebuilt.edges())
    assert live_edges == rebuilt_edges
    assert live.vertex_count == rebuilt.vertex_count
    assert sorted(map(str, live.alphabet)) == sorted(
        map(str, rebuilt.alphabet)
    )
    assert live.has_costs == rebuilt.has_costs

    for v in live.vertices():
        name = live.vertex_name(v)
        rv = rebuilt.vertex_id(name)
        live_out = sorted(rendered(live, e) for e in live.out_edges(v))
        rebuilt_out = sorted(
            rendered(rebuilt, e) for e in rebuilt.out_edges(rv)
        )
        assert live_out == rebuilt_out, name
        live_in = sorted(
            rendered(live, e) for e in live.in_edges(v) if live.is_live(e)
        )
        rebuilt_in = sorted(
            rendered(rebuilt, e) for e in rebuilt.in_edges(rv)
        )
        assert live_in == rebuilt_in, name

    # Relative In-order (the enumeration-order contract): live in-lists
    # filtered of tombstones must list edges in the same relative order
    # as the rebuild, because compaction/rebuild closes slots in
    # ascending old-id order.
    for v in live.vertices():
        rv = rebuilt.vertex_id(live.vertex_name(v))
        live_seq = [
            rendered(live, e)
            for e in live.in_edges(v)
            if live.is_live(e)
        ]
        rebuilt_seq = [rendered(rebuilt, e) for e in rebuilt.in_edges(rv)]
        assert live_seq == rebuilt_seq


def test_compacted_overlay_keeps_interning() -> None:
    """Vertex and label ids survive compaction (only edge ids move)."""
    live = _mutated_live()
    before_vertices = {
        v: live.vertex_name(v) for v in live.vertices()
    }
    before_labels = {a: live.label_name(a) for a in range(live.label_count)}
    live.compact()
    assert {
        v: live.vertex_name(v) for v in live.vertices()
    } == before_vertices
    assert {
        a: live.label_name(a) for a in range(live.label_count)
    } == before_labels
