"""Unit tests for structural graph validation."""

import pytest
from hypothesis import given

from repro.exceptions import GraphError
from repro.graph import Graph, validate_graph

from tests.conftest import small_graphs


class TestValidGraphs:
    @given(small_graphs())
    def test_random_built_graphs_validate(self, graph):
        validate_graph(graph)


class TestBrokenGraphs:
    """Hand-craft Graph instances that bypass the builder's checks."""

    def test_bad_edge_endpoint_rejected_at_construction(self):
        with pytest.raises(GraphError, match="endpoint outside"):
            Graph(["x"], ["a"], src=[0], tgt=[5], labels=[(0,)])

    def test_empty_label_set(self):
        g = Graph(["x", "y"], ["a"], src=[0], tgt=[1], labels=[()])
        with pytest.raises(GraphError, match="empty label set"):
            validate_graph(g)

    def test_duplicate_labels(self):
        g = Graph(["x", "y"], ["a"], src=[0], tgt=[1], labels=[(0, 0)])
        with pytest.raises(GraphError, match="duplicate labels"):
            validate_graph(g)

    def test_label_out_of_range(self):
        g = Graph(["x", "y"], ["a"], src=[0], tgt=[1], labels=[(3,)])
        with pytest.raises(GraphError, match="out of range"):
            validate_graph(g)

    def test_non_positive_cost(self):
        g = Graph(
            ["x", "y"], ["a"], src=[0], tgt=[1], labels=[(0,)], costs=[0]
        )
        with pytest.raises(GraphError, match="non-positive cost"):
            validate_graph(g)

    def test_duplicate_vertex_names(self):
        g = Graph(["x", "x"], ["a"], src=[0], tgt=[1], labels=[(0,)])
        with pytest.raises(GraphError, match="duplicate vertex names"):
            validate_graph(g)

    def test_duplicate_label_names(self):
        g = Graph(["x", "y"], ["a", "a"], src=[0], tgt=[1], labels=[(0,)])
        with pytest.raises(GraphError, match="duplicate label names"):
            validate_graph(g)
