"""Unit tests for the graph builder."""

import pytest

from repro.exceptions import CostError, GraphError
from repro.graph import GraphBuilder, validate_graph


class TestVertices:
    def test_add_vertex_idempotent(self):
        b = GraphBuilder()
        assert b.add_vertex("x") == b.add_vertex("x") == 0
        assert b.vertex_count == 1

    def test_add_vertices_order(self):
        b = GraphBuilder()
        assert b.add_vertices(["p", "q", "p"]) == [0, 1, 0]

    def test_hashable_names(self):
        b = GraphBuilder()
        b.add_vertex(("tuple", 1))
        b.add_vertex(42)
        g = b.build()
        assert g.vertex_name(0) == ("tuple", 1)


class TestEdges:
    def test_auto_vertex_creation(self):
        b = GraphBuilder()
        b.add_edge("x", "y", ["a"])
        assert b.vertex_count == 2

    def test_edge_ids_sequential(self):
        b = GraphBuilder()
        assert b.add_edge("x", "y", ["a"]) == 0
        assert b.add_edge("y", "x", ["a"]) == 1

    def test_duplicate_labels_deduped(self):
        b = GraphBuilder()
        b.add_edge("x", "y", ["a", "a", "b"])
        g = b.build()
        assert len(g.labels(0)) == 2

    def test_empty_labels_rejected(self):
        b = GraphBuilder()
        with pytest.raises(GraphError):
            b.add_edge("x", "y", [])

    def test_bad_label_rejected(self):
        b = GraphBuilder()
        with pytest.raises(GraphError):
            b.add_edge("x", "y", [""])
        with pytest.raises(GraphError):
            b.add_edge("x", "y", [42])

    def test_add_edges_bulk(self):
        b = GraphBuilder()
        ids = b.add_edges([("x", "y", ["a"]), ("y", "z", ["b"])])
        assert ids == [0, 1]

    def test_self_loops_allowed(self):
        b = GraphBuilder()
        b.add_edge("x", "x", ["a"])
        g = b.build()
        assert g.src(0) == g.tgt(0)


class TestCosts:
    def test_positive_int_costs(self):
        b = GraphBuilder()
        b.add_edge("x", "y", ["a"], cost=7)
        g = b.build()
        assert g.has_costs
        assert g.cost(0) == 7

    def test_mixed_costs_default_to_one(self):
        b = GraphBuilder()
        b.add_edge("x", "y", ["a"], cost=7)
        b.add_edge("y", "z", ["a"])
        g = b.build()
        assert g.cost(1) == 1

    def test_zero_cost_rejected(self):
        b = GraphBuilder()
        with pytest.raises(CostError):
            b.add_edge("x", "y", ["a"], cost=0)

    def test_negative_cost_rejected(self):
        b = GraphBuilder()
        with pytest.raises(CostError):
            b.add_edge("x", "y", ["a"], cost=-3)

    def test_non_int_cost_rejected(self):
        b = GraphBuilder()
        with pytest.raises(CostError):
            b.add_edge("x", "y", ["a"], cost=1.5)
        with pytest.raises(CostError):
            b.add_edge("x", "y", ["a"], cost=True)


class TestBuild:
    def test_built_graph_validates(self):
        b = GraphBuilder()
        b.add_edge("x", "y", ["a", "b"])
        b.add_edge("y", "x", ["b"])
        b.add_vertex("isolated")
        validate_graph(b.build())

    def test_builder_reusable_after_build(self):
        b = GraphBuilder()
        b.add_edge("x", "y", ["a"])
        g1 = b.build()
        b.add_edge("y", "z", ["a"])
        g2 = b.build()
        assert g1.edge_count == 1
        assert g2.edge_count == 2

    def test_empty_graph(self):
        g = GraphBuilder().build()
        assert g.vertex_count == 0
        assert g.edge_count == 0
        assert g.size() == 0
        validate_graph(g)

    def test_in_order_is_insertion_order(self):
        """In(v) order = edge insertion order; this pins TgtIdx."""
        b = GraphBuilder()
        b.add_edge("p", "z", ["a"])   # e0
        b.add_edge("q", "z", ["a"])   # e1
        b.add_edge("r", "z", ["a"])   # e2
        g = b.build()
        assert g.in_edges(g.vertex_id("z")) == (0, 1, 2)
        assert [g.tgt_idx(e) for e in (0, 1, 2)] == [0, 1, 2]
