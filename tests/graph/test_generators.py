"""Unit tests for the synthetic graph generators."""

import pytest

from repro.exceptions import GraphError
from repro.graph import validate_graph
from repro.graph.generators import (
    chain,
    cycle,
    grid,
    layered,
    random_multilabel,
    star,
)


class TestChain:
    def test_shape(self):
        g = chain(5)
        assert g.vertex_count == 6
        assert g.edge_count == 5
        validate_graph(g)

    def test_parallel_edges(self):
        g = chain(3, parallel=4)
        assert g.edge_count == 12
        assert len(g.parallel_edges(g.vertex_id("v0"), g.vertex_id("v1"))) == 4

    def test_zero_length(self):
        g = chain(0)
        assert g.vertex_count == 1
        assert g.edge_count == 0

    def test_bad_arguments(self):
        with pytest.raises(GraphError):
            chain(-1)
        with pytest.raises(GraphError):
            chain(2, parallel=0)

    def test_labels_applied(self):
        g = chain(2, labels=("x", "y"))
        assert set(g.label_names_of(0)) == {"x", "y"}


class TestCycle:
    def test_shape(self):
        g = cycle(4)
        assert g.vertex_count == 4
        assert g.edge_count == 4
        validate_graph(g)
        # Every vertex has in/out degree 1.
        assert all(g.in_degree(v) == 1 for v in g.vertices())

    def test_self_loop_cycle(self):
        g = cycle(1)
        assert g.src(0) == g.tgt(0)

    def test_bad_length(self):
        with pytest.raises(GraphError):
            cycle(0)


class TestGrid:
    def test_shape(self):
        g = grid(3, 4)
        assert g.vertex_count == 12
        # Right edges: 3 rows × 3, down edges: 2 × 4.
        assert g.edge_count == 9 + 8
        validate_graph(g)

    def test_single_cell(self):
        g = grid(1, 1)
        assert g.edge_count == 0

    def test_bad_dimensions(self):
        with pytest.raises(GraphError):
            grid(0, 3)


class TestRandomMultilabel:
    def test_reproducible(self):
        g1 = random_multilabel(10, 30, seed=7)
        g2 = random_multilabel(10, 30, seed=7)
        assert g1.edge_count == g2.edge_count == 30
        for e in g1.edges():
            assert g1.src(e) == g2.src(e)
            assert g1.labels(e) == g2.labels(e)

    def test_different_seeds_differ(self):
        g1 = random_multilabel(10, 30, seed=1)
        g2 = random_multilabel(10, 30, seed=2)
        different = any(
            g1.src(e) != g2.src(e) or g1.labels(e) != g2.labels(e)
            for e in g1.edges()
        )
        assert different

    def test_validates(self):
        validate_graph(random_multilabel(20, 60, seed=3))

    def test_ensure_path(self):
        g = random_multilabel(
            5, 10, seed=0, ensure_path=("start", "goal", 4)
        )
        assert g.has_vertex("start") and g.has_vertex("goal")
        validate_graph(g)

    def test_bad_arguments(self):
        with pytest.raises(GraphError):
            random_multilabel(0, 5)
        with pytest.raises(GraphError):
            random_multilabel(5, 5, max_labels_per_edge=99)

    def test_label_bounds(self):
        g = random_multilabel(8, 40, max_labels_per_edge=2, seed=11)
        assert all(1 <= len(g.labels(e)) <= 2 for e in g.edges())


class TestLayered:
    def test_source_reaches_sink(self):
        from repro import DistinctShortestWalks

        g = layered(4, 3, seed=5)
        validate_graph(g)
        engine = DistinctShortestWalks(g, "(a | b)+", "source", "sink")
        assert engine.lam == 5  # n_layers + 1 via the spine.

    def test_bad_dimensions(self):
        with pytest.raises(GraphError):
            layered(0, 2)


class TestStar:
    def test_shape(self):
        g = star(10)
        assert g.vertex_count == 21
        assert g.edge_count == 20
        hub = g.vertex_id("hub")
        assert g.in_degree(hub) == 10
        assert g.out_degree(hub) == 10
        validate_graph(g)

    def test_bad_arguments(self):
        with pytest.raises(GraphError):
            star(0)
