"""End-to-end tests of the asyncio serving tier (real worker processes).

Each test boots a real :class:`~repro.serve.ServeServer` — forked
workers mapping a real shared-memory segment — inside ``asyncio.run``,
and always drains it, so a passing run leaves ``/dev/shm`` clean.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal

import pytest

from repro.graph.builder import GraphBuilder
from repro.serve.server import ServeServer


def _demo_graph():
    builder = GraphBuilder()
    builder.add_edge("Alix", "Dan", ["h", "s"])
    builder.add_edge("Dan", "Eve", ["h"])
    builder.add_edge("Eve", "Bob", ["s"])
    builder.add_edge("Alix", "Bob", ["t"])
    return builder.build()


def _shm_entries(base: str):
    root = "/dev/shm"
    if not os.path.isdir(root):  # pragma: no cover - non-Linux
        return []
    return [f for f in os.listdir(root) if f.startswith(base)]


async def _booted(**kwargs) -> ServeServer:
    server = ServeServer(_demo_graph(), **kwargs)
    await server.start()
    return server


async def _tcp_exchange(port: int, lines):
    """Send every request line, then read that many responses in order."""
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    try:
        for line in lines:
            writer.write(json.dumps(line).encode() + b"\n")
        await writer.drain()
        out = []
        for _ in range(len(lines)):
            raw = await asyncio.wait_for(reader.readline(), timeout=30)
            assert raw, "server closed mid-batch"
            out.append(json.loads(raw))
        return out
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, OSError):
            pass


def test_tcp_mixed_batch_in_order_with_read_your_writes() -> None:
    async def scenario():
        server = await _booted(workers=2)
        base = server._segment_base
        try:
            port = await server.start_tcp()
            responses = await _tcp_exchange(
                port,
                [
                    {"query": "h* s (h | s)*", "source": "Alix",
                     "target": "Bob", "id": 1},
                    {"query": "h", "source": "Bob", "target": "Alix",
                     "id": 2},  # edge does not exist yet
                    {"mutate": [{"op": "add_edge", "src": "Bob",
                                 "tgt": "Alix", "labels": ["h"]}], "id": 3},
                    {"query": "h", "source": "Bob", "target": "Alix",
                     "id": 4},  # barrier: must see the new edge
                    {"query": "h", "source": "missing", "target": "Bob",
                     "id": 5},
                ],
            )
            assert [r.get("id") for r in responses] == [1, 2, 3, 4, 5]
            assert responses[0]["status"] == "ok"
            assert responses[0]["lam"] == 3
            assert responses[1]["status"] == "empty"  # pre-mutation
            assert responses[2]["status"] == "ok"
            assert responses[2]["result"]["serve_epoch"] == 1
            assert responses[3]["status"] == "ok"  # read-your-writes
            assert responses[3]["lam"] == 1
            assert responses[4]["status"] == "error"
            assert "missing" in responses[4]["error"]
            assert server.epoch == 1
        finally:
            await server.shutdown()
        assert _shm_entries(base) == []

    asyncio.run(scenario())


def test_bad_json_line_answers_in_order() -> None:
    async def scenario():
        server = await _booted(workers=1)
        try:
            port = await server.start_tcp()
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                writer.write(b'{"query": "h", "source": "Alix"')  # truncated
                writer.write(b"\n")
                writer.write(
                    json.dumps(
                        {"query": "h h s", "source": "Alix", "target": "Bob"}
                    ).encode()
                    + b"\n"
                )
                await writer.drain()
                first = json.loads(await reader.readline())
                second = json.loads(await reader.readline())
                assert first["status"] == "error"
                assert "bad JSON" in first["error"]
                assert second["status"] == "ok"
            finally:
                writer.close()
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_worker_kill_every_inflight_request_answered() -> None:
    """SIGKILL a worker mid-stream: each request is still answered,
    either retried to "ok" on the respawned pool or failed with the
    structured ``code="worker_crashed"`` — never hung, never dropped."""

    async def scenario():
        server = await _booted(workers=2, max_inflight=16)
        try:
            payload = {"query": "h* s (h | s)*", "source": "Alix",
                       "target": "Bob"}
            tasks = [
                asyncio.create_task(server.dispatch_query(dict(payload)))
                for _ in range(12)
            ]
            os.kill(server.worker_pids()[0], signal.SIGKILL)
            responses = await asyncio.wait_for(asyncio.gather(*tasks), 60)
            assert len(responses) == 12
            for response in responses:
                assert response["status"] in ("ok", "error")
                if response["status"] == "error":
                    assert response["code"] == "worker_crashed"
            # The pool healed: the slot was respawned and still serves.
            after = await asyncio.wait_for(
                server.dispatch_query(dict(payload)), 30
            )
            assert after["status"] == "ok"
            assert after["lam"] == 3
            stats = server.stats()
            assert stats["respawns"] >= 1
            assert stats["workers"] == 2
            assert None not in server.worker_pids()
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_unresponsive_worker_hits_hard_watchdog() -> None:
    """A SIGSTOP'd worker past timeout_ms + grace is killed and the
    request answered ``code="worker_timeout"``; the slot respawns."""

    async def scenario():
        server = await _booted(workers=1, timeout_grace_s=0.3)
        try:
            os.kill(server.worker_pids()[0], signal.SIGSTOP)
            response = await asyncio.wait_for(
                server.dispatch_query(
                    {"query": "h", "source": "Alix", "target": "Dan",
                     "timeout_ms": 50}
                ),
                30,
            )
            assert response["status"] == "error"
            assert response["code"] == "worker_timeout"
            # Respawn happens via the reader-EOF path; wait for it,
            # then the pool serves again.
            for _ in range(100):
                if server.stats()["respawns"] >= 1:
                    break
                await asyncio.sleep(0.05)
            after = await asyncio.wait_for(
                server.dispatch_query(
                    {"query": "h", "source": "Alix", "target": "Dan"}
                ),
                30,
            )
            assert after["status"] == "ok"
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_affinity_routing_pins_query_source_pairs() -> None:
    async def scenario():
        server = await _booted(workers=4, routing="affinity")
        try:
            a = {"query": "h", "source": "Alix", "target": "Dan"}
            b = {"query": "h", "source": "Dan", "target": "Eve"}
            picks_a = {server._pick(a).index for _ in range(8)}
            picks_b = {server._pick(b).index for _ in range(8)}
            assert len(picks_a) == 1  # same pair → same worker, always
            assert len(picks_b) == 1
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_round_robin_spreads_across_workers() -> None:
    async def scenario():
        server = await _booted(workers=3)
        try:
            payload = {"query": "h", "source": "Alix", "target": "Dan"}
            picks = [server._pick(payload).index for _ in range(6)]
            assert set(picks) == {0, 1, 2}
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_invalid_mutation_is_structured_and_graph_survives() -> None:
    async def scenario():
        server = await _booted(workers=1)
        try:
            port = await server.start_tcp()
            responses = await _tcp_exchange(
                port,
                [
                    {"mutate": [{"op": "add_edge", "src": "Alix"}], "id": 1},
                    {"query": "h", "source": "Alix", "target": "Dan",
                     "id": 2},
                ],
            )
            assert responses[0]["status"] == "error"
            assert responses[0]["code"] == "invalid_delta"
            assert responses[1]["status"] == "ok"  # batch survived
            assert server.epoch == 0  # nothing was published
        finally:
            await server.shutdown()

    asyncio.run(scenario())


def test_constructor_validation() -> None:
    with pytest.raises(ValueError, match="at least one worker"):
        ServeServer(_demo_graph(), workers=0)
    with pytest.raises(ValueError, match="routing"):
        ServeServer(_demo_graph(), routing="random")
    with pytest.raises(TypeError):
        ServeServer({"not": "a graph"})


def test_shutdown_is_clean_without_tcp() -> None:
    async def scenario():
        server = await _booted(workers=2)
        base = server._segment_base
        pids = server.worker_pids()
        await server.shutdown()
        assert _shm_entries(base) == []
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # every worker actually exited

    asyncio.run(scenario())


def test_stdio_serves_with_file_redirects(tmp_path) -> None:
    """``--stdio`` with BOTH ends redirected to regular files.

    ``connect_read_pipe``/``connect_write_pipe`` reject regular files,
    so this shape (``repro serve --stdio < in.jsonl > out.jsonl``)
    exercises the thread-pool fallback reader/writer.  A pipelined
    query → mutation → read-your-writes batch must come back in order,
    the process must exit 0 on stdin EOF, and no segment may leak.
    """
    import subprocess
    import sys
    import time

    graph_path = tmp_path / "graph.txt"
    graph_path.write_text(
        "Alix -> Dan : h, s\nDan -> Eve : h\nEve -> Bob : s\n"
    )
    in_path = tmp_path / "in.jsonl"
    in_path.write_text(
        "\n".join(
            json.dumps(line)
            for line in [
                {"query": "h h s", "source": "Alix", "target": "Bob",
                 "id": 1},
                {"mutate": [{"op": "add_edge", "src": "Bob",
                             "tgt": "Alix", "labels": ["h"]}], "id": 2},
                {"query": "h", "source": "Bob", "target": "Alix",
                 "id": 3},
            ]
        )
        + "\n"
    )
    out_path = tmp_path / "out.jsonl"
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    with open(in_path, "rb") as stdin, open(out_path, "wb") as stdout:
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", str(graph_path),
             "--stdio", "--workers", "2"],
            stdin=stdin, stdout=stdout, stderr=subprocess.DEVNULL,
            env=env,
        )
        try:
            assert proc.wait(timeout=60) == 0
        finally:
            if proc.poll() is None:  # pragma: no cover - failure path
                proc.kill()
                proc.wait(timeout=10)
    responses = [
        json.loads(line)
        for line in out_path.read_text().splitlines() if line
    ]
    assert [r["id"] for r in responses] == [1, 2, 3]
    assert responses[0]["status"] == "ok" and responses[0]["lam"] == 3
    assert responses[1]["result"]["serve_epoch"] == 1
    assert responses[2]["status"] == "ok" and responses[2]["lam"] == 1
    if os.path.isdir("/dev/shm"):
        for _ in range(50):  # unlink races process exit briefly
            litter = [n for n in os.listdir("/dev/shm")
                      if n.startswith(f"repro-{proc.pid:x}-")]
            if not litter:
                break
            time.sleep(0.1)
        assert litter == []
