"""Unit tests for the worker-side payload executor (no processes)."""

from __future__ import annotations

import pytest

from repro.graph.builder import GraphBuilder
from repro.serve.worker import execute_payload
from repro.service import QueryService


@pytest.fixture
def service() -> QueryService:
    builder = GraphBuilder()
    builder.add_edge("A", "B", ["h"])
    builder.add_edge("B", "C", ["s"])
    svc = QueryService()
    svc.register_graph("default", builder.build())
    return svc


def test_good_query(service: QueryService) -> None:
    response = execute_payload(
        service, {"query": "h s", "source": "A", "target": "C"}
    )
    assert response["status"] == "ok"
    assert response["lam"] == 2


def test_non_dict_payload(service: QueryService) -> None:
    response = execute_payload(service, ["not", "a", "dict"])
    assert response["status"] == "error"
    assert "JSON object" in response["error"]


def test_mutation_payload_is_not_owner(service: QueryService) -> None:
    response = execute_payload(
        service, {"mutate": [{"op": "add_vertex", "name": "Z"}], "id": 9}
    )
    assert response["status"] == "error"
    assert response["code"] == "not_owner"
    assert response["id"] == 9


def test_parse_error_is_structured(service: QueryService) -> None:
    response = execute_payload(
        service, {"query": "h", "source": "A", "target": "B", "bogus": 1}
    )
    assert response["status"] == "error"
    assert "bogus" in response["error"]


def test_engine_error_stays_in_band(service: QueryService) -> None:
    response = execute_payload(
        service, {"query": "h", "source": "nope", "target": "B"}
    )
    assert response["status"] == "error"
    assert "nope" in response["error"]
