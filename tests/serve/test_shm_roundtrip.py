"""``to_shared`` → ``from_shared`` reproduces the full accessor contract.

Every factory below publishes a graph into a shared-memory segment,
re-attaches it as a :class:`~repro.serve.shm.SharedGraph`, and
cross-checks *every* public accessor against the original — the
round-trip must be observationally lossless, including the degenerate
shapes (empty graph, single vertex, ``None``/int vertex names) that a
packed layout is most likely to mangle.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.graph.builder import GraphBuilder
from repro.graph.database import Graph
from tests.conftest import small_graphs


def _check_roundtrip(graph: Graph) -> None:
    """Publish, re-attach, compare every accessor, clean up."""
    segment = graph.to_shared()
    shared = None
    try:
        shared = Graph.from_shared(segment.name)
        assert_same_graph(graph, shared)
    finally:
        if shared is not None:
            shared.detach()
        segment.close(unlink=True)


def assert_same_graph(a: Graph, b: Graph) -> None:
    # -- scalar shape ------------------------------------------------------
    assert b.vertex_count == a.vertex_count
    assert b.edge_count == a.edge_count
    assert b.label_count == a.label_count
    assert b.size() == a.size()
    assert b.total_label_occurrences == a.total_label_occurrences
    assert b.has_costs == a.has_costs
    assert b.alphabet == a.alphabet
    assert b.max_in_degree() == a.max_in_degree()

    # -- interning tables --------------------------------------------------
    for v in a.vertices():
        name = a.vertex_name(v)
        assert b.vertex_name(v) == name
        assert b.vertex_id(name) == v
        assert b.has_vertex(name)
        assert b.resolve_vertex(name) == a.resolve_vertex(name)
    for i, label in enumerate(a.alphabet):
        assert b.label_id(label) == i
        assert b.label_name(i) == label
        assert b.has_label(label)

    # -- per-edge columns --------------------------------------------------
    assert list(b.edges()) == list(a.edges())
    for e in a.edges():
        assert b.src(e) == a.src(e)
        assert b.tgt(e) == a.tgt(e)
        assert b.labels(e) == a.labels(e)
        assert b.label_names_of(e) == a.label_names_of(e)
        assert b.tgt_idx(e) == a.tgt_idx(e)
        assert b.cost(e) == a.cost(e)

    # -- flat buffers ------------------------------------------------------
    assert list(b.src_array) == list(a.src_array)
    assert list(b.tgt_array) == list(a.tgt_array)
    assert list(b.tgt_idx_array) == list(a.tgt_idx_array)
    assert list(b.cost_array) == list(a.cost_array)
    assert b.label_array == a.label_array

    # -- adjacency ---------------------------------------------------------
    for v in a.vertices():
        assert b.out_edges(v) == a.out_edges(v)
        assert b.in_edges(v) == a.in_edges(v)
        assert b.out_degree(v) == a.out_degree(v)
        assert b.in_degree(v) == a.in_degree(v)
        assert b.out_labels(v) == a.out_labels(v)
        assert b.in_labels(v) == a.in_labels(v)
        for lab in range(a.label_count):
            assert b.out_by_label(v, lab) == a.out_by_label(v, lab)
            assert b.in_by_label(v, lab) == a.in_by_label(v, lab)

    # -- packed CSR views --------------------------------------------------
    for side in ("out_csr", "in_csr"):
        indptr_a, payload_a = getattr(a, side)
        indptr_b, payload_b = getattr(b, side)
        assert list(indptr_b) == list(indptr_a)
        assert list(payload_b) == list(payload_a)
    assert b.out_labels_array == a.out_labels_array
    assert b.in_labels_array == a.in_labels_array


# ---------------------------------------------------------------------------
# Graph factories covering the degenerate and awkward shapes
# ---------------------------------------------------------------------------


def _empty() -> Graph:
    return GraphBuilder().build()


def _single_vertex() -> Graph:
    builder = GraphBuilder()
    builder.add_vertex("alone")
    return builder.build()


def _self_loop() -> Graph:
    builder = GraphBuilder()
    builder.add_edge("x", "x", ["a", "b"])
    return builder.build()


def _parallel_edges() -> Graph:
    builder = GraphBuilder()
    builder.add_edge("x", "y", ["a"])
    builder.add_edge("x", "y", ["a"])
    builder.add_edge("x", "y", ["b"])
    builder.add_edge("y", "x", ["a", "b", "c"])
    return builder.build()


def _with_costs() -> Graph:
    builder = GraphBuilder()
    builder.add_edge("p", "q", ["a"], cost=7)
    builder.add_edge("q", "r", ["b"], cost=1)
    builder.add_edge("r", "p", ["a", "b"], cost=30)
    return builder.build()


def _odd_vertex_names() -> Graph:
    """None / int / float vertex names must survive the name tables."""
    builder = GraphBuilder()
    builder.add_vertex(None)
    builder.add_vertex(7)
    builder.add_vertex(2.5)
    builder.add_edge(None, 7, ["a"])
    builder.add_edge(7, 2.5, ["b"])
    builder.add_edge(2.5, None, ["a", "c"])
    return builder.build()


def _mutated_compacted() -> Graph:
    """A compacted LiveGraph snapshot (renumbered edges, new labels)."""
    from repro.live import LiveGraph
    from repro.live.delta import op_from_dict

    builder = GraphBuilder()
    builder.add_edge("u", "v", ["a"])
    builder.add_edge("v", "w", ["b"])
    builder.add_edge("w", "u", ["a"])
    live = LiveGraph(builder.build())
    live.apply(
        [
            op_from_dict({"op": "add_vertex", "name": "z"}),
            op_from_dict(
                {"op": "add_edge", "src": "w", "tgt": "z", "labels": ["zz"]}
            ),
            op_from_dict({"op": "remove_edge", "edge": 1}),
        ]
    )
    return live.compact()


FACTORIES = {
    "empty": _empty,
    "single_vertex": _single_vertex,
    "self_loop": _self_loop,
    "parallel_edges": _parallel_edges,
    "with_costs": _with_costs,
    "odd_vertex_names": _odd_vertex_names,
    "mutated_compacted": _mutated_compacted,
}


@pytest.mark.parametrize("shape", sorted(FACTORIES))
def test_roundtrip_preserves_accessor_contract(shape: str) -> None:
    _check_roundtrip(FACTORIES[shape]())


def test_roundtrip_fig1(fig1_graph: Graph) -> None:
    _check_roundtrip(fig1_graph)


def test_roundtrip_answers_queries(fig1_graph: Graph) -> None:
    """A SharedGraph plugs into the full pipeline unchanged."""
    from repro.api import Database

    segment = fig1_graph.to_shared()
    shared = None
    try:
        shared = Graph.from_shared(segment.name)
        expected = (
            Database(fig1_graph)
            .query("h* s (h | s)*")
            .from_("Alix")
            .to("Bob")
            .run()
        )
        got = (
            Database(shared)
            .query("h* s (h | s)*")
            .from_("Alix")
            .to("Bob")
            .run()
        )
        assert got.lam == expected.lam
        assert [w.edges for w in got] == [w.edges for w in expected]
    finally:
        if shared is not None:
            shared.detach()
        segment.close(unlink=True)


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(small_graphs(max_vertices=8, max_edges=20))
def test_roundtrip_random_graphs(graph: Graph) -> None:
    _check_roundtrip(graph)
