"""Segment mechanics: header validation, CRC, epochs, cleanup, reclaim."""

from __future__ import annotations

import struct
from multiprocessing import shared_memory

import pytest

from repro.exceptions import ShmError
from repro.graph.builder import GraphBuilder
from repro.graph.database import Graph
from repro.serve.shm import (
    _HEADER,
    GraphSegment,
    attach,
    default_segment_name,
)


@pytest.fixture
def demo_graph() -> Graph:
    builder = GraphBuilder()
    builder.add_edge("A", "B", ["h"])
    builder.add_edge("B", "C", ["s"])
    builder.add_edge("A", "C", ["h", "s"])
    return builder.build()


def test_attach_missing_name_raises() -> None:
    with pytest.raises(ShmError, match="no shared graph segment"):
        attach(default_segment_name())


def test_attach_rejects_bad_magic() -> None:
    name = default_segment_name()
    block = shared_memory.SharedMemory(name=name, create=True, size=128)
    try:
        block.buf[: _HEADER.size] = b"\xde" * _HEADER.size
        with pytest.raises(ShmError, match="bad magic"):
            attach(name)
    finally:
        block.close()
        block.unlink()


def test_attach_rejects_unsupported_version(demo_graph: Graph) -> None:
    with demo_graph.to_shared() as segment:
        raw = shared_memory.SharedMemory(name=segment.name)
        try:
            struct.pack_into("<I", raw.buf, 8, 99)  # version field
            with pytest.raises(ShmError, match="layout version"):
                attach(segment.name)
        finally:
            raw.close()


def test_attach_rejects_corrupt_meta(demo_graph: Graph) -> None:
    with demo_graph.to_shared() as segment:
        raw = shared_memory.SharedMemory(name=segment.name)
        try:
            raw.buf[_HEADER.size] ^= 0xFF  # first meta byte
            with pytest.raises(ShmError, match="header CRC"):
                attach(segment.name)
        finally:
            raw.close()


def test_attach_rejects_corrupt_data(demo_graph: Graph) -> None:
    with demo_graph.to_shared() as segment:
        raw = shared_memory.SharedMemory(name=segment.name)
        try:
            raw.buf[len(raw.buf) - 1] ^= 0xFF  # last data byte
            with pytest.raises(ShmError, match="data CRC"):
                attach(segment.name)
        finally:
            raw.close()


def test_epoch_bump_marks_attached_readers_stale(demo_graph: Graph) -> None:
    with demo_graph.to_shared() as segment:
        shared = segment.attach()
        try:
            assert shared.attached_epoch == 0
            assert shared.current_epoch() == 0
            assert not shared.is_stale()
            assert segment.bump_epoch() == 1
            assert shared.current_epoch() == 1
            assert shared.is_stale()
        finally:
            shared.detach()
        with pytest.raises(ShmError, match="detached"):
            shared.current_epoch()


def test_close_unlinks_and_is_idempotent(demo_graph: Graph) -> None:
    segment = demo_graph.to_shared()
    name = segment.name
    segment.close(unlink=True)
    segment.close(unlink=True)  # second close is a no-op
    with pytest.raises(ShmError, match="no shared graph segment"):
        attach(name)
    with pytest.raises(ShmError, match="closed"):
        segment.bump_epoch()


def test_detach_is_idempotent(demo_graph: Graph) -> None:
    with demo_graph.to_shared() as segment:
        shared = segment.attach()
        shared.detach()
        shared.detach()


def test_create_reclaims_stale_block(demo_graph: Graph) -> None:
    """A leftover block under the target name is unlinked, not an error."""
    name = default_segment_name()
    litter = shared_memory.SharedMemory(name=name, create=True, size=64)
    litter.buf[:4] = b"junk"
    litter.close()  # handle closed, block still registered: a "crash"
    segment = GraphSegment.create(demo_graph, name=name)
    try:
        shared = attach(name)
        try:
            assert shared.edge_count == demo_graph.edge_count
        finally:
            shared.detach()
    finally:
        segment.close(unlink=True)


def test_to_shared_rejects_unrepresentable_names() -> None:
    builder = GraphBuilder()
    builder.add_vertex(("tuple", "name"))
    graph = builder.build()
    with pytest.raises(ShmError, match="vertex names"):
        graph.to_shared()


def test_segment_survives_many_readers(demo_graph: Graph) -> None:
    with demo_graph.to_shared() as segment:
        readers = [segment.attach() for _ in range(4)]
        try:
            for reader in readers:
                assert list(reader.src_array) == list(demo_graph.src_array)
        finally:
            for reader in readers:
                reader.detach()
