"""Unit and property tests for the pairing heap."""


import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datastructures.pairing_heap import PairingHeap


class TestBasics:
    def test_empty(self):
        heap = PairingHeap()
        assert len(heap) == 0
        assert not heap
        with pytest.raises(IndexError):
            heap.peek()
        with pytest.raises(IndexError):
            heap.pop()

    def test_push_pop_single(self):
        heap = PairingHeap()
        heap.push(7, "x")
        assert len(heap) == 1
        assert heap.peek() == (7, "x")
        assert heap.pop() == (7, "x")
        assert not heap

    def test_pops_in_key_order(self):
        heap = PairingHeap()
        for key in (5, 1, 4, 2, 3):
            heap.push(key, f"item{key}")
        got = [heap.pop() for _ in range(5)]
        assert got == [(k, f"item{k}") for k in (1, 2, 3, 4, 5)]

    def test_duplicate_keys_allowed(self):
        heap = PairingHeap()
        heap.push(1, "a")
        heap.push(1, "b")
        keys = [heap.pop()[0], heap.pop()[0]]
        assert keys == [1, 1]

    def test_interleaved_push_pop(self):
        heap = PairingHeap()
        heap.push(10, None)
        heap.push(5, None)
        assert heap.pop()[0] == 5
        heap.push(1, None)
        heap.push(20, None)
        assert heap.pop()[0] == 1
        assert heap.pop()[0] == 10
        assert heap.pop()[0] == 20


class TestDecreaseKey:
    def test_decrease_to_new_minimum(self):
        heap = PairingHeap()
        node = heap.push(50, "late")
        heap.push(10, "early")
        heap.decrease_key(node, 1)
        assert heap.pop() == (1, "late")
        assert heap.pop() == (10, "early")

    def test_decrease_non_root_deep(self):
        heap = PairingHeap()
        nodes = [heap.push(k, k) for k in range(10, 30)]
        # Force structure: pop once so children are melded.
        assert heap.pop()[0] == 10
        heap.decrease_key(nodes[-1], 0)
        assert heap.pop() == (0, 29)

    def test_increase_rejected(self):
        heap = PairingHeap()
        node = heap.push(5, None)
        with pytest.raises(ValueError, match="increase"):
            heap.decrease_key(node, 6)
        # Equal key is a no-op, not an error.
        heap.decrease_key(node, 5)
        assert heap.pop() == (5, None)

    def test_popped_node_rejected(self):
        heap = PairingHeap()
        node = heap.push(5, None)
        heap.pop()
        with pytest.raises(ValueError, match="no longer"):
            heap.decrease_key(node, 1)


class TestProperties:
    @given(st.lists(st.integers(), max_size=200))
    @settings(max_examples=100, deadline=None)
    def test_heapsort_matches_sorted(self, keys):
        heap = PairingHeap()
        for k in keys:
            heap.push(k, None)
        got = [heap.pop()[0] for _ in range(len(keys))]
        assert got == sorted(keys)
        assert not heap

    @given(st.integers(min_value=0, max_value=2 ** 32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_random_ops_match_reference(self, seed):
        """Random push/pop/decrease trace vs a brute-force reference."""
        rng = random.Random(seed)
        heap = PairingHeap()
        live = {}  # serial -> (node, current key)
        serial = 0
        for _ in range(300):
            op = rng.random()
            if op < 0.5 or not live:
                key = rng.randint(0, 100)
                node = heap.push(key, serial)
                live[serial] = (node, key)
                serial += 1
            elif op < 0.75:
                pick = rng.choice(list(live))
                node, key = live[pick]
                new_key = rng.randint(0, key)
                heap.decrease_key(node, new_key)
                live[pick] = (node, new_key)
            else:
                got_key, got_serial = heap.pop()
                assert live[got_serial][1] == got_key
                assert got_key == min(k for _, k in live.values())
                del live[got_serial]
            assert len(heap) == len(live)
        # Drain and compare the remains.
        drained = sorted(heap.pop()[0] for _ in range(len(heap)))
        assert drained == sorted(key for _, key in live.values())
