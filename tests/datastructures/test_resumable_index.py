"""Unit tests for the skip-pointer array behind ``ResumableTrim``."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datastructures import ResumableIndex


class TestBasics:
    def test_empty(self):
        idx = ResumableIndex(5, {})
        assert idx.first() is None
        assert idx.seek(0) is None
        assert idx.after(2) is None
        assert len(idx) == 0

    def test_single_cell(self):
        idx = ResumableIndex(5, {2: "x"})
        assert idx.first() == 2
        assert idx.seek(2) == 2
        assert idx.seek(3) is None
        assert idx.after(2) is None
        assert idx.after(1) == 2
        assert idx.payload(2) == "x"
        assert idx.payload(0) is None

    def test_multiple_cells(self):
        idx = ResumableIndex(8, {1: "a", 4: "b", 7: "c"})
        assert idx.first() == 1
        assert idx.seek(2) == 4
        assert idx.after(4) == 7
        assert idx.after(7) is None
        assert idx.non_empty_indices() == [1, 4, 7]

    def test_seek_out_of_range(self):
        idx = ResumableIndex(3, {0: "a"})
        assert idx.seek(3) is None
        assert idx.seek(100) is None
        assert idx.seek(-5) == 0  # Clamped to 0.

    def test_zero_size(self):
        idx = ResumableIndex(0, {})
        assert idx.first() is None

    def test_bad_cell_index_raises(self):
        with pytest.raises(IndexError):
            ResumableIndex(3, {3: "x"})
        with pytest.raises(IndexError):
            ResumableIndex(3, {-1: "x"})

    def test_size_property(self):
        assert ResumableIndex(7, {}).size == 7


@given(
    st.integers(min_value=0, max_value=40).flatmap(
        lambda size: st.tuples(
            st.just(size),
            st.dictionaries(
                st.integers(min_value=0, max_value=max(size - 1, 0)),
                st.integers(),
                max_size=size,
            )
            if size > 0
            else st.just({}),
        )
    )
)
def test_seek_matches_linear_scan(size_and_cells):
    size, cells = size_and_cells
    idx = ResumableIndex(size, cells)
    present = sorted(cells)
    for i in range(size + 2):
        expected = next((j for j in present if j >= i), None)
        assert idx.seek(i) == expected
        expected_after = next((j for j in present if j > i), None)
        assert idx.after(i) == expected_after
    for i in present:
        assert idx.payload(i) == cells[i]
