"""Unit tests for restartable queues (paper, Section 2.1)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.datastructures import RestartableQueue


class TestBasics:
    def test_empty_queue_is_exhausted(self):
        q = RestartableQueue()
        assert q.exhausted
        assert len(q) == 0
        assert q.remaining() == 0

    def test_peek_on_empty_raises(self):
        with pytest.raises(IndexError):
            RestartableQueue().peek()

    def test_enqueue_peek_advance(self):
        q = RestartableQueue()
        q.enqueue("a")
        q.enqueue("b")
        assert q.peek() == "a"
        q.advance()
        assert q.peek() == "b"
        q.advance()
        assert q.exhausted

    def test_constructor_items(self):
        q = RestartableQueue([1, 2, 3])
        assert len(q) == 3
        assert q.peek() == 1

    def test_advance_past_end_is_safe(self):
        q = RestartableQueue([1])
        q.advance()
        q.advance()  # No-op, no exception.
        assert q.exhausted


class TestRestart:
    def test_restart_resets_cursor(self):
        q = RestartableQueue([1, 2, 3])
        q.advance()
        q.advance()
        q.restart()
        assert q.peek() == 1
        assert q.remaining() == 3

    def test_restart_empty_queue(self):
        q = RestartableQueue()
        q.restart()
        assert q.exhausted

    def test_enqueue_after_exhaustion_revives(self):
        q = RestartableQueue([1])
        q.advance()
        assert q.exhausted
        q.enqueue(2)
        assert not q.exhausted
        assert q.peek() == 2

    def test_iter_ignores_cursor(self):
        q = RestartableQueue([1, 2, 3])
        q.advance()
        assert list(q) == [1, 2, 3]

    def test_position_property(self):
        q = RestartableQueue([1, 2])
        assert q.position == 0
        q.advance()
        assert q.position == 1


@given(st.lists(st.integers(), max_size=30))
def test_full_scan_matches_list(items):
    q = RestartableQueue(items)
    seen = []
    while not q.exhausted:
        seen.append(q.peek())
        q.advance()
    assert seen == items
    q.restart()
    seen2 = []
    while not q.exhausted:
        seen2.append(q.peek())
        q.advance()
    assert seen2 == items


@given(st.lists(st.integers(), min_size=1, max_size=20),
       st.integers(min_value=0, max_value=19))
def test_partial_scan_then_restart(items, k):
    q = RestartableQueue(items)
    for _ in range(min(k, len(items))):
        q.advance()
    q.restart()
    assert q.peek() == items[0]
