"""Unit tests for the immutable cons lists (paper, Section 2.1)."""

from hypothesis import given
from hypothesis import strategies as st

from repro.datastructures import ConsList, cons, nil


class TestBasics:
    def test_nil_is_empty(self):
        assert nil.is_empty
        assert len(nil) == 0
        assert list(nil) == []
        assert not nil

    def test_prepend_builds_in_reverse(self):
        xs = nil.prepend(3).prepend(2).prepend(1)
        assert list(xs) == [1, 2, 3]
        assert len(xs) == 3
        assert bool(xs)

    def test_cons_function(self):
        assert list(cons(1, cons(2, nil))) == [1, 2]

    def test_head_and_tail(self):
        xs = cons(1, cons(2, nil))
        assert xs.head == 1
        assert list(xs.tail) == [2]

    def test_from_iterable_preserves_order(self):
        xs = ConsList.from_iterable([1, 2, 3, 4])
        assert list(xs) == [1, 2, 3, 4]

    def test_from_iterable_empty(self):
        assert ConsList.from_iterable([]) is nil


class TestSharing:
    def test_prepend_shares_tail(self):
        base = ConsList.from_iterable([10, 20])
        left = base.prepend(1)
        right = base.prepend(2)
        # O(1) copy: both lists share the same tail object.
        assert left.tail is base
        assert right.tail is base
        assert list(left) == [1, 10, 20]
        assert list(right) == [2, 10, 20]

    def test_prepend_does_not_mutate(self):
        base = ConsList.from_iterable([1])
        _ = base.prepend(0)
        assert list(base) == [1]


class TestValueSemantics:
    def test_equality_by_content(self):
        assert ConsList.from_iterable([1, 2]) == ConsList.from_iterable([1, 2])
        assert ConsList.from_iterable([1, 2]) != ConsList.from_iterable([2, 1])
        assert ConsList.from_iterable([1]) != ConsList.from_iterable([1, 2])

    def test_equality_with_other_types(self):
        assert ConsList.from_iterable([1]) != [1]

    def test_hashable(self):
        xs = ConsList.from_iterable([1, 2])
        ys = ConsList.from_iterable([1, 2])
        assert hash(xs) == hash(ys)
        assert len({xs, ys}) == 1

    def test_repr(self):
        assert "1" in repr(ConsList.from_iterable([1]))


@given(st.lists(st.integers(), max_size=30))
def test_roundtrip_property(values):
    assert list(ConsList.from_iterable(values)) == values


@given(st.lists(st.integers(), max_size=30), st.integers())
def test_prepend_property(values, extra):
    xs = ConsList.from_iterable(values)
    assert list(xs.prepend(extra)) == [extra] + values
    assert len(xs.prepend(extra)) == len(values) + 1
