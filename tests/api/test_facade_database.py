"""Unit tests for :class:`repro.api.Database` — registry and caches."""

import pytest

from repro.api import Database
from repro.api.database import _shared
from repro.exceptions import QueryError, ReproError
from repro.graph.builder import GraphBuilder
from repro.workloads.fraud import example9_graph

QUERY = "h* s (h | s)*"


@pytest.fixture
def db():
    return Database(example9_graph())


class TestRegistry:
    def test_constructor_registers_default(self, db):
        assert db.graphs() == {"default": 1}
        assert db.version("default") == 1

    def test_register_returns_bumped_versions(self):
        database = Database()
        b = GraphBuilder()
        b.add_edge("a", "b", ["x"])
        assert database.register("g", b.build()) == 1
        assert database.register("g", b.build()) == 2
        assert database.version("g") == 2

    def test_versions_never_reused_across_reregistration(self):
        database = Database()
        b = GraphBuilder()
        b.add_edge("a", "b", ["x"])
        v1 = database.register("g", b.build())
        database.unregister("g")
        v2 = database.register("g", b.build())
        assert v2 > v1

    def test_unknown_graph_raises(self, db):
        with pytest.raises(ReproError, match="other"):
            db.query(QUERY).on("other").from_("Alix").to("Bob").run()

    def test_ambiguous_default_graph_raises(self):
        database = Database()
        b = GraphBuilder()
        b.add_edge("a", "b", ["x"])
        database.register("one", b.build())
        database.register("two", b.build())
        with pytest.raises(QueryError, match="names no graph"):
            database.query("x").from_("a").to("b").run()

    def test_reregistration_invalidates_caches(self):
        database = Database()
        b = GraphBuilder()
        b.add_edge("a", "b", ["x"])
        database.register("g", b.build())
        first = database.query("x | y").on("g").from_("a").to("b").run()
        assert len(first.all()) == 1

        grown = GraphBuilder()
        grown.add_edge("a", "b", ["x"])
        grown.add_edge("a", "b", ["y"])
        database.register("g", grown.build())
        after = database.query("x | y").on("g").from_("a").to("b").run()
        assert len(after.all()) == 2
        assert after.stats["cached"] == {"plan": False, "annotation": False}


class TestCaching:
    def test_repeat_query_hits_both_caches(self, db):
        """Acceptance: repeated identical interactive queries are
        served from the plan + annotation caches."""
        query = db.query(QUERY).from_("Alix").to("Bob")
        first = query.run()
        assert first.stats["cached"] == {"plan": False, "annotation": False}
        first_edges = [row.walk.edges for row in first]
        repeat = query.run()
        assert repeat.stats["cached"] == {"plan": True, "annotation": True}
        assert [row.walk.edges for row in repeat] == first_edges
        stats = db.stats()
        assert stats["plan_cache"]["hits"] >= 1
        assert stats["annotation_cache"]["hits"] >= 1

    def test_annotation_shared_across_targets_and_shapes(self, db):
        db.query(QUERY).from_("Alix").to("Bob").run().all()
        other = db.query(QUERY).from_("Alix").to("Eve").run()
        assert other.stats["cached"]["annotation"] is True
        fan = db.query(QUERY).from_("Alix").to_all().run()
        assert fan.stats["cached"]["annotation"] is True

    def test_cheapest_and_shortest_do_not_share_annotations(self, db):
        db.query(QUERY).from_("Alix").to("Bob").run().all()
        cheap = db.query(QUERY).cheapest().from_("Alix").to("Bob").run()
        assert cheap.stats["cached"]["annotation"] is False

    def test_cold_database_reports_no_hits(self):
        cold = Database(
            example9_graph(), plan_cache_size=0, annotation_cache_size=0
        )
        warm = Database(example9_graph())
        for _ in range(2):
            c = cold.query(QUERY).from_("Alix").to("Bob").run()
            w = warm.query(QUERY).from_("Alix").to("Bob").run()
            assert [r.walk.edges for r in c] == [r.walk.edges for r in w]
            assert c.stats["cached"] == {"plan": False, "annotation": False}
        assert cold.stats()["plan_cache"]["hits"] == 0
        assert cold.stats()["annotation_cache"]["hits"] == 0

    def test_for_graph_shares_one_database(self):
        graph = example9_graph()
        db1 = Database.for_graph(graph)
        db2 = Database.for_graph(graph)
        assert db1 is db2
        assert Database.for_graph(example9_graph()) is not db1

    def test_for_graph_map_is_bounded(self):
        from repro.api.database import _SHARED_CAPACITY

        graphs = [example9_graph() for _ in range(_SHARED_CAPACITY + 4)]
        for graph in graphs:
            Database.for_graph(graph)
        assert len(_shared) <= _SHARED_CAPACITY

    def test_multi_target_accessor_returns_independent_instances(self):
        """Interleaved eager enumerations from two to_all_targets()
        calls must not contend on shared trimmed cursors."""
        from repro.query import rpq

        graph = example9_graph()
        query = rpq(QUERY)
        mt1 = query.to_all_targets(graph, "Alix")
        mt2 = query.to_all_targets(graph, "Alix")
        assert mt1 is not mt2
        it1 = mt1.walks_to("Bob")
        it2 = mt2.walks_to("Eve")
        assert next(it1) is not None
        assert next(it2) is not None  # Would raise on a shared instance.

    def test_all_pairs_stats_valid_before_drain(self, db):
        cold = db.query("h").all_pairs().run()
        assert cold.stats["cached"]["annotation"] is False
        assert cold.stats["timings"]["annotate"] > 0.0
        _ = cold.all()
        warm = db.query("h").all_pairs().run()
        # Valid immediately — before the stream is consumed.
        assert warm.stats["cached"]["annotation"] is True

    def test_timeout_budget_covers_preprocessing(self):
        # A zero budget is exhausted by the (cold) preprocessing, so
        # the first pagination check must fire: at most one row comes
        # back even though the full enumeration would be instant.
        database = Database(example9_graph())
        rs = (
            database.query(QUERY).from_("Alix").to("Bob")
            .timeout_ms(0.0).run()
        )
        rows = rs.all()
        assert rs.timed_out and len(rows) <= 1

    def test_classic_rpq_helpers_share_the_graph_cache(self):
        """The shim layer's point: one-shot RPQ calls reuse caches."""
        from repro.query import rpq

        graph = example9_graph()
        query = rpq(QUERY)
        list(query.shortest_walks(graph, "Alix", "Bob"))
        shared = Database.for_graph(graph)
        before = shared.stats()["annotation_cache"]["hits"]
        assert query.count(graph, "Alix", "Bob") == 4
        assert shared.stats()["annotation_cache"]["hits"] > before


class TestValidation:
    def test_bad_default_mode(self):
        with pytest.raises(QueryError, match="concrete engine mode"):
            Database(example9_graph(), default_mode="auto")

    def test_query_must_be_expression_or_rpq(self, db):
        with pytest.raises(QueryError):
            db.query("")
        with pytest.raises(QueryError):
            db.query(42)

    def test_unknown_vertex_propagates(self, db):
        with pytest.raises(ReproError, match="Nobody"):
            db.query(QUERY).from_("Nobody").to("Bob").run()
